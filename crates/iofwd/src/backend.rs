//! I/O backends: where the ION daemon actually performs the forwarded
//! operations.
//!
//! On Intrepid the ION executes calls against GPFS (through the
//! file-server nodes) or streams to analysis nodes over sockets; here the
//! destination is a [`Backend`]:
//!
//! * [`FileBackend`] — a real filesystem subtree (the GPFS stand-in).
//! * [`NullBackend`] — `/dev/null` semantics, used by the paper's
//!   collective-network microbenchmark (§III-A: "read and write data to
//!   /dev/null").
//! * [`MemSinkBackend`] — named in-memory objects; `connect` gives a
//!   byte-counting socket sink, the "memory-to-memory transfer to a DA
//!   node" of §III-C.
//! * [`ThrottledBackend`] — wraps another backend behind a bandwidth
//!   limit and per-op latency, for demonstrating staging overlap on a
//!   workstation.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Component, Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use iofwd_proto::{Errno, FileStat, OpenFlags, Whence};
use parking_lot::Mutex;

/// An open file or socket object on the ION side. One exists per open
/// descriptor; the server serialises access per descriptor.
pub trait BackendObject: Send {
    /// Write at `offset` (or the current position if `None`). Returns
    /// bytes written.
    fn write_at(&mut self, offset: Option<u64>, data: &[u8]) -> Result<u64, Errno>;
    /// Write the buffers of `bufs` back-to-back starting at `offset`
    /// (or the current position), as one logical operation — `pwritev`
    /// semantics. Returns total bytes written; a short count is legal
    /// and means a prefix of the concatenated buffers went through.
    ///
    /// The default delegates buffer-by-buffer to [`Self::write_at`],
    /// stopping at the first short write. An error after some bytes
    /// already landed is reported as a short write (the bytes moved;
    /// POSIX `writev` cannot report both), so callers retry from the
    /// new position and see the error only when no progress was made.
    fn write_vectored_at(&mut self, offset: Option<u64>, bufs: &[&[u8]]) -> Result<u64, Errno> {
        let mut total = 0u64;
        for buf in bufs {
            let at = offset.map(|base| base + total);
            match self.write_at(at, buf) {
                Ok(n) => {
                    total += n;
                    if n < buf.len() as u64 {
                        return Ok(total);
                    }
                }
                Err(e) if total == 0 => return Err(e),
                Err(_) => return Ok(total),
            }
        }
        Ok(total)
    }
    /// Read up to `len` bytes at `offset` (or current position).
    fn read_at(&mut self, offset: Option<u64>, len: u64) -> Result<Vec<u8>, Errno>;
    /// Read up to `out.len()` bytes at `offset` (or current position)
    /// into a caller-supplied buffer. Returns bytes read; fewer than
    /// requested means EOF. This is the allocation-free twin of
    /// [`Self::read_at`] — the engine's fast path reads straight into a
    /// recycled BML slab block through it. The default delegates to
    /// `read_at` and copies, so existing backends stay correct.
    fn read_into(&mut self, offset: Option<u64>, out: &mut [u8]) -> Result<u64, Errno> {
        let data = self.read_at(offset, out.len() as u64)?;
        let n = data.len().min(out.len());
        out[..n].copy_from_slice(&data[..n]);
        Ok(n as u64)
    }
    /// Reposition; returns the new offset.
    fn seek(&mut self, offset: i64, whence: Whence) -> Result<u64, Errno>;
    /// Flush to stable storage / the socket.
    fn sync(&mut self) -> Result<(), Errno>;
    /// Metadata.
    fn fstat(&mut self) -> Result<FileStat, Errno>;
    /// Truncate (or zero-extend) to `len` bytes. Sockets refuse.
    fn truncate(&mut self, _len: u64) -> Result<(), Errno> {
        Err(Errno::Inval)
    }
}

/// A destination for forwarded I/O.
pub trait Backend: Send + Sync + 'static {
    fn open(
        &self,
        path: &str,
        flags: OpenFlags,
        mode: u32,
    ) -> Result<Box<dyn BackendObject>, Errno>;

    /// Open a streaming connection (DA-node sink). Backends without
    /// socket support refuse.
    fn connect(&self, _host: &str, _port: u16) -> Result<Box<dyn BackendObject>, Errno> {
        Err(Errno::NoSys)
    }

    fn stat(&self, path: &str) -> Result<FileStat, Errno>;

    fn unlink(&self, path: &str) -> Result<(), Errno>;

    /// Create a directory. Backends without a namespace accept silently.
    fn mkdir(&self, _path: &str, _mode: u32) -> Result<(), Errno> {
        Ok(())
    }

    /// List the entries directly under `path`.
    fn readdir(&self, path: &str) -> Result<Vec<String>, Errno> {
        let _ = path;
        Ok(Vec::new())
    }
}

// ---------------------------------------------------------------------------
// Instrumented (telemetry decorator)
// ---------------------------------------------------------------------------

/// Wraps any backend and counts data-plane traffic (ops and bytes, per
/// direction) into the daemon's telemetry registry. Only successful
/// operations are counted — a failed write moved no data.
pub struct Instrumented {
    inner: Arc<dyn Backend>,
    telemetry: Arc<crate::telemetry::Telemetry>,
}

impl Instrumented {
    pub fn new(inner: Arc<dyn Backend>, telemetry: Arc<crate::telemetry::Telemetry>) -> Self {
        Instrumented { inner, telemetry }
    }

    fn wrap(&self, obj: Box<dyn BackendObject>) -> Box<dyn BackendObject> {
        Box::new(InstrumentedObject {
            inner: obj,
            telemetry: self.telemetry.clone(),
        })
    }
}

struct InstrumentedObject {
    inner: Box<dyn BackendObject>,
    telemetry: Arc<crate::telemetry::Telemetry>,
}

impl BackendObject for InstrumentedObject {
    fn write_at(&mut self, offset: Option<u64>, data: &[u8]) -> Result<u64, Errno> {
        let res = self.inner.write_at(offset, data);
        if let Ok(n) = res {
            if self.telemetry.enabled() {
                self.telemetry.backend_write_ops.inc();
                self.telemetry.backend_bytes_written.add(n);
            }
        }
        res
    }

    fn write_vectored_at(&mut self, offset: Option<u64>, bufs: &[&[u8]]) -> Result<u64, Errno> {
        // A coalesced batch is one backend operation — that drop in
        // ops-per-byte is exactly what the counters should show.
        let res = self.inner.write_vectored_at(offset, bufs);
        if let Ok(n) = res {
            if self.telemetry.enabled() {
                self.telemetry.backend_write_ops.inc();
                self.telemetry.backend_bytes_written.add(n);
            }
        }
        res
    }

    fn read_at(&mut self, offset: Option<u64>, len: u64) -> Result<Vec<u8>, Errno> {
        let res = self.inner.read_at(offset, len);
        if let Ok(buf) = &res {
            if self.telemetry.enabled() {
                self.telemetry.backend_read_ops.inc();
                self.telemetry.backend_bytes_read.add(buf.len() as u64);
            }
        }
        res
    }

    fn read_into(&mut self, offset: Option<u64>, out: &mut [u8]) -> Result<u64, Errno> {
        let res = self.inner.read_into(offset, out);
        if let Ok(n) = res {
            if self.telemetry.enabled() {
                self.telemetry.backend_read_ops.inc();
                self.telemetry.backend_bytes_read.add(n);
            }
        }
        res
    }

    fn seek(&mut self, offset: i64, whence: Whence) -> Result<u64, Errno> {
        self.inner.seek(offset, whence)
    }

    fn sync(&mut self) -> Result<(), Errno> {
        self.inner.sync()
    }

    fn fstat(&mut self) -> Result<FileStat, Errno> {
        self.inner.fstat()
    }

    fn truncate(&mut self, len: u64) -> Result<(), Errno> {
        self.inner.truncate(len)
    }
}

impl Backend for Instrumented {
    fn open(
        &self,
        path: &str,
        flags: OpenFlags,
        mode: u32,
    ) -> Result<Box<dyn BackendObject>, Errno> {
        self.inner.open(path, flags, mode).map(|o| self.wrap(o))
    }

    fn connect(&self, host: &str, port: u16) -> Result<Box<dyn BackendObject>, Errno> {
        self.inner.connect(host, port).map(|o| self.wrap(o))
    }

    fn stat(&self, path: &str) -> Result<FileStat, Errno> {
        self.inner.stat(path)
    }

    fn unlink(&self, path: &str) -> Result<(), Errno> {
        self.inner.unlink(path)
    }

    fn mkdir(&self, path: &str, mode: u32) -> Result<(), Errno> {
        self.inner.mkdir(path, mode)
    }

    fn readdir(&self, path: &str) -> Result<Vec<String>, Errno> {
        self.inner.readdir(path)
    }
}

// ---------------------------------------------------------------------------
// NullBackend
// ---------------------------------------------------------------------------

#[derive(Default)]
struct NullCounters {
    bytes: AtomicU64,
    ops: AtomicU64,
}

/// `/dev/null` semantics: writes are discarded (and counted), reads
/// return EOF. The paper's §III-A microbenchmark target.
#[derive(Default)]
pub struct NullBackend {
    counters: Arc<NullCounters>,
}

impl NullBackend {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total payload bytes accepted and discarded.
    pub fn bytes_written(&self) -> u64 {
        self.counters.bytes.load(Ordering::Relaxed)
    }

    /// Total data operations served.
    pub fn ops(&self) -> u64 {
        self.counters.ops.load(Ordering::Relaxed)
    }
}

struct NullObject {
    counters: Arc<NullCounters>,
}

impl BackendObject for NullObject {
    fn write_at(&mut self, _offset: Option<u64>, data: &[u8]) -> Result<u64, Errno> {
        self.counters
            .bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.counters.ops.fetch_add(1, Ordering::Relaxed);
        Ok(data.len() as u64)
    }

    fn read_at(&mut self, _offset: Option<u64>, _len: u64) -> Result<Vec<u8>, Errno> {
        self.counters.ops.fetch_add(1, Ordering::Relaxed);
        Ok(Vec::new()) // EOF, as /dev/null
    }

    fn seek(&mut self, _offset: i64, _whence: Whence) -> Result<u64, Errno> {
        Ok(0)
    }

    fn sync(&mut self) -> Result<(), Errno> {
        Ok(())
    }

    fn fstat(&mut self) -> Result<FileStat, Errno> {
        Ok(FileStat {
            size: 0,
            mode: 0o666,
            mtime_ns: 0,
            is_dir: false,
        })
    }

    fn truncate(&mut self, _len: u64) -> Result<(), Errno> {
        Ok(())
    }
}

impl Backend for NullBackend {
    fn open(
        &self,
        _path: &str,
        _flags: OpenFlags,
        _mode: u32,
    ) -> Result<Box<dyn BackendObject>, Errno> {
        Ok(Box::new(NullObject {
            counters: self.counters.clone(),
        }))
    }

    fn connect(&self, _host: &str, _port: u16) -> Result<Box<dyn BackendObject>, Errno> {
        Ok(Box::new(NullObject {
            counters: self.counters.clone(),
        }))
    }

    fn stat(&self, _path: &str) -> Result<FileStat, Errno> {
        Ok(FileStat {
            size: 0,
            mode: 0o666,
            mtime_ns: 0,
            is_dir: false,
        })
    }

    fn unlink(&self, _path: &str) -> Result<(), Errno> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// MemSinkBackend
// ---------------------------------------------------------------------------

#[derive(Default)]
struct MemStore {
    files: Mutex<HashMap<String, Arc<Mutex<Vec<u8>>>>>,
    dirs: Mutex<std::collections::BTreeSet<String>>,
    socket_bytes: AtomicU64,
}

/// Normalise a path to `/a/b/c` form (single leading slash, no trailing).
fn norm(path: &str) -> String {
    let mut out = String::from("/");
    for seg in path.split('/').filter(|s| !s.is_empty()) {
        if out.len() > 1 {
            out.push('/');
        }
        out.push_str(seg);
    }
    out
}

/// In-memory backend: files are named byte vectors, `connect` yields a
/// byte-counting sink standing in for a DA-node socket.
#[derive(Default, Clone)]
pub struct MemSinkBackend {
    store: Arc<MemStore>,
}

impl MemSinkBackend {
    pub fn new() -> Self {
        Self::default()
    }

    /// Contents of a stored file, if it exists.
    pub fn contents(&self, path: &str) -> Option<Vec<u8>> {
        let files = self.store.files.lock();
        files.get(path).map(|f| f.lock().clone())
    }

    /// Bytes that have arrived over `connect` sinks — the DA node's
    /// received-byte counter in memory-to-memory benchmarks.
    pub fn socket_bytes(&self) -> u64 {
        self.store.socket_bytes.load(Ordering::Relaxed)
    }

    /// Number of stored files.
    pub fn file_count(&self) -> usize {
        self.store.files.lock().len()
    }
}

struct MemFileObject {
    data: Arc<Mutex<Vec<u8>>>,
    pos: u64,
    flags: OpenFlags,
}

impl MemFileObject {
    fn effective_offset(&mut self, offset: Option<u64>) -> u64 {
        offset.unwrap_or(self.pos)
    }
}

impl BackendObject for MemFileObject {
    fn write_at(&mut self, offset: Option<u64>, data: &[u8]) -> Result<u64, Errno> {
        if !self.flags.writable() {
            return Err(Errno::BadF);
        }
        let positional = offset.is_some();
        let off = self.effective_offset(offset) as usize;
        let mut file = self.data.lock();
        if file.len() < off + data.len() {
            file.resize(off + data.len(), 0);
        }
        file[off..off + data.len()].copy_from_slice(data);
        drop(file);
        if !positional {
            self.pos += data.len() as u64;
        }
        Ok(data.len() as u64)
    }

    fn read_at(&mut self, offset: Option<u64>, len: u64) -> Result<Vec<u8>, Errno> {
        if !self.flags.readable() {
            return Err(Errno::BadF);
        }
        let positional = offset.is_some();
        let off = self.effective_offset(offset) as usize;
        let file = self.data.lock();
        let end = (off + len as usize).min(file.len());
        let out = if off >= file.len() {
            Vec::new()
        } else {
            file[off..end].to_vec()
        };
        drop(file);
        if !positional {
            self.pos += out.len() as u64;
        }
        Ok(out)
    }

    fn read_into(&mut self, offset: Option<u64>, out: &mut [u8]) -> Result<u64, Errno> {
        if !self.flags.readable() {
            return Err(Errno::BadF);
        }
        let positional = offset.is_some();
        let off = self.effective_offset(offset) as usize;
        let file = self.data.lock();
        let n = if off >= file.len() {
            0
        } else {
            (file.len() - off).min(out.len())
        };
        out[..n].copy_from_slice(&file[off..off + n]);
        drop(file);
        if !positional {
            self.pos += n as u64;
        }
        Ok(n as u64)
    }

    fn seek(&mut self, offset: i64, whence: Whence) -> Result<u64, Errno> {
        let len = self.data.lock().len() as i64;
        let base = match whence {
            Whence::Set => 0,
            Whence::Cur => self.pos as i64,
            Whence::End => len,
        };
        let target = base.checked_add(offset).ok_or(Errno::Inval)?;
        if target < 0 {
            return Err(Errno::Inval);
        }
        self.pos = target as u64;
        Ok(self.pos)
    }

    fn sync(&mut self) -> Result<(), Errno> {
        Ok(())
    }

    fn fstat(&mut self) -> Result<FileStat, Errno> {
        Ok(FileStat {
            size: self.data.lock().len() as u64,
            mode: 0o644,
            mtime_ns: 0,
            is_dir: false,
        })
    }

    fn truncate(&mut self, len: u64) -> Result<(), Errno> {
        if !self.flags.writable() {
            return Err(Errno::BadF);
        }
        self.data.lock().resize(len as usize, 0);
        Ok(())
    }
}

struct MemSocketObject {
    store: Arc<MemStore>,
    sent: u64,
}

impl BackendObject for MemSocketObject {
    fn write_at(&mut self, _offset: Option<u64>, data: &[u8]) -> Result<u64, Errno> {
        self.store
            .socket_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.sent += data.len() as u64;
        Ok(data.len() as u64)
    }

    fn read_at(&mut self, _offset: Option<u64>, _len: u64) -> Result<Vec<u8>, Errno> {
        Ok(Vec::new())
    }

    fn seek(&mut self, _offset: i64, _whence: Whence) -> Result<u64, Errno> {
        Err(Errno::SPipe) // sockets do not seek
    }

    fn sync(&mut self) -> Result<(), Errno> {
        Ok(())
    }

    fn fstat(&mut self) -> Result<FileStat, Errno> {
        Ok(FileStat {
            size: self.sent,
            mode: 0o600,
            mtime_ns: 0,
            is_dir: false,
        })
    }
}

impl Backend for MemSinkBackend {
    fn open(
        &self,
        path: &str,
        flags: OpenFlags,
        _mode: u32,
    ) -> Result<Box<dyn BackendObject>, Errno> {
        let mut files = self.store.files.lock();
        let exists = files.contains_key(path);
        if !exists && !flags.contains(OpenFlags::CREATE) {
            return Err(Errno::NoEnt);
        }
        let data = files.entry(path.to_owned()).or_default().clone();
        drop(files);
        if flags.contains(OpenFlags::TRUNC) && flags.writable() {
            data.lock().clear();
        }
        let pos = if flags.contains(OpenFlags::APPEND) {
            data.lock().len() as u64
        } else {
            0
        };
        Ok(Box::new(MemFileObject { data, pos, flags }))
    }

    fn connect(&self, _host: &str, _port: u16) -> Result<Box<dyn BackendObject>, Errno> {
        Ok(Box::new(MemSocketObject {
            store: self.store.clone(),
            sent: 0,
        }))
    }

    fn stat(&self, path: &str) -> Result<FileStat, Errno> {
        let files = self.store.files.lock();
        let data = files.get(path).cloned().ok_or(Errno::NoEnt)?;
        drop(files);
        let size = data.lock().len() as u64;
        Ok(FileStat {
            size,
            mode: 0o644,
            mtime_ns: 0,
            is_dir: false,
        })
    }

    fn unlink(&self, path: &str) -> Result<(), Errno> {
        let mut files = self.store.files.lock();
        files.remove(path).map(|_| ()).ok_or(Errno::NoEnt)
    }

    fn mkdir(&self, path: &str, _mode: u32) -> Result<(), Errno> {
        let p = norm(path);
        let mut dirs = self.store.dirs.lock();
        if !dirs.insert(p) {
            return Err(Errno::Exist);
        }
        Ok(())
    }

    fn readdir(&self, path: &str) -> Result<Vec<String>, Errno> {
        let prefix = {
            let p = norm(path);
            if p == "/" {
                p
            } else {
                p + "/"
            }
        };
        let mut out = std::collections::BTreeSet::new();
        let child_of = |full: &str| -> Option<String> {
            let rest = full.strip_prefix(&prefix)?;
            if rest.is_empty() {
                return None;
            }
            rest.split('/').next().map(str::to_owned)
        };
        for name in self.store.files.lock().keys() {
            if let Some(c) = child_of(&norm(name)) {
                out.insert(c);
            }
        }
        for d in self.store.dirs.lock().iter() {
            if let Some(c) = child_of(d) {
                out.insert(c);
            }
        }
        Ok(out.into_iter().collect())
    }
}

// ---------------------------------------------------------------------------
// FileBackend
// ---------------------------------------------------------------------------

/// Backend over a real filesystem subtree. All forwarded paths are
/// resolved inside `root`; `..` components are rejected so a client
/// cannot escape the sandbox.
pub struct FileBackend {
    root: PathBuf,
}

impl FileBackend {
    pub fn new(root: impl Into<PathBuf>) -> Self {
        FileBackend { root: root.into() }
    }

    fn resolve(&self, path: &str) -> Result<PathBuf, Errno> {
        let rel = Path::new(path);
        let mut out = self.root.clone();
        for comp in rel.components() {
            match comp {
                Component::Normal(c) => out.push(c),
                Component::RootDir | Component::CurDir => {}
                Component::ParentDir | Component::Prefix(_) => return Err(Errno::Access),
            }
        }
        Ok(out)
    }
}

struct FileObject {
    file: File,
}

fn stat_of(meta: &std::fs::Metadata) -> FileStat {
    let mtime_ns = meta
        .modified()
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    FileStat {
        size: meta.len(),
        mode: 0o644,
        mtime_ns,
        is_dir: meta.is_dir(),
    }
}

impl BackendObject for FileObject {
    fn write_at(&mut self, offset: Option<u64>, data: &[u8]) -> Result<u64, Errno> {
        let res = match offset {
            Some(off) => {
                self.file
                    .seek(SeekFrom::Start(off))
                    .map_err(|e| Errno::from_io(&e))?;
                self.file.write_all(data)
            }
            None => self.file.write_all(data),
        };
        res.map_err(|e| Errno::from_io(&e))?;
        Ok(data.len() as u64)
    }

    fn write_vectored_at(&mut self, offset: Option<u64>, bufs: &[&[u8]]) -> Result<u64, Errno> {
        // pwritev semantics: one seek positions the whole batch, then
        // the buffers stream out back-to-back on the advancing cursor —
        // the per-op seek+dispatch cost is paid once per batch instead
        // of once per forwarded request.
        if let Some(off) = offset {
            self.file
                .seek(SeekFrom::Start(off))
                .map_err(|e| Errno::from_io(&e))?;
        }
        let mut total = 0u64;
        for buf in bufs {
            match self.file.write_all(buf) {
                Ok(()) => total += buf.len() as u64,
                // Progress already made: report the short count, like
                // writev; the caller resumes from the new position.
                Err(_) if total > 0 => return Ok(total),
                Err(e) => return Err(Errno::from_io(&e)),
            }
        }
        Ok(total)
    }

    fn read_at(&mut self, offset: Option<u64>, len: u64) -> Result<Vec<u8>, Errno> {
        if let Some(off) = offset {
            self.file
                .seek(SeekFrom::Start(off))
                .map_err(|e| Errno::from_io(&e))?;
        }
        let mut buf = vec![0u8; len as usize];
        let mut filled = 0;
        while filled < buf.len() {
            match self.file.read(&mut buf[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) => return Err(Errno::from_io(&e)),
            }
        }
        buf.truncate(filled);
        Ok(buf)
    }

    fn read_into(&mut self, offset: Option<u64>, out: &mut [u8]) -> Result<u64, Errno> {
        if let Some(off) = offset {
            self.file
                .seek(SeekFrom::Start(off))
                .map_err(|e| Errno::from_io(&e))?;
        }
        let mut filled = 0;
        while filled < out.len() {
            match self.file.read(&mut out[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) => return Err(Errno::from_io(&e)),
            }
        }
        Ok(filled as u64)
    }

    fn seek(&mut self, offset: i64, whence: Whence) -> Result<u64, Errno> {
        let pos = match whence {
            Whence::Set => {
                if offset < 0 {
                    return Err(Errno::Inval);
                }
                SeekFrom::Start(offset as u64)
            }
            Whence::Cur => SeekFrom::Current(offset),
            Whence::End => SeekFrom::End(offset),
        };
        self.file.seek(pos).map_err(|e| Errno::from_io(&e))
    }

    fn sync(&mut self) -> Result<(), Errno> {
        self.file.sync_all().map_err(|e| Errno::from_io(&e))
    }

    fn fstat(&mut self) -> Result<FileStat, Errno> {
        let meta = self.file.metadata().map_err(|e| Errno::from_io(&e))?;
        Ok(stat_of(&meta))
    }

    fn truncate(&mut self, len: u64) -> Result<(), Errno> {
        self.file.set_len(len).map_err(|e| Errno::from_io(&e))
    }
}

impl Backend for FileBackend {
    fn open(
        &self,
        path: &str,
        flags: OpenFlags,
        _mode: u32,
    ) -> Result<Box<dyn BackendObject>, Errno> {
        let full = self.resolve(path)?;
        if let Some(parent) = full.parent() {
            std::fs::create_dir_all(parent).map_err(|e| Errno::from_io(&e))?;
        }
        let mut opts = OpenOptions::new();
        opts.read(flags.readable())
            .write(flags.writable())
            .create(flags.contains(OpenFlags::CREATE))
            .truncate(flags.contains(OpenFlags::TRUNC) && flags.writable())
            .append(flags.contains(OpenFlags::APPEND));
        let file = opts.open(&full).map_err(|e| Errno::from_io(&e))?;
        Ok(Box::new(FileObject { file }))
    }

    fn stat(&self, path: &str) -> Result<FileStat, Errno> {
        let full = self.resolve(path)?;
        let meta = std::fs::metadata(&full).map_err(|e| Errno::from_io(&e))?;
        Ok(stat_of(&meta))
    }

    fn unlink(&self, path: &str) -> Result<(), Errno> {
        let full = self.resolve(path)?;
        std::fs::remove_file(&full).map_err(|e| Errno::from_io(&e))
    }

    fn mkdir(&self, path: &str, _mode: u32) -> Result<(), Errno> {
        let full = self.resolve(path)?;
        std::fs::create_dir(&full).map_err(|e| Errno::from_io(&e))
    }

    fn readdir(&self, path: &str) -> Result<Vec<String>, Errno> {
        let full = self.resolve(path)?;
        let mut out: Vec<String> = std::fs::read_dir(&full)
            .map_err(|e| Errno::from_io(&e))?
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        out.sort();
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// FaultInjectionBackend
// ---------------------------------------------------------------------------

/// Wraps a backend and fails every *data* operation after the first
/// `ok_ops` with the configured errno. Used to exercise the deferred-
/// error path of asynchronous staging (§IV: "Errors are passed to the
/// application on subsequent operations on the descriptor").
pub struct FaultInjectionBackend<B> {
    inner: Arc<B>,
    ok_ops: Arc<AtomicU64>,
    errno: Errno,
}

impl<B: Backend> FaultInjectionBackend<B> {
    /// Allow `ok_ops` data operations to succeed, then fail the rest.
    pub fn new(inner: Arc<B>, ok_ops: u64, errno: Errno) -> Self {
        FaultInjectionBackend {
            inner,
            ok_ops: Arc::new(AtomicU64::new(ok_ops)),
            errno,
        }
    }

    /// Re-arm the failure budget.
    pub fn set_remaining_ok(&self, ok_ops: u64) {
        self.ok_ops.store(ok_ops, Ordering::SeqCst);
    }
}

struct FaultObject {
    inner: Box<dyn BackendObject>,
    ok_ops: Arc<AtomicU64>,
    errno: Errno,
}

impl FaultObject {
    fn charge(&self) -> Result<(), Errno> {
        // Decrement the shared budget; fail once exhausted.
        let mut cur = self.ok_ops.load(Ordering::SeqCst);
        loop {
            if cur == 0 {
                return Err(self.errno);
            }
            match self
                .ok_ops
                .compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }
}

impl BackendObject for FaultObject {
    fn write_at(&mut self, offset: Option<u64>, data: &[u8]) -> Result<u64, Errno> {
        self.charge()?;
        self.inner.write_at(offset, data)
    }

    fn write_vectored_at(&mut self, offset: Option<u64>, bufs: &[&[u8]]) -> Result<u64, Errno> {
        // The budget meters *logical* data operations, so a coalesced
        // batch charges once per constituent: the failure lands on the
        // same logical write whether or not merging happened.
        if bufs.is_empty() {
            return self.inner.write_vectored_at(offset, bufs);
        }
        let mut ok = 0usize;
        for _ in bufs {
            if self.charge().is_err() {
                break;
            }
            ok += 1;
        }
        if ok == 0 {
            return Err(self.errno);
        }
        // Budget ran out mid-batch: write the prefix it covers (a short
        // vectored write), so the engine's fan-out charges the error to
        // exactly the constituents past the failure point.
        self.inner.write_vectored_at(offset, &bufs[..ok])
    }

    fn read_at(&mut self, offset: Option<u64>, len: u64) -> Result<Vec<u8>, Errno> {
        self.charge()?;
        self.inner.read_at(offset, len)
    }

    fn read_into(&mut self, offset: Option<u64>, out: &mut [u8]) -> Result<u64, Errno> {
        self.charge()?;
        self.inner.read_into(offset, out)
    }

    fn seek(&mut self, offset: i64, whence: Whence) -> Result<u64, Errno> {
        self.inner.seek(offset, whence)
    }

    fn sync(&mut self) -> Result<(), Errno> {
        self.inner.sync()
    }

    fn fstat(&mut self) -> Result<FileStat, Errno> {
        self.inner.fstat()
    }

    fn truncate(&mut self, len: u64) -> Result<(), Errno> {
        self.inner.truncate(len)
    }
}

impl<B: Backend> Backend for FaultInjectionBackend<B> {
    fn open(
        &self,
        path: &str,
        flags: OpenFlags,
        mode: u32,
    ) -> Result<Box<dyn BackendObject>, Errno> {
        let inner = self.inner.open(path, flags, mode)?;
        Ok(Box::new(FaultObject {
            inner,
            ok_ops: self.ok_ops.clone(),
            errno: self.errno,
        }))
    }

    fn connect(&self, host: &str, port: u16) -> Result<Box<dyn BackendObject>, Errno> {
        let inner = self.inner.connect(host, port)?;
        Ok(Box::new(FaultObject {
            inner,
            ok_ops: self.ok_ops.clone(),
            errno: self.errno,
        }))
    }

    fn stat(&self, path: &str) -> Result<FileStat, Errno> {
        self.inner.stat(path)
    }

    fn unlink(&self, path: &str) -> Result<(), Errno> {
        self.inner.unlink(path)
    }

    fn mkdir(&self, path: &str, mode: u32) -> Result<(), Errno> {
        self.inner.mkdir(path, mode)
    }

    fn readdir(&self, path: &str) -> Result<Vec<String>, Errno> {
        self.inner.readdir(path)
    }
}

// ---------------------------------------------------------------------------
// ThrottledBackend
// ---------------------------------------------------------------------------

/// Wraps a backend behind a bandwidth limit and a fixed per-operation
/// latency — a slow storage system or thin network for wall-clock
/// demonstrations of asynchronous staging overlap.
///
/// All objects opened through one `ThrottledBackend` share a single
/// token-bucket pacer, so concurrent descriptors contend for the device
/// as they would on real hardware.
pub struct ThrottledBackend<B> {
    inner: Arc<B>,
    pacer: Arc<dyn Fn(usize) + Send + Sync>,
}

impl<B: Backend> ThrottledBackend<B> {
    pub fn new(inner: Arc<B>, bytes_per_sec: f64, per_op: Duration) -> Self {
        assert!(bytes_per_sec > 0.0);
        let free_at = Mutex::new(Instant::now());
        let pacer = Arc::new(move |bytes: usize| {
            // The device is busy for `per_op + bytes/bandwidth`; callers
            // queue behind its next free instant.
            let wait = {
                let mut f = free_at.lock();
                let now = Instant::now();
                let start = (*f).max(now);
                let busy = per_op + Duration::from_secs_f64(bytes as f64 / bytes_per_sec);
                let done = start + busy;
                *f = done;
                done.saturating_duration_since(now)
            };
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
        });
        ThrottledBackend { inner, pacer }
    }
}

struct ThrottledObject {
    inner: Box<dyn BackendObject>,
    pacer: Arc<dyn Fn(usize) + Send + Sync>,
}

impl BackendObject for ThrottledObject {
    fn write_at(&mut self, offset: Option<u64>, data: &[u8]) -> Result<u64, Errno> {
        (self.pacer)(data.len());
        self.inner.write_at(offset, data)
    }

    fn write_vectored_at(&mut self, offset: Option<u64>, bufs: &[&[u8]]) -> Result<u64, Errno> {
        // The device pays `per_op` once for the batch plus bandwidth
        // for every byte — the per-op saving coalescing exists to win.
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        (self.pacer)(total);
        self.inner.write_vectored_at(offset, bufs)
    }

    fn read_at(&mut self, offset: Option<u64>, len: u64) -> Result<Vec<u8>, Errno> {
        (self.pacer)(len as usize);
        self.inner.read_at(offset, len)
    }

    fn read_into(&mut self, offset: Option<u64>, out: &mut [u8]) -> Result<u64, Errno> {
        (self.pacer)(out.len());
        self.inner.read_into(offset, out)
    }

    fn seek(&mut self, offset: i64, whence: Whence) -> Result<u64, Errno> {
        self.inner.seek(offset, whence)
    }

    fn sync(&mut self) -> Result<(), Errno> {
        (self.pacer)(0);
        self.inner.sync()
    }

    fn fstat(&mut self) -> Result<FileStat, Errno> {
        self.inner.fstat()
    }

    fn truncate(&mut self, len: u64) -> Result<(), Errno> {
        self.inner.truncate(len)
    }
}

impl<B: Backend> Backend for ThrottledBackend<B> {
    fn open(
        &self,
        path: &str,
        flags: OpenFlags,
        mode: u32,
    ) -> Result<Box<dyn BackendObject>, Errno> {
        let inner = self.inner.open(path, flags, mode)?;
        Ok(Box::new(ThrottledObject {
            inner,
            pacer: self.pacer.clone(),
        }))
    }

    fn connect(&self, host: &str, port: u16) -> Result<Box<dyn BackendObject>, Errno> {
        let inner = self.inner.connect(host, port)?;
        Ok(Box::new(ThrottledObject {
            inner,
            pacer: self.pacer.clone(),
        }))
    }

    fn stat(&self, path: &str) -> Result<FileStat, Errno> {
        self.inner.stat(path)
    }

    fn unlink(&self, path: &str) -> Result<(), Errno> {
        self.inner.unlink(path)
    }
}

// ---------------------------------------------------------------------------
// FaultBackend (deterministic fault plans)
// ---------------------------------------------------------------------------

/// Per-class operation counters driving `nth=` triggers. Shared by every
/// object opened through one [`FaultBackend`], so "the 7th write" means
/// the 7th write the *daemon* performs, not the 7th on one descriptor.
#[derive(Default)]
struct FaultSeq {
    write: AtomicU64,
    read: AtomicU64,
    open: AtomicU64,
    sync: AtomicU64,
}

impl FaultSeq {
    fn next(&self, class: crate::fault::OpClass) -> u64 {
        use crate::fault::OpClass;
        let c = match class {
            OpClass::Write => &self.write,
            OpClass::Read => &self.read,
            OpClass::Open => &self.open,
            OpClass::Sync => &self.sync,
            OpClass::Any => &self.write,
        };
        c.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// Wraps any backend and perturbs it according to a seeded
/// [`crate::fault::FaultPlan`]: errno injection, short writes/reads,
/// latency spikes, and open-time failures. Unlike the fixed-budget
/// [`FaultInjectionBackend`], the fault *sequence* is a deterministic
/// function of the plan seed and the operation order, so chaos runs
/// replay exactly. Injected faults are counted into the daemon's
/// `faults_injected` telemetry counter.
pub struct FaultBackend {
    inner: Arc<dyn Backend>,
    shared: Arc<FaultShared>,
}

impl FaultBackend {
    pub fn new(
        inner: Arc<dyn Backend>,
        plan: crate::fault::FaultPlan,
        telemetry: Arc<crate::telemetry::Telemetry>,
    ) -> Self {
        let rng = simcore::rng::SimRng::new(plan.seed);
        FaultBackend {
            inner,
            shared: Arc::new(FaultShared {
                plan,
                rng: Mutex::new(rng),
                seq: FaultSeq::default(),
                injected: AtomicU64::new(0),
                telemetry,
            }),
        }
    }

    /// Total faults this backend has injected (for tests that do not
    /// run with telemetry enabled).
    pub fn faults_injected(&self) -> u64 {
        self.shared.injected.load(Ordering::Relaxed)
    }

    fn wrap(&self, obj: Box<dyn BackendObject>, path: String) -> Box<dyn BackendObject> {
        Box::new(PlannedFaultObject {
            inner: obj,
            path,
            shared: self.shared.clone(),
            pending_errno: None,
        })
    }
}

/// The state a [`PlannedFaultObject`] shares with its parent backend:
/// the plan, one seeded rng stream, and the per-class op counters.
struct FaultShared {
    plan: crate::fault::FaultPlan,
    rng: Mutex<simcore::rng::SimRng>,
    seq: FaultSeq,
    injected: AtomicU64,
    telemetry: Arc<crate::telemetry::Telemetry>,
}

impl FaultShared {
    fn decide(
        &self,
        class: crate::fault::OpClass,
        path: &str,
    ) -> Option<crate::fault::FaultAction> {
        self.decide_shaped(class, path, false)
    }

    fn decide_shaped(
        &self,
        class: crate::fault::OpClass,
        path: &str,
        vectored: bool,
    ) -> Option<crate::fault::FaultAction> {
        let seq = self.seq.next(class);
        let mut rng = self.rng.lock();
        let action = self
            .plan
            .decide_vectored(class, path, seq, &mut rng, vectored);
        drop(rng);
        if action.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
            if self.telemetry.enabled() {
                self.telemetry.faults_injected.inc();
            }
        }
        action
    }
}

struct PlannedFaultObject {
    inner: Box<dyn BackendObject>,
    path: String,
    shared: Arc<FaultShared>,
    /// An errno drawn for a mid-batch constituent of a vectored write.
    /// The call itself returns the clean prefix (POSIX short writev);
    /// the errno surfaces on the caller's continuation call, mirroring
    /// what a serial re-issue of that constituent would have seen.
    pending_errno: Option<Errno>,
}

impl BackendObject for PlannedFaultObject {
    fn write_at(&mut self, offset: Option<u64>, data: &[u8]) -> Result<u64, Errno> {
        use crate::fault::{FaultAction, OpClass};
        match self.shared.decide(OpClass::Write, &self.path) {
            Some(FaultAction::Errno(e)) => Err(e),
            Some(FaultAction::Short { numerator }) => {
                // POSIX-legal short write: some prefix goes through.
                let n = ((data.len() * numerator as usize) / 256)
                    .max(1)
                    .min(data.len());
                self.inner.write_at(offset, &data[..n])
            }
            Some(FaultAction::DelayUs(us)) => {
                std::thread::sleep(Duration::from_micros(us as u64));
                self.inner.write_at(offset, data)
            }
            None => self.inner.write_at(offset, data),
        }
    }

    fn write_vectored_at(&mut self, offset: Option<u64>, bufs: &[&[u8]]) -> Result<u64, Errno> {
        use crate::fault::{FaultAction, OpClass};
        // Each constituent of a coalesced batch is still one write op
        // to the plan — one sequence slot, one draw apiece — so the
        // fault sequence is a function of *logical* operation order,
        // identical whether or not merging happened. `vectored`-flagged
        // rules additionally match (only) these draws.
        if let Some(e) = self.pending_errno.take() {
            return Err(e);
        }
        for (i, buf) in bufs.iter().enumerate() {
            match self.shared.decide_shaped(OpClass::Write, &self.path, true) {
                Some(FaultAction::Errno(e)) => {
                    // Fault at constituent i: commit the clean prefix
                    // (a POSIX-legal short writev) and hold the errno
                    // for the continuation; with nothing written the
                    // errno surfaces immediately.
                    if i == 0 {
                        return Err(e);
                    }
                    self.pending_errno = Some(e);
                    return self.inner.write_vectored_at(offset, &bufs[..i]);
                }
                Some(FaultAction::Short { numerator }) => {
                    // Short write inside constituent i: the batch ends
                    // with a prefix of this buffer.
                    let n = ((buf.len() * numerator as usize) / 256)
                        .max(1)
                        .min(buf.len());
                    let mut prefix: Vec<&[u8]> = bufs[..i].to_vec();
                    prefix.push(&buf[..n]);
                    return self.inner.write_vectored_at(offset, &prefix);
                }
                Some(FaultAction::DelayUs(us)) => {
                    std::thread::sleep(Duration::from_micros(us as u64));
                }
                None => {}
            }
        }
        self.inner.write_vectored_at(offset, bufs)
    }

    fn read_at(&mut self, offset: Option<u64>, len: u64) -> Result<Vec<u8>, Errno> {
        use crate::fault::{FaultAction, OpClass};
        match self.shared.decide(OpClass::Read, &self.path) {
            Some(FaultAction::Errno(e)) => Err(e),
            Some(FaultAction::Short { numerator }) => {
                // Short read: serve a prefix of the request. POSIX lets
                // read() return fewer bytes than asked with no error.
                let n = ((len * numerator as u64) / 256).max(1).min(len);
                self.inner.read_at(offset, n)
            }
            Some(FaultAction::DelayUs(us)) => {
                std::thread::sleep(Duration::from_micros(us as u64));
                self.inner.read_at(offset, len)
            }
            None => self.inner.read_at(offset, len),
        }
    }

    fn read_into(&mut self, offset: Option<u64>, out: &mut [u8]) -> Result<u64, Errno> {
        use crate::fault::{FaultAction, OpClass};
        // Same plan semantics as `read_at`: one sequence slot per
        // logical read, shorts serve a prefix of the request.
        match self.shared.decide(OpClass::Read, &self.path) {
            Some(FaultAction::Errno(e)) => Err(e),
            Some(FaultAction::Short { numerator }) => {
                let n = ((out.len() * numerator as usize) / 256)
                    .max(1)
                    .min(out.len());
                self.inner.read_into(offset, &mut out[..n])
            }
            Some(FaultAction::DelayUs(us)) => {
                std::thread::sleep(Duration::from_micros(us as u64));
                self.inner.read_into(offset, out)
            }
            None => self.inner.read_into(offset, out),
        }
    }

    fn seek(&mut self, offset: i64, whence: Whence) -> Result<u64, Errno> {
        self.inner.seek(offset, whence)
    }

    fn sync(&mut self) -> Result<(), Errno> {
        use crate::fault::{FaultAction, OpClass};
        match self.shared.decide(OpClass::Sync, &self.path) {
            Some(FaultAction::Errno(e)) => Err(e),
            Some(FaultAction::DelayUs(us)) => {
                std::thread::sleep(Duration::from_micros(us as u64));
                self.inner.sync()
            }
            // A "short" sync has no meaning; execute normally.
            _ => self.inner.sync(),
        }
    }

    fn fstat(&mut self) -> Result<FileStat, Errno> {
        self.inner.fstat()
    }

    fn truncate(&mut self, len: u64) -> Result<(), Errno> {
        self.inner.truncate(len)
    }
}

impl Backend for FaultBackend {
    fn open(
        &self,
        path: &str,
        flags: OpenFlags,
        mode: u32,
    ) -> Result<Box<dyn BackendObject>, Errno> {
        use crate::fault::{FaultAction, OpClass};
        match self.shared.decide(OpClass::Open, path) {
            Some(FaultAction::Errno(e)) => return Err(e),
            Some(FaultAction::DelayUs(us)) => {
                std::thread::sleep(Duration::from_micros(us as u64));
            }
            _ => {}
        }
        let obj = self.inner.open(path, flags, mode)?;
        Ok(self.wrap(obj, path.to_owned()))
    }

    fn connect(&self, host: &str, port: u16) -> Result<Box<dyn BackendObject>, Errno> {
        use crate::fault::{FaultAction, OpClass};
        // Socket sinks participate under their `host:port` name.
        let name = format!("{host}:{port}");
        match self.shared.decide(OpClass::Open, &name) {
            Some(FaultAction::Errno(e)) => return Err(e),
            Some(FaultAction::DelayUs(us)) => {
                std::thread::sleep(Duration::from_micros(us as u64));
            }
            _ => {}
        }
        let obj = self.inner.connect(host, port)?;
        Ok(self.wrap(obj, name))
    }

    fn stat(&self, path: &str) -> Result<FileStat, Errno> {
        self.inner.stat(path)
    }

    fn unlink(&self, path: &str) -> Result<(), Errno> {
        self.inner.unlink(path)
    }

    fn mkdir(&self, path: &str, mode: u32) -> Result<(), Errno> {
        self.inner.mkdir(path, mode)
    }

    fn readdir(&self, path: &str) -> Result<Vec<String>, Errno> {
        self.inner.readdir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_counts_and_discards() {
        let b = NullBackend::new();
        let mut obj = b.open("/dev/null", OpenFlags::WRONLY, 0).unwrap();
        assert_eq!(obj.write_at(None, b"abcdef").unwrap(), 6);
        assert_eq!(obj.read_at(None, 100).unwrap(), Vec::<u8>::new());
        assert_eq!(b.bytes_written(), 6);
        assert_eq!(b.ops(), 2);
    }

    #[test]
    fn memsink_write_read_roundtrip() {
        let b = MemSinkBackend::new();
        let mut w = b
            .open("/f", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
            .unwrap();
        w.write_at(None, b"hello").unwrap();
        w.write_at(None, b" world").unwrap();
        let mut r = b.open("/f", OpenFlags::RDONLY, 0).unwrap();
        assert_eq!(r.read_at(None, 64).unwrap(), b"hello world");
        assert_eq!(b.contents("/f").unwrap(), b"hello world");
    }

    #[test]
    fn memsink_positional_io() {
        let b = MemSinkBackend::new();
        let mut f = b
            .open("/p", OpenFlags::RDWR | OpenFlags::CREATE, 0o644)
            .unwrap();
        f.write_at(Some(4), b"abcd").unwrap();
        assert_eq!(f.fstat().unwrap().size, 8);
        assert_eq!(f.read_at(Some(0), 8).unwrap(), b"\0\0\0\0abcd");
        // Positional ops must not disturb the cursor.
        f.write_at(None, b"XY").unwrap();
        assert_eq!(f.read_at(Some(0), 2).unwrap(), b"XY");
    }

    #[test]
    fn memsink_open_semantics() {
        let b = MemSinkBackend::new();
        assert_eq!(
            b.open("/missing", OpenFlags::RDONLY, 0).err(),
            Some(Errno::NoEnt)
        );
        b.open("/t", OpenFlags::WRONLY | OpenFlags::CREATE, 0)
            .unwrap()
            .write_at(None, b"12345")
            .unwrap();
        // TRUNC empties.
        let _ = b
            .open("/t", OpenFlags::WRONLY | OpenFlags::TRUNC, 0)
            .unwrap();
        assert_eq!(b.contents("/t").unwrap(), b"");
        // APPEND starts at end.
        b.open("/t", OpenFlags::WRONLY, 0)
            .unwrap()
            .write_at(None, b"ab")
            .unwrap();
        let mut a = b
            .open("/t", OpenFlags::WRONLY | OpenFlags::APPEND, 0)
            .unwrap();
        a.write_at(None, b"cd").unwrap();
        assert_eq!(b.contents("/t").unwrap(), b"abcd");
    }

    #[test]
    fn memsink_socket_counts() {
        let b = MemSinkBackend::new();
        let mut s = b.connect("da-node-3", 9000).unwrap();
        s.write_at(None, &[0u8; 1024]).unwrap();
        s.write_at(None, &[0u8; 1024]).unwrap();
        assert_eq!(b.socket_bytes(), 2048);
        assert_eq!(s.seek(0, Whence::Set).err(), Some(Errno::SPipe));
    }

    #[test]
    fn memsink_unlink_and_stat() {
        let b = MemSinkBackend::new();
        b.open("/u", OpenFlags::WRONLY | OpenFlags::CREATE, 0)
            .unwrap()
            .write_at(None, b"xyz")
            .unwrap();
        assert_eq!(b.stat("/u").unwrap().size, 3);
        b.unlink("/u").unwrap();
        assert_eq!(b.stat("/u").err(), Some(Errno::NoEnt));
        assert_eq!(b.unlink("/u").err(), Some(Errno::NoEnt));
    }

    #[test]
    fn memsink_readonly_rejects_write() {
        let b = MemSinkBackend::new();
        b.open("/r", OpenFlags::WRONLY | OpenFlags::CREATE, 0)
            .unwrap();
        let mut r = b.open("/r", OpenFlags::RDONLY, 0).unwrap();
        assert_eq!(r.write_at(None, b"no").err(), Some(Errno::BadF));
    }

    #[test]
    fn memsink_seek_whences() {
        let b = MemSinkBackend::new();
        let mut f = b
            .open("/s", OpenFlags::RDWR | OpenFlags::CREATE, 0)
            .unwrap();
        f.write_at(None, b"0123456789").unwrap();
        assert_eq!(f.seek(2, Whence::Set).unwrap(), 2);
        assert_eq!(f.seek(3, Whence::Cur).unwrap(), 5);
        assert_eq!(f.seek(-4, Whence::End).unwrap(), 6);
        assert_eq!(f.read_at(None, 2).unwrap(), b"67");
        assert_eq!(f.seek(-100, Whence::Set).err(), Some(Errno::Inval));
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("iofwd-test-{}", std::process::id()));
        let b = FileBackend::new(&dir);
        let mut f = b
            .open("sub/data.bin", OpenFlags::RDWR | OpenFlags::CREATE, 0o644)
            .unwrap();
        f.write_at(None, b"filedata").unwrap();
        f.sync().unwrap();
        assert_eq!(f.read_at(Some(4), 4).unwrap(), b"data");
        assert_eq!(b.stat("sub/data.bin").unwrap().size, 8);
        b.unlink("sub/data.bin").unwrap();
        assert_eq!(b.stat("sub/data.bin").err(), Some(Errno::NoEnt));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_blocks_escape() {
        let b = FileBackend::new("/tmp/iofwd-root");
        assert_eq!(b.stat("../etc/passwd").err(), Some(Errno::Access));
        assert!(b
            .open("../../x", OpenFlags::WRONLY | OpenFlags::CREATE, 0)
            .is_err());
    }

    #[test]
    fn default_write_vectored_matches_sequential_writes() {
        let b = MemSinkBackend::new();
        let mut f = b
            .open("/v", OpenFlags::RDWR | OpenFlags::CREATE, 0o644)
            .unwrap();
        // MemFileObject has no override, so this exercises the trait's
        // default delegate-per-buffer loop, positionally...
        let n = f
            .write_vectored_at(Some(2), &[b"ab", b"cde", b"", b"f"])
            .unwrap();
        assert_eq!(n, 6);
        assert_eq!(b.contents("/v").unwrap(), b"\0\0abcdef");
        // ...and on the cursor, which must advance across buffers.
        f.seek(8, Whence::Set).unwrap();
        assert_eq!(f.write_vectored_at(None, &[b"gh", b"ij"]).unwrap(), 4);
        assert_eq!(b.contents("/v").unwrap(), b"\0\0abcdefghij");
    }

    #[test]
    fn default_write_vectored_reports_progress_before_error() {
        let b = MemSinkBackend::new();
        b.open("/ro", OpenFlags::WRONLY | OpenFlags::CREATE, 0)
            .unwrap();
        let mut r = b.open("/ro", OpenFlags::RDONLY, 0).unwrap();
        // No progress at all: the error surfaces.
        assert_eq!(
            r.write_vectored_at(None, &[b"x", b"y"]).err(),
            Some(Errno::BadF)
        );
    }

    #[test]
    fn file_backend_write_vectored_at() {
        let dir = std::env::temp_dir().join(format!("iofwd-vec-test-{}", std::process::id()));
        let b = FileBackend::new(&dir);
        let mut f = b
            .open("vec.bin", OpenFlags::RDWR | OpenFlags::CREATE, 0o644)
            .unwrap();
        f.write_at(None, b"........").unwrap();
        let n = f
            .write_vectored_at(Some(2), &[b"AA", b"BBB", b"C"])
            .unwrap();
        assert_eq!(n, 6);
        assert_eq!(f.read_at(Some(0), 8).unwrap(), b"..AABBBC");
        b.unlink("vec.bin").unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn planned_fault_draws_per_constituent() {
        use crate::fault::{FaultPlan, FaultRule, OpClass};
        use crate::telemetry::Telemetry;
        let inner = Arc::new(MemSinkBackend::new());
        // Vectored-only rule on the 3rd logical write: the plain write
        // consumes seq 1, the batch's constituents consume seq 2..4, so
        // the fault lands inside the batch's *second* buffer.
        let plan =
            FaultPlan::new(1).rule(FaultRule::on(OpClass::Write).vectored().nth(3).short(0.25));
        let b = FaultBackend::new(inner.clone(), plan, Arc::new(Telemetry::disabled()));
        let mut f = b
            .open("/short", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
            .unwrap();
        // Plain writes are untouched by the vectored-only rule.
        assert_eq!(f.write_at(Some(0), &[7u8; 8]).unwrap(), 8);
        // The batch commits buffer 0 plus a short prefix of buffer 1.
        let n = f
            .write_vectored_at(Some(8), &[&[1u8; 1], &[2u8; 3], &[3u8; 4]])
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(&inner.contents("/short").unwrap()[8..10], &[1, 2]);
        assert_eq!(b.faults_injected(), 1);
    }

    #[test]
    fn planned_fault_mid_batch_errno_surfaces_on_continuation() {
        use crate::fault::{FaultPlan, FaultRule, OpClass};
        use crate::telemetry::Telemetry;
        let inner = Arc::new(MemSinkBackend::new());
        // The 2nd logical write draws ENOSPC — mid-batch, so the call
        // commits the clean prefix and the errno lands on the caller's
        // continuation (the re-issue a serial path would have made).
        let plan = FaultPlan::new(1).rule(FaultRule::on(OpClass::Write).nth(2).errno(Errno::NoSpc));
        let b = FaultBackend::new(inner.clone(), plan, Arc::new(Telemetry::disabled()));
        let mut f = b
            .open("/mid", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
            .unwrap();
        let n = f
            .write_vectored_at(Some(0), &[&[1u8; 4], &[2u8; 4]])
            .unwrap();
        assert_eq!(n, 4, "clean prefix commits");
        assert_eq!(
            f.write_vectored_at(Some(4), &[&[2u8; 4]]),
            Err(Errno::NoSpc),
            "held errno surfaces on the continuation call"
        );
        // The hold-over is one-shot: the next batch draws normally.
        assert_eq!(f.write_vectored_at(Some(4), &[&[2u8; 4]]).unwrap(), 4);
        assert_eq!(b.faults_injected(), 1);
    }

    #[test]
    fn throttled_backend_paces() {
        let inner = Arc::new(MemSinkBackend::new());
        // 1 MiB/s: a 256 KiB write should take ≥ 200 ms.
        let b = ThrottledBackend::new(inner, (1 << 20) as f64, Duration::ZERO);
        let mut f = b
            .open("/slow", OpenFlags::WRONLY | OpenFlags::CREATE, 0)
            .unwrap();
        let t0 = Instant::now();
        f.write_at(None, &vec![0u8; 256 * 1024]).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(200));
    }
}
