//! `iofwd-cp` — copy files through an I/O-forwarding daemon.
//!
//! ```text
//! iofwd-cp put LOCAL  ADDR REMOTE     # upload through the daemon
//! iofwd-cp get ADDR REMOTE  LOCAL     # download through the daemon
//! iofwd-cp stat ADDR REMOTE           # forwarded stat
//! iofwd-cp stats ADDR [--json|--rates|--prom [--check]]   # live query
//! iofwd-cp top ADDR [-n K] [--interval SECS] [--count N]  # live top-K
//! iofwd-cp snapshot FILE              # validate a daemon JSON snapshot
//! iofwd-cp trace FILE                 # validate an exported trace JSON
//! ```
//!
//! `stats` and `top` speak the stats wire protocol to a *running*
//! daemon — either the data-path port or a dedicated `--stats-addr`
//! listener. The daemon answers from telemetry memory without touching
//! the work queue, so both keep working while the data path is wedged.
//! `top` polls full snapshots and diffs them client-side into per-client
//! rates, ranked by bytes moved over the refresh window.
//!
//! `--stats` (before the subcommand) records the latency of every
//! forwarded call client-side and prints per-operation mean/p99 —
//! the compute-node's view of the daemon's stage breakdown:
//!
//! ```text
//! iofwdd --listen 127.0.0.1:9331 --root /tmp/ion &
//! iofwd-cp --stats put ./data.bin 127.0.0.1:9331 /incoming/data.bin
//! ```
//!
//! `--trace` (also before the subcommand) stamps every forwarded call
//! with a sampled trace context; the daemon echoes its stage breakdown
//! in each reply, and the transfer ends with a latency decomposition —
//! network vs. ION residency, and which server stage dominates.
//!
//! `snapshot FILE` parses a `--stats-json` snapshot written by `iofwdd`,
//! prints a digest, and exits nonzero unless it records completed ops —
//! the CI smoke-check for the telemetry pipeline. Extra arguments are
//! assertions: a bare name requires that counter to be nonzero, and
//! `p99:queue_wait_ns<2000` requires the named histogram's 0.99
//! quantile to be below 2000 µs (the CI latency-regression gate).
//!
//! `trace FILE` validates a `--trace-out` export against the Chrome
//! trace-event schema and exits nonzero if it is malformed or empty.

use std::io::{Read, Write};
use std::time::Instant;

use iofwd::client::Client;
use iofwd::telemetry::{
    snapshot::{fmt_ns, render_top, validate_prometheus},
    HistSnapshot, TelemetrySnapshot,
};
use iofwd::trace::validate_chrome_trace;
use iofwd::transport::tcp::TcpConn;
use iofwd_proto::{OpenFlags, StatsQuery};

const CHUNK: usize = 1 << 20;

fn die(msg: &str) -> ! {
    eprintln!("iofwd-cp: {msg}");
    std::process::exit(2);
}

fn connect(addr: &str) -> Client {
    let conn =
        TcpConn::connect(addr).unwrap_or_else(|e| die(&format!("cannot connect to {addr}: {e}")));
    Client::connect(Box::new(conn))
}

/// Client-side latency recorder: one histogram per forwarded-call kind.
#[derive(Default)]
struct CallStats {
    enabled: bool,
    ops: Vec<(&'static str, HistSnapshot)>,
}

impl CallStats {
    fn new(enabled: bool) -> CallStats {
        CallStats {
            enabled,
            ops: Vec::new(),
        }
    }

    /// Time `f` and charge it to `name`'s histogram.
    fn timed<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return f();
        }
        let t0 = Instant::now();
        let out = f();
        let ns = t0.elapsed().as_nanos() as u64;
        match self.ops.iter_mut().find(|(n, _)| *n == name) {
            Some((_, h)) => h.record(ns),
            None => {
                let mut h = HistSnapshot::default();
                h.record(ns);
                self.ops.push((name, h));
            }
        }
        out
    }

    fn print(&self) {
        if !self.enabled || self.ops.is_empty() {
            return;
        }
        eprintln!("iofwd-cp: client-side op latencies");
        eprintln!(
            "  {:<8} {:>8} {:>12} {:>12} {:>12}",
            "op", "count", "mean", "p50", "p99"
        );
        for (name, h) in &self.ops {
            eprintln!(
                "  {:<8} {:>8} {:>12} {:>12} {:>12}",
                name,
                h.count,
                fmt_ns(h.mean()),
                fmt_ns(h.quantile(0.50) as f64),
                fmt_ns(h.quantile(0.99) as f64),
            );
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut stats = false;
    let mut trace = false;
    while let Some(first) = args.first().map(|s| s.as_str()) {
        match first {
            "--stats" => stats = true,
            "--trace" => trace = true,
            _ => break,
        }
        args.remove(0);
    }
    match args.first().map(|s| s.as_str()) {
        Some("put") if args.len() == 4 => put(&args[1], &args[2], &args[3], stats, trace),
        Some("get") if args.len() == 4 => get(&args[1], &args[2], &args[3], stats, trace),
        Some("stat") if args.len() == 3 => stat(&args[1], &args[2]),
        Some("stats") if args.len() >= 2 => live_stats(&args[1], &args[2..]),
        Some("top") if args.len() >= 2 => live_top(&args[1], &args[2..]),
        Some("snapshot") if args.len() >= 2 => check_snapshot(&args[1], &args[2..]),
        Some("trace") if args.len() == 2 => check_trace(&args[1]),
        _ => die(
            "usage: iofwd-cp [--stats] [--trace] put LOCAL ADDR REMOTE | get ADDR REMOTE LOCAL \
             | stat ADDR REMOTE | stats ADDR [--json|--rates|--prom [--check]] \
             | top ADDR [-n K] [--interval SECS] [--count N] \
             | snapshot FILE [ASSERTION...] | trace FILE",
        ),
    }
}

/// `stats ADDR`: one live query over the stats wire protocol. Default
/// output is the daemon's registry rendered human-readable (fetched as
/// a JSON snapshot and formatted locally); `--json` prints the raw
/// snapshot, `--rates` the windowed-rates JSON, `--prom` the Prometheus
/// exposition (with `--check` additionally validating its format — the
/// CI live-scrape gate).
fn live_stats(addr: &str, args: &[String]) {
    let mut query = StatsQuery::Snapshot;
    let mut raw_json = false;
    let mut check = false;
    for a in args {
        match a.as_str() {
            "--json" => raw_json = true,
            "--rates" => query = StatsQuery::Rates,
            "--prom" => query = StatsQuery::Prometheus,
            "--check" => check = true,
            other => die(&format!("stats: unknown option '{other}'")),
        }
    }
    if check && query != StatsQuery::Prometheus {
        die("stats: --check requires --prom");
    }
    let mut client = connect(addr);
    let data = client
        .query_stats(query)
        .unwrap_or_else(|e| die(&format!("stats query to {addr}: {e}")));
    let _ = client.shutdown();
    let text = String::from_utf8_lossy(&data);
    match query {
        StatsQuery::Snapshot if !raw_json => {
            let snap = TelemetrySnapshot::from_json(&text)
                .unwrap_or_else(|e| die(&format!("malformed snapshot from {addr}: {e}")));
            print!("{}", snap.render_text());
        }
        StatsQuery::Prometheus if check => {
            let samples =
                validate_prometheus(&text).unwrap_or_else(|e| die(&format!("bad exposition: {e}")));
            print!("{text}");
            eprintln!("iofwd-cp: exposition OK ({samples} samples)");
        }
        _ => println!("{}", text.trim_end()),
    }
}

/// `top ADDR`: poll snapshots and print the per-client rate table each
/// refresh. The first fetch is the baseline; every subsequent one diffs
/// against its predecessor, so the rates cover exactly one interval.
/// `--count N` stops after N refreshes (0 = until killed).
fn live_top(addr: &str, args: &[String]) {
    let mut k = 8usize;
    let mut interval = std::time::Duration::from_secs(1);
    let mut count = 0u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("top: {name} needs a value")))
        };
        match a.as_str() {
            "-n" => {
                k = take("-n")
                    .parse()
                    .unwrap_or_else(|_| die("top: -n needs an integer"));
            }
            "--interval" => {
                let secs: f64 = take("--interval")
                    .parse()
                    .unwrap_or_else(|_| die("top: --interval needs seconds"));
                if !secs.is_finite() || secs <= 0.0 {
                    die("top: --interval must be positive");
                }
                interval = std::time::Duration::from_secs_f64(secs);
            }
            "--count" => {
                count = take("--count")
                    .parse()
                    .unwrap_or_else(|_| die("top: --count needs an integer"));
            }
            other => die(&format!("top: unknown option '{other}'")),
        }
    }
    let mut client = connect(addr);
    let fetch = |client: &mut Client| -> TelemetrySnapshot {
        let data = client
            .query_stats(StatsQuery::Snapshot)
            .unwrap_or_else(|e| die(&format!("stats query to {addr}: {e}")));
        TelemetrySnapshot::from_json(&String::from_utf8_lossy(&data))
            .unwrap_or_else(|e| die(&format!("malformed snapshot from {addr}: {e}")))
    };
    let mut prev = fetch(&mut client);
    let mut refreshes = 0u64;
    loop {
        std::thread::sleep(interval);
        let now = fetch(&mut client);
        print!("{}", render_top(&prev, &now, k));
        prev = now;
        refreshes += 1;
        if count > 0 && refreshes >= count {
            break;
        }
    }
    let _ = client.shutdown();
}

/// Print the traced transfer's latency decomposition: how much of the
/// client-observed wall-clock the daemon accounts for, the per-stage
/// shares of that server residency, and the dominant stage.
fn print_trace_stats(client: &Client) {
    let t = client.trace_stats();
    if t.calls == 0 {
        eprintln!("iofwd-cp: trace: no replies carried a stage echo (old daemon?)");
        return;
    }
    eprintln!(
        "iofwd-cp: trace: {} calls, client {}, server {} ({:.1}%), network+client {}",
        t.calls,
        fmt_ns(t.client_ns as f64),
        fmt_ns(t.server_total_ns as f64),
        100.0 * t.server_total_ns as f64 / t.client_ns.max(1) as f64,
        fmt_ns(t.network_ns() as f64),
    );
    let mut line = String::from("iofwd-cp: stage shares of wall-clock:");
    for (name, share) in t.shares() {
        line.push_str(&format!(" {name} {:.1}%", share * 100.0));
    }
    eprintln!("{line}");
    let (stage, share) = t.dominant_server_stage();
    eprintln!(
        "iofwd-cp: dominant server stage: {stage} ({:.1}% of server residency)",
        share * 100.0
    );
}

fn put(local: &str, addr: &str, remote: &str, stats: bool, trace: bool) {
    let mut calls = CallStats::new(stats);
    let mut src = std::fs::File::open(local).unwrap_or_else(|e| die(&format!("open {local}: {e}")));
    let mut client = connect(addr);
    if trace {
        client.enable_tracing();
    }
    let fd = calls
        .timed("open", || {
            client.open(
                remote,
                OpenFlags::WRONLY | OpenFlags::CREATE | OpenFlags::TRUNC,
                0o644,
            )
        })
        .unwrap_or_else(|e| die(&format!("remote open {remote}: {e}")));
    let mut buf = vec![0u8; CHUNK];
    let mut total = 0u64;
    let t0 = Instant::now();
    loop {
        let n = src
            .read(&mut buf)
            .unwrap_or_else(|e| die(&format!("read {local}: {e}")));
        if n == 0 {
            break;
        }
        calls
            .timed("write", || client.write(fd, &buf[..n]))
            .unwrap_or_else(|e| die(&format!("forwarded write: {e}")));
        total += n as u64;
    }
    calls
        .timed("fsync", || client.fsync(fd))
        .unwrap_or_else(|e| die(&format!("fsync (staged writes): {e}")));
    calls
        .timed("close", || client.close(fd))
        .unwrap_or_else(|e| die(&format!("close: {e}")));
    let _ = client.shutdown();
    report("put", total, t0, client.stats().staged_writes);
    calls.print();
    if trace {
        print_trace_stats(&client);
    }
}

fn get(addr: &str, remote: &str, local: &str, stats: bool, trace: bool) {
    let mut calls = CallStats::new(stats);
    let mut client = connect(addr);
    if trace {
        client.enable_tracing();
    }
    let fd = calls
        .timed("open", || client.open(remote, OpenFlags::RDONLY, 0))
        .unwrap_or_else(|e| die(&format!("remote open {remote}: {e}")));
    let mut dst =
        std::fs::File::create(local).unwrap_or_else(|e| die(&format!("create {local}: {e}")));
    let mut total = 0u64;
    let t0 = Instant::now();
    loop {
        let data = calls
            .timed("read", || client.read(fd, CHUNK as u64))
            .unwrap_or_else(|e| die(&format!("forwarded read: {e}")));
        if data.is_empty() {
            break;
        }
        dst.write_all(&data)
            .unwrap_or_else(|e| die(&format!("write {local}: {e}")));
        total += data.len() as u64;
    }
    calls
        .timed("close", || client.close(fd))
        .unwrap_or_else(|e| die(&format!("close: {e}")));
    let _ = client.shutdown();
    report("get", total, t0, 0);
    calls.print();
    if trace {
        print_trace_stats(&client);
    }
}

fn stat(addr: &str, remote: &str) {
    let mut client = connect(addr);
    let st = client
        .stat(remote)
        .unwrap_or_else(|e| die(&format!("stat {remote}: {e}")));
    let _ = client.shutdown();
    println!(
        "{remote}: {} bytes, mode {:o}, mtime {} ns{}",
        st.size,
        st.mode,
        st.mtime_ns,
        if st.is_dir { ", directory" } else { "" }
    );
}

/// A `pQQ:HIST<USEC` percentile assertion from the `snapshot` argv:
/// require `HIST`'s `QQ/100` quantile to be below `USEC` microseconds.
struct PercentileAssert {
    quantile: f64,
    hist: String,
    max_usec: u64,
}

/// Parse `p99:queue_wait_ns<2000` (also `p50`, `p99.9`, ...). Returns
/// `None` for arguments that are plain counter names.
fn parse_percentile_assert(arg: &str) -> Option<Result<PercentileAssert, String>> {
    let rest = arg.strip_prefix('p')?;
    let (pct, rest) = rest.split_once(':')?;
    let Ok(pct) = pct.parse::<f64>() else {
        return Some(Err(format!("bad percentile in '{arg}'")));
    };
    if !(0.0..=100.0).contains(&pct) {
        return Some(Err(format!("percentile out of range in '{arg}'")));
    }
    let Some((hist, bound)) = rest.split_once('<') else {
        return Some(Err(format!(
            "'{arg}' needs a '<USEC' bound (e.g. p99:queue_wait_ns<2000)"
        )));
    };
    let Ok(max_usec) = bound.parse::<u64>() else {
        return Some(Err(format!("bad microsecond bound in '{arg}'")));
    };
    Some(Ok(PercentileAssert {
        quantile: pct / 100.0,
        hist: hist.to_string(),
        max_usec,
    }))
}

/// Parse a daemon `--stats-json` snapshot and verify it shows activity.
/// Exit status is the CI contract: 0 iff the snapshot parses, records at
/// least one completed op, and every assertion holds. A bare name
/// requires that counter to be nonzero (the chaos smoke passes e.g.
/// `faults_injected retries_attempted` to prove the fault plan actually
/// fired); a `p99:HIST<USEC` argument bounds a stage-latency percentile
/// (the CI latency-regression gate).
fn check_snapshot(path: &str, assertions: &[String]) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    let snap =
        TelemetrySnapshot::from_json(&text).unwrap_or_else(|e| die(&format!("parse {path}: {e}")));
    let ops = snap.counter("ops_completed");
    let frames_in = snap.counter("frames_in");
    let bytes_in = snap.counter("transport_bytes_in");
    println!(
        "{path}: {ops} ops completed, {frames_in} frames in, {bytes_in} bytes in, \
         {} counters / {} gauges / {} histograms",
        snap.counters.len(),
        snap.gauges.len(),
        snap.hists.len(),
    );
    if ops == 0 {
        die("snapshot records zero completed ops");
    }
    for arg in assertions {
        if let Some(parsed) = parse_percentile_assert(arg) {
            let a = parsed.unwrap_or_else(|e| die(&e));
            let Some((_, h)) = snap.hists.iter().find(|(n, _)| *n == a.hist) else {
                die(&format!("snapshot has no histogram named '{}'", a.hist));
            };
            if h.count == 0 {
                die(&format!("histogram '{}' recorded no samples", a.hist));
            }
            let got_ns = h.quantile(a.quantile);
            println!(
                "{path}: {arg}: p{} of {} = {} (bound {} µs)",
                a.quantile * 100.0,
                a.hist,
                fmt_ns(got_ns as f64),
                a.max_usec
            );
            if got_ns >= a.max_usec * 1_000 {
                die(&format!(
                    "percentile assertion failed: {arg} (got {})",
                    fmt_ns(got_ns as f64)
                ));
            }
            continue;
        }
        if !snap.counters.iter().any(|(n, _)| n == arg) {
            die(&format!("snapshot has no counter named '{arg}'"));
        }
        let v = snap.counter(arg);
        println!("{path}: {arg} = {v}");
        if v == 0 {
            die(&format!("required counter '{arg}' is zero"));
        }
    }
}

/// Validate a `--trace-out` export: well-formed Chrome trace-event JSON
/// with at least one duration slice. Prints the track/slice digest that
/// the CI gate (and a curious operator) wants to see.
fn check_trace(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    let summary =
        validate_chrome_trace(&text).unwrap_or_else(|e| die(&format!("invalid trace {path}: {e}")));
    println!(
        "{path}: {} events ({} slices, {} counter samples), \
         {} client track(s), {} worker track(s), {:.1} ms span",
        summary.events,
        summary.slices,
        summary.counter_events,
        summary.client_tracks,
        summary.worker_tracks,
        summary.span_us / 1_000.0,
    );
    if summary.slices == 0 {
        die("trace contains no op slices");
    }
}

fn report(verb: &str, bytes: u64, t0: Instant, staged: u64) {
    let secs = t0.elapsed().as_secs_f64();
    let mib = bytes as f64 / (1 << 20) as f64;
    eprintln!(
        "iofwd-cp: {verb} {mib:.1} MiB in {secs:.2}s ({:.1} MiB/s{})",
        mib / secs.max(1e-9),
        if staged > 0 {
            format!(", {staged} staged ops")
        } else {
            String::new()
        }
    );
}

#[cfg(test)]
mod tests {
    use super::parse_percentile_assert;

    #[test]
    fn percentile_grammar_parses() {
        let a = parse_percentile_assert("p99:queue_wait_ns<2000")
            .expect("recognized")
            .expect("valid");
        assert!((a.quantile - 0.99).abs() < 1e-9);
        assert_eq!(a.hist, "queue_wait_ns");
        assert_eq!(a.max_usec, 2000);

        let a = parse_percentile_assert("p99.9:total_ns<500000")
            .expect("recognized")
            .expect("valid");
        assert!((a.quantile - 0.999).abs() < 1e-9);
    }

    #[test]
    fn plain_counter_names_are_not_percentiles() {
        assert!(parse_percentile_assert("faults_injected").is_none());
        assert!(parse_percentile_assert("ops_completed").is_none());
        // 'p'-prefixed counters without a ':' stay counters too.
        assert!(parse_percentile_assert("pool_hits").is_none());
    }

    #[test]
    fn malformed_assertions_are_errors_not_counters() {
        assert!(parse_percentile_assert("p99:queue_wait_ns")
            .unwrap()
            .is_err());
        assert!(parse_percentile_assert("pxx:queue_wait_ns<5")
            .unwrap()
            .is_err());
        assert!(parse_percentile_assert("p150:queue_wait_ns<5")
            .unwrap()
            .is_err());
        assert!(parse_percentile_assert("p99:queue_wait_ns<abc")
            .unwrap()
            .is_err());
    }
}
