//! `iofwd-cp` — copy files through an I/O-forwarding daemon.
//!
//! ```text
//! iofwd-cp put LOCAL  ADDR REMOTE     # upload through the daemon
//! iofwd-cp get ADDR REMOTE  LOCAL     # download through the daemon
//! iofwd-cp stat ADDR REMOTE           # forwarded stat
//! ```
//!
//! Example against a local daemon:
//!
//! ```text
//! iofwdd --listen 127.0.0.1:9331 --root /tmp/ion &
//! iofwd-cp put ./data.bin 127.0.0.1:9331 /incoming/data.bin
//! ```

use std::io::{Read, Write};
use std::time::Instant;

use iofwd::client::Client;
use iofwd::transport::tcp::TcpConn;
use iofwd_proto::OpenFlags;

const CHUNK: usize = 1 << 20;

fn die(msg: &str) -> ! {
    eprintln!("iofwd-cp: {msg}");
    std::process::exit(2);
}

fn connect(addr: &str) -> Client {
    let conn =
        TcpConn::connect(addr).unwrap_or_else(|e| die(&format!("cannot connect to {addr}: {e}")));
    Client::connect(Box::new(conn))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("put") if args.len() == 4 => put(&args[1], &args[2], &args[3]),
        Some("get") if args.len() == 4 => get(&args[1], &args[2], &args[3]),
        Some("stat") if args.len() == 3 => stat(&args[1], &args[2]),
        _ => {
            die("usage: iofwd-cp put LOCAL ADDR REMOTE | get ADDR REMOTE LOCAL | stat ADDR REMOTE")
        }
    }
}

fn put(local: &str, addr: &str, remote: &str) {
    let mut src = std::fs::File::open(local).unwrap_or_else(|e| die(&format!("open {local}: {e}")));
    let mut client = connect(addr);
    let fd = client
        .open(
            remote,
            OpenFlags::WRONLY | OpenFlags::CREATE | OpenFlags::TRUNC,
            0o644,
        )
        .unwrap_or_else(|e| die(&format!("remote open {remote}: {e}")));
    let mut buf = vec![0u8; CHUNK];
    let mut total = 0u64;
    let t0 = Instant::now();
    loop {
        let n = src
            .read(&mut buf)
            .unwrap_or_else(|e| die(&format!("read {local}: {e}")));
        if n == 0 {
            break;
        }
        client
            .write(fd, &buf[..n])
            .unwrap_or_else(|e| die(&format!("forwarded write: {e}")));
        total += n as u64;
    }
    client
        .fsync(fd)
        .unwrap_or_else(|e| die(&format!("fsync (staged writes): {e}")));
    client
        .close(fd)
        .unwrap_or_else(|e| die(&format!("close: {e}")));
    let _ = client.shutdown();
    report("put", total, t0, client.stats().staged_writes);
}

fn get(addr: &str, remote: &str, local: &str) {
    let mut client = connect(addr);
    let fd = client
        .open(remote, OpenFlags::RDONLY, 0)
        .unwrap_or_else(|e| die(&format!("remote open {remote}: {e}")));
    let mut dst =
        std::fs::File::create(local).unwrap_or_else(|e| die(&format!("create {local}: {e}")));
    let mut total = 0u64;
    let t0 = Instant::now();
    loop {
        let data = client
            .read(fd, CHUNK as u64)
            .unwrap_or_else(|e| die(&format!("forwarded read: {e}")));
        if data.is_empty() {
            break;
        }
        dst.write_all(&data)
            .unwrap_or_else(|e| die(&format!("write {local}: {e}")));
        total += data.len() as u64;
    }
    client
        .close(fd)
        .unwrap_or_else(|e| die(&format!("close: {e}")));
    let _ = client.shutdown();
    report("get", total, t0, 0);
}

fn stat(addr: &str, remote: &str) {
    let mut client = connect(addr);
    let st = client
        .stat(remote)
        .unwrap_or_else(|e| die(&format!("stat {remote}: {e}")));
    let _ = client.shutdown();
    println!(
        "{remote}: {} bytes, mode {:o}, mtime {} ns{}",
        st.size,
        st.mode,
        st.mtime_ns,
        if st.is_dir { ", directory" } else { "" }
    );
}

fn report(verb: &str, bytes: u64, t0: Instant, staged: u64) {
    let secs = t0.elapsed().as_secs_f64();
    let mib = bytes as f64 / (1 << 20) as f64;
    eprintln!(
        "iofwd-cp: {verb} {mib:.1} MiB in {secs:.2}s ({:.1} MiB/s{})",
        mib / secs.max(1e-9),
        if staged > 0 {
            format!(", {staged} staged ops")
        } else {
            String::new()
        }
    );
}
