//! `iofwd-cp` — copy files through an I/O-forwarding daemon.
//!
//! ```text
//! iofwd-cp put LOCAL  ADDR REMOTE     # upload through the daemon
//! iofwd-cp get ADDR REMOTE  LOCAL     # download through the daemon
//! iofwd-cp stat ADDR REMOTE           # forwarded stat
//! iofwd-cp snapshot FILE              # validate a daemon JSON snapshot
//! ```
//!
//! `--stats` (before the subcommand) records the latency of every
//! forwarded call client-side and prints per-operation mean/p99 —
//! the compute-node's view of the daemon's stage breakdown:
//!
//! ```text
//! iofwdd --listen 127.0.0.1:9331 --root /tmp/ion &
//! iofwd-cp --stats put ./data.bin 127.0.0.1:9331 /incoming/data.bin
//! ```
//!
//! `snapshot FILE` parses a `--stats-json` snapshot written by `iofwdd`,
//! prints a digest, and exits nonzero unless it records completed ops —
//! the CI smoke-check for the telemetry pipeline.

use std::io::{Read, Write};
use std::time::Instant;

use iofwd::client::Client;
use iofwd::telemetry::{snapshot::fmt_ns, HistSnapshot, TelemetrySnapshot};
use iofwd::transport::tcp::TcpConn;
use iofwd_proto::OpenFlags;

const CHUNK: usize = 1 << 20;

fn die(msg: &str) -> ! {
    eprintln!("iofwd-cp: {msg}");
    std::process::exit(2);
}

fn connect(addr: &str) -> Client {
    let conn =
        TcpConn::connect(addr).unwrap_or_else(|e| die(&format!("cannot connect to {addr}: {e}")));
    Client::connect(Box::new(conn))
}

/// Client-side latency recorder: one histogram per forwarded-call kind.
#[derive(Default)]
struct CallStats {
    enabled: bool,
    ops: Vec<(&'static str, HistSnapshot)>,
}

impl CallStats {
    fn new(enabled: bool) -> CallStats {
        CallStats {
            enabled,
            ops: Vec::new(),
        }
    }

    /// Time `f` and charge it to `name`'s histogram.
    fn timed<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return f();
        }
        let t0 = Instant::now();
        let out = f();
        let ns = t0.elapsed().as_nanos() as u64;
        match self.ops.iter_mut().find(|(n, _)| *n == name) {
            Some((_, h)) => h.record(ns),
            None => {
                let mut h = HistSnapshot::default();
                h.record(ns);
                self.ops.push((name, h));
            }
        }
        out
    }

    fn print(&self) {
        if !self.enabled || self.ops.is_empty() {
            return;
        }
        eprintln!("iofwd-cp: client-side op latencies");
        eprintln!(
            "  {:<8} {:>8} {:>12} {:>12} {:>12}",
            "op", "count", "mean", "p50", "p99"
        );
        for (name, h) in &self.ops {
            eprintln!(
                "  {:<8} {:>8} {:>12} {:>12} {:>12}",
                name,
                h.count,
                fmt_ns(h.mean()),
                fmt_ns(h.quantile(0.50) as f64),
                fmt_ns(h.quantile(0.99) as f64),
            );
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let stats = args.first().map(|s| s.as_str()) == Some("--stats");
    if stats {
        args.remove(0);
    }
    match args.first().map(|s| s.as_str()) {
        Some("put") if args.len() == 4 => put(&args[1], &args[2], &args[3], stats),
        Some("get") if args.len() == 4 => get(&args[1], &args[2], &args[3], stats),
        Some("stat") if args.len() == 3 => stat(&args[1], &args[2]),
        Some("snapshot") if args.len() >= 2 => check_snapshot(&args[1], &args[2..]),
        _ => die(
            "usage: iofwd-cp [--stats] put LOCAL ADDR REMOTE | get ADDR REMOTE LOCAL \
             | stat ADDR REMOTE | snapshot FILE [COUNTER...]",
        ),
    }
}

fn put(local: &str, addr: &str, remote: &str, stats: bool) {
    let mut calls = CallStats::new(stats);
    let mut src = std::fs::File::open(local).unwrap_or_else(|e| die(&format!("open {local}: {e}")));
    let mut client = connect(addr);
    let fd = calls
        .timed("open", || {
            client.open(
                remote,
                OpenFlags::WRONLY | OpenFlags::CREATE | OpenFlags::TRUNC,
                0o644,
            )
        })
        .unwrap_or_else(|e| die(&format!("remote open {remote}: {e}")));
    let mut buf = vec![0u8; CHUNK];
    let mut total = 0u64;
    let t0 = Instant::now();
    loop {
        let n = src
            .read(&mut buf)
            .unwrap_or_else(|e| die(&format!("read {local}: {e}")));
        if n == 0 {
            break;
        }
        calls
            .timed("write", || client.write(fd, &buf[..n]))
            .unwrap_or_else(|e| die(&format!("forwarded write: {e}")));
        total += n as u64;
    }
    calls
        .timed("fsync", || client.fsync(fd))
        .unwrap_or_else(|e| die(&format!("fsync (staged writes): {e}")));
    calls
        .timed("close", || client.close(fd))
        .unwrap_or_else(|e| die(&format!("close: {e}")));
    let _ = client.shutdown();
    report("put", total, t0, client.stats().staged_writes);
    calls.print();
}

fn get(addr: &str, remote: &str, local: &str, stats: bool) {
    let mut calls = CallStats::new(stats);
    let mut client = connect(addr);
    let fd = calls
        .timed("open", || client.open(remote, OpenFlags::RDONLY, 0))
        .unwrap_or_else(|e| die(&format!("remote open {remote}: {e}")));
    let mut dst =
        std::fs::File::create(local).unwrap_or_else(|e| die(&format!("create {local}: {e}")));
    let mut total = 0u64;
    let t0 = Instant::now();
    loop {
        let data = calls
            .timed("read", || client.read(fd, CHUNK as u64))
            .unwrap_or_else(|e| die(&format!("forwarded read: {e}")));
        if data.is_empty() {
            break;
        }
        dst.write_all(&data)
            .unwrap_or_else(|e| die(&format!("write {local}: {e}")));
        total += data.len() as u64;
    }
    calls
        .timed("close", || client.close(fd))
        .unwrap_or_else(|e| die(&format!("close: {e}")));
    let _ = client.shutdown();
    report("get", total, t0, 0);
    calls.print();
}

fn stat(addr: &str, remote: &str) {
    let mut client = connect(addr);
    let st = client
        .stat(remote)
        .unwrap_or_else(|e| die(&format!("stat {remote}: {e}")));
    let _ = client.shutdown();
    println!(
        "{remote}: {} bytes, mode {:o}, mtime {} ns{}",
        st.size,
        st.mode,
        st.mtime_ns,
        if st.is_dir { ", directory" } else { "" }
    );
}

/// Parse a daemon `--stats-json` snapshot and verify it shows activity.
/// Exit status is the CI contract: 0 iff the snapshot parses, records at
/// least one completed op, and every explicitly named counter is nonzero
/// (the chaos smoke passes e.g. `faults_injected retries_attempted` to
/// prove the fault plan actually fired and retries actually ran).
fn check_snapshot(path: &str, require_nonzero: &[String]) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    let snap =
        TelemetrySnapshot::from_json(&text).unwrap_or_else(|e| die(&format!("parse {path}: {e}")));
    let ops = snap.counter("ops_completed");
    let frames_in = snap.counter("frames_in");
    let bytes_in = snap.counter("transport_bytes_in");
    println!(
        "{path}: {ops} ops completed, {frames_in} frames in, {bytes_in} bytes in, \
         {} counters / {} gauges / {} histograms",
        snap.counters.len(),
        snap.gauges.len(),
        snap.hists.len(),
    );
    if ops == 0 {
        die("snapshot records zero completed ops");
    }
    for name in require_nonzero {
        if !snap.counters.iter().any(|(n, _)| n == name) {
            die(&format!("snapshot has no counter named '{name}'"));
        }
        let v = snap.counter(name);
        println!("{path}: {name} = {v}");
        if v == 0 {
            die(&format!("required counter '{name}' is zero"));
        }
    }
}

fn report(verb: &str, bytes: u64, t0: Instant, staged: u64) {
    let secs = t0.elapsed().as_secs_f64();
    let mib = bytes as f64 / (1 << 20) as f64;
    eprintln!(
        "iofwd-cp: {verb} {mib:.1} MiB in {secs:.2}s ({:.1} MiB/s{})",
        mib / secs.max(1e-9),
        if staged > 0 {
            format!(", {staged} staged ops")
        } else {
            String::new()
        }
    );
}
