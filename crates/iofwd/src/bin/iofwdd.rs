//! `iofwdd` — the I/O-forwarding daemon as a deployable binary.
//!
//! Plays the ION's role on any Linux box: listens on TCP, executes
//! forwarded I/O against a sandboxed directory tree.
//!
//! ```text
//! iofwdd --listen 0.0.0.0:9331 --root /srv/iofwd --mode staged --workers 4 --bml-mib 256
//! iofwdd --mode zoid --root /tmp/ion            # ZOID-style baseline
//! ```

use std::sync::Arc;

use iofwd::backend::FileBackend;
use iofwd::server::{ForwardingMode, IonServer, ServerConfig};
use iofwd::transport::tcp::TcpAcceptor;

struct Options {
    listen: String,
    root: String,
    mode: String,
    workers: usize,
    bml_mib: u64,
}

impl Options {
    fn parse() -> Options {
        let mut opts = Options {
            listen: "127.0.0.1:9331".into(),
            root: "./iofwd-root".into(),
            mode: "staged".into(),
            workers: 4,
            bml_mib: 256,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut take = |name: &str| {
                args.next()
                    .unwrap_or_else(|| die(&format!("{name} needs a value")))
            };
            match a.as_str() {
                "--listen" => opts.listen = take("--listen"),
                "--root" => opts.root = take("--root"),
                "--mode" => opts.mode = take("--mode"),
                "--workers" => {
                    opts.workers = take("--workers").parse().unwrap_or_else(|_| {
                        die("--workers needs an integer");
                    })
                }
                "--bml-mib" => {
                    opts.bml_mib = take("--bml-mib").parse().unwrap_or_else(|_| {
                        die("--bml-mib needs an integer");
                    })
                }
                "--help" | "-h" => {
                    println!(
                        "usage: iofwdd [--listen ADDR] [--root DIR] \
                         [--mode ciod|zoid|sched|staged] [--workers N] [--bml-mib N]"
                    );
                    std::process::exit(0);
                }
                other => die(&format!("unknown option '{other}' (try --help)")),
            }
        }
        opts
    }

    fn forwarding_mode(&self) -> ForwardingMode {
        match self.mode.as_str() {
            "ciod" => ForwardingMode::Ciod,
            "zoid" => ForwardingMode::Zoid,
            "sched" => ForwardingMode::Sched {
                workers: self.workers,
            },
            "staged" | "async" => ForwardingMode::AsyncStaged {
                workers: self.workers,
                bml_capacity: self.bml_mib << 20,
            },
            other => die(&format!("unknown mode '{other}'")),
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("iofwdd: {msg}");
    std::process::exit(2);
}

fn main() {
    let opts = Options::parse();
    let mode = opts.forwarding_mode();
    std::fs::create_dir_all(&opts.root)
        .unwrap_or_else(|e| die(&format!("cannot create root {}: {e}", opts.root)));
    let acceptor = TcpAcceptor::bind(&opts.listen)
        .unwrap_or_else(|e| die(&format!("cannot bind {}: {e}", opts.listen)));
    let addr = acceptor.local_addr().expect("local addr");
    let backend = Arc::new(FileBackend::new(&opts.root));
    let server = IonServer::spawn(Box::new(acceptor), backend, ServerConfig::new(mode));
    eprintln!(
        "iofwdd: listening on {addr}, mode {}, root {}, {} worker(s), {} MiB BML",
        opts.mode, opts.root, opts.workers, opts.bml_mib
    );
    eprintln!("iofwdd: press Ctrl-C to stop");

    // Periodically report daemon statistics until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(30));
        let s = server.stats();
        eprintln!(
            "iofwdd: {} requests, {} MiB in, {} MiB out, {} staged ops, {} open fds",
            s.requests,
            s.bytes_in >> 20,
            s.bytes_out >> 20,
            s.staged_ops,
            server.open_descriptors()
        );
    }
}
