//! `iofwdd` — the I/O-forwarding daemon as a deployable binary.
//!
//! Plays the ION's role on any Linux box: listens on TCP, executes
//! forwarded I/O against a sandboxed directory tree.
//!
//! ```text
//! iofwdd --listen 0.0.0.0:9331 --root /srv/iofwd --mode staged --workers 4 --bml-mib 256
//! iofwdd --mode zoid --root /tmp/ion            # ZOID-style baseline
//! ```
//!
//! Observability (`iofwd::telemetry` is always compiled in and on):
//!
//! * `--stats-interval SECS` — periodic human-readable dump of the full
//!   registry (counters, gauges, stage-latency histograms) to stderr.
//! * `--stats-json PATH` — at each interval (and on demand) write a
//!   machine-readable JSON snapshot atomically (tmp + rename).
//! * `--dump-trigger PATH` — on-demand dump: `touch PATH` and the daemon
//!   dumps immediately (including the flight recorder's recent-op table)
//!   then removes the file. A portable stand-in for SIGUSR1.
//! * `--port-file PATH` — write the bound port (for `--listen host:0`).
//!
//! Live introspection (DESIGN.md §16; `Request::Stats` is also answered
//! in-band on every data connection — `iofwd-cp stats|top ADDR`):
//!
//! * `--stats-addr HOST:PORT` — out-of-band stats listener speaking the
//!   framed protocol but accepting only stats queries; answers even
//!   when every data connection is parked under backpressure.
//! * `--stats-port-file PATH` — write the stats listener's bound port
//!   (for `--stats-addr host:0`).
//! * `--attribution on|off` — per-client attribution table (default
//!   on): ops, payload bytes, stage histograms, backpressure per
//!   client id.
//! * `--watchdog [k=v,...]` — event-loop/queue health watchdog
//!   (`interval_ms`, `queue_age_ms`, `loop_lag_ms`, `wbuf_bytes`,
//!   `wbuf_strikes`, `dump=PATH`): each SLO is a rising-edge latch
//!   that bumps `watchdog_trips`, logs one structured reason line, and
//!   appends a flight-recorder dump.
//!
//! Robustness (`iofwd::fault`):
//!
//! * `--fault-plan PATH` — wrap the backend in a deterministic, seeded
//!   fault injector driven by the plan file (chaos testing; see
//!   DESIGN.md §10 for the plan grammar).
//! * `--retry-attempts N` — max attempts for transient backend errors
//!   (EAGAIN/EIO/ECONNRESET). Default 4; `1` disables retries.
//!
//! Performance (DESIGN.md §12):
//!
//! * `--coalesce[=off|MAX_BYTES,MAX_OPS]` — staged-write coalescing:
//!   offset-contiguous writes parked on one descriptor merge into a
//!   single vectored backend call. On by default for the worker-pool
//!   modes (sched/staged) with budgets 1 MiB / 16 ops; off (and
//!   meaningless) for ciod/zoid.
//! * `--throttle PER_OP_US,BW_MIB_S` — wrap the file backend in the
//!   deterministic device model (`ThrottledBackend`): a fixed
//!   per-operation cost plus a bandwidth limit shared by all
//!   descriptors. The experiment harness (DESIGN.md §14) uses this to
//!   make backend-bound regimes reproducible on arbitrary hardware.
//! * `--hotpath fast|seed` — data-path variant (DESIGN.md §17).
//!   `fast` (default) keeps payloads as refcounted views of the receive
//!   buffer from socket to backend, adopts them into the BML, serves
//!   reads from recycled slab blocks, and shards the work queue with
//!   stealing; `seed` re-enacts the pre-zero-copy profile (deep-copy
//!   staging, single shared FIFO) as the paired-benchmark control arm.
//!
//! Tracing (`iofwd::trace`; see DESIGN.md §11):
//!
//! * `--trace-out PATH` — export retained op spans as Chrome
//!   trace-event JSON (Perfetto-loadable), rewritten atomically whenever
//!   new spans arrive. Spans flagged sampled by a tracing client
//!   (`iofwd-cp --trace`) are always retained.
//! * `--trace-sample N` — additionally self-sample every Nth completed
//!   op regardless of client flags (0 disables; default 0).

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use iofwd::backend::{FaultBackend, FileBackend, ThrottledBackend};
use iofwd::fault::{FaultPlan, RetryPolicy};
use iofwd::server::{
    introspect, watchdog, CoalesceConfig, ForwardingMode, HotPath, IonServer, QueueDiscipline,
    ServerConfig, WatchdogConfig,
};
use iofwd::telemetry::{snapshot, Telemetry};
use iofwd::trace::TraceExporter;
use iofwd::transport::tcp::TcpAcceptor;

struct Options {
    listen: String,
    root: String,
    mode: String,
    workers: usize,
    bml_mib: u64,
    stats_interval: u64,
    stats_json: Option<String>,
    dump_trigger: Option<String>,
    port_file: Option<String>,
    /// Out-of-band introspection listener (`iofwd-cp stats --addr`).
    stats_addr: Option<String>,
    /// Where to write the stats listener's bound port (for `:0`).
    stats_port_file: Option<String>,
    /// `--watchdog` spec (absent = watchdog off).
    watchdog: Option<WatchdogConfig>,
    /// Per-client attribution (on unless `--attribution off`).
    attribution: bool,
    fault_plan: Option<String>,
    retry_attempts: u32,
    trace_out: Option<String>,
    trace_sample: u64,
    /// `None` = mode default (on for sched/staged, off for ciod/zoid);
    /// `Some(None)` = forced off; `Some(Some(cfg))` = forced on.
    coalesce: Option<Option<CoalesceConfig>>,
    /// Device model: `(per_op, bytes_per_sec)`.
    throttle: Option<(Duration, f64)>,
    /// `threads` (thread-per-connection) or `reactor` (poll-based
    /// event loops; requires a worker-pool mode).
    transport: String,
    /// Event-loop threads for `--transport reactor`.
    reactor_threads: usize,
    /// Inject a synthetic EMFILE on every Nth accept attempt (0 = off);
    /// the connection-churn chaos harness flips this on.
    accept_fault_every: u64,
    /// Data-path variant: `fast` (zero-copy staging + sharded
    /// work-stealing queues) or `seed` (deep-copy staging + one shared
    /// FIFO — the paired-benchmark control arm).
    hotpath: String,
}

impl Options {
    fn parse() -> Options {
        let mut opts = Options {
            listen: "127.0.0.1:9331".into(),
            root: "./iofwd-root".into(),
            mode: "staged".into(),
            workers: 4,
            bml_mib: 256,
            stats_interval: 30,
            stats_json: None,
            dump_trigger: None,
            port_file: None,
            stats_addr: None,
            stats_port_file: None,
            watchdog: None,
            attribution: true,
            fault_plan: None,
            retry_attempts: 4,
            trace_out: None,
            trace_sample: 0,
            coalesce: None,
            throttle: None,
            transport: "threads".into(),
            reactor_threads: 2,
            accept_fault_every: 0,
            hotpath: "fast".into(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut take = |name: &str| {
                args.next()
                    .unwrap_or_else(|| die(&format!("{name} needs a value")))
            };
            match a.as_str() {
                "--listen" => opts.listen = take("--listen"),
                "--root" => opts.root = take("--root"),
                "--mode" => opts.mode = take("--mode"),
                "--workers" => {
                    opts.workers = take("--workers").parse().unwrap_or_else(|_| {
                        die("--workers needs an integer");
                    })
                }
                "--bml-mib" => {
                    opts.bml_mib = take("--bml-mib").parse().unwrap_or_else(|_| {
                        die("--bml-mib needs an integer");
                    })
                }
                "--stats-interval" => {
                    opts.stats_interval = take("--stats-interval").parse().unwrap_or_else(|_| {
                        die("--stats-interval needs an integer (seconds; 0 disables)");
                    })
                }
                "--stats-json" => opts.stats_json = Some(take("--stats-json")),
                "--stats-addr" => opts.stats_addr = Some(take("--stats-addr")),
                "--stats-port-file" => opts.stats_port_file = Some(take("--stats-port-file")),
                "--watchdog" => {
                    let spec = take("--watchdog");
                    opts.watchdog = Some(WatchdogConfig::parse(&spec).unwrap_or_else(|e| die(&e)));
                }
                "--attribution" => {
                    opts.attribution = match take("--attribution").as_str() {
                        "on" => true,
                        "off" => false,
                        _ => die("--attribution must be 'on' or 'off'"),
                    };
                }
                "--dump-trigger" => opts.dump_trigger = Some(take("--dump-trigger")),
                "--port-file" => opts.port_file = Some(take("--port-file")),
                "--fault-plan" => opts.fault_plan = Some(take("--fault-plan")),
                "--retry-attempts" => {
                    opts.retry_attempts = take("--retry-attempts").parse().unwrap_or_else(|_| {
                        die("--retry-attempts needs an integer (1 disables retries)");
                    })
                }
                // --coalesce            enable with mode defaults
                // --coalesce=off        disable merging
                // --coalesce=BYTES,OPS  enable with explicit budgets
                "--coalesce" => opts.coalesce = Some(Some(CoalesceConfig::default())),
                s if s.starts_with("--coalesce=") => {
                    let v = &s["--coalesce=".len()..];
                    opts.coalesce = if v == "off" {
                        Some(None)
                    } else {
                        let (bytes, ops) = v
                            .split_once(',')
                            .unwrap_or_else(|| die("--coalesce needs 'off' or MAX_BYTES,MAX_OPS"));
                        let max_bytes = bytes
                            .parse()
                            .unwrap_or_else(|_| die("--coalesce MAX_BYTES must be an integer"));
                        let max_ops = ops
                            .parse()
                            .unwrap_or_else(|_| die("--coalesce MAX_OPS must be an integer"));
                        if max_bytes == 0 || max_ops == 0 {
                            die("--coalesce budgets must be nonzero");
                        }
                        Some(Some(CoalesceConfig { max_bytes, max_ops }))
                    };
                }
                "--throttle" => {
                    let v = take("--throttle");
                    let (per_op, bw) = v
                        .split_once(',')
                        .unwrap_or_else(|| die("--throttle needs PER_OP_US,BW_MIB_S"));
                    let per_op_us: u64 = per_op
                        .parse()
                        .unwrap_or_else(|_| die("--throttle PER_OP_US must be an integer"));
                    let bw_mib: f64 = bw
                        .parse()
                        .unwrap_or_else(|_| die("--throttle BW_MIB_S must be a number"));
                    if bw_mib <= 0.0 {
                        die("--throttle BW_MIB_S must be positive");
                    }
                    opts.throttle = Some((
                        Duration::from_micros(per_op_us),
                        bw_mib * (1u64 << 20) as f64,
                    ));
                }
                "--transport" => {
                    opts.transport = take("--transport");
                    if opts.transport != "threads" && opts.transport != "reactor" {
                        die("--transport must be 'threads' or 'reactor'");
                    }
                }
                "--reactor-threads" => {
                    opts.reactor_threads = take("--reactor-threads").parse().unwrap_or_else(|_| {
                        die("--reactor-threads needs an integer");
                    });
                    if opts.reactor_threads == 0 {
                        die("--reactor-threads must be nonzero");
                    }
                }
                "--accept-fault-every" => {
                    opts.accept_fault_every =
                        take("--accept-fault-every").parse().unwrap_or_else(|_| {
                            die("--accept-fault-every needs an integer (0 disables)");
                        })
                }
                "--hotpath" => {
                    opts.hotpath = take("--hotpath");
                    if opts.hotpath != "fast" && opts.hotpath != "seed" {
                        die("--hotpath must be 'fast' or 'seed'");
                    }
                }
                "--trace-out" => opts.trace_out = Some(take("--trace-out")),
                "--trace-sample" => {
                    opts.trace_sample = take("--trace-sample").parse().unwrap_or_else(|_| {
                        die("--trace-sample needs an integer (keep every Nth op; 0 disables)");
                    })
                }
                "--help" | "-h" => {
                    println!(
                        "usage: iofwdd [--listen ADDR] [--root DIR] \
                         [--mode ciod|zoid|sched|staged] [--workers N] [--bml-mib N] \
                         [--stats-interval SECS] [--stats-json PATH] \
                         [--stats-addr ADDR [--stats-port-file PATH]] \
                         [--watchdog SPEC] [--attribution on|off] \
                         [--dump-trigger PATH] [--port-file PATH] \
                         [--fault-plan PATH] [--retry-attempts N] \
                         [--coalesce[=off|MAX_BYTES,MAX_OPS]] \
                         [--throttle PER_OP_US,BW_MIB_S] \
                         [--transport threads|reactor] [--reactor-threads N] \
                         [--accept-fault-every N] [--hotpath fast|seed] \
                         [--trace-out PATH] [--trace-sample N]"
                    );
                    std::process::exit(0);
                }
                other => die(&format!("unknown option '{other}' (try --help)")),
            }
        }
        opts
    }

    fn forwarding_mode(&self) -> ForwardingMode {
        match self.mode.as_str() {
            "ciod" => ForwardingMode::Ciod,
            "zoid" => ForwardingMode::Zoid,
            "sched" => ForwardingMode::Sched {
                workers: self.workers,
            },
            "staged" | "async" => ForwardingMode::AsyncStaged {
                workers: self.workers,
                bml_capacity: self.bml_mib << 20,
            },
            other => die(&format!("unknown mode '{other}'")),
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("iofwdd: {msg}");
    std::process::exit(2);
}

/// Write `contents` to `path` atomically (same-directory tmp + rename),
/// so a concurrent reader never observes a half-written snapshot.
fn write_atomic(path: &str, contents: &str) {
    let tmp = format!("{path}.tmp");
    let ok = std::fs::write(&tmp, contents).is_ok() && std::fs::rename(&tmp, path).is_ok();
    if !ok {
        eprintln!("iofwdd: failed to write stats snapshot to {path}");
    }
}

/// One full observability dump: text registry to stderr, JSON snapshot
/// to `stats_json` if configured. `with_flight` appends the flight
/// recorder's recent-completions table (used for on-demand dumps).
fn dump_stats(telemetry: &Telemetry, stats_json: Option<&str>, with_flight: bool) {
    let snap = telemetry.snapshot();
    eprint!("{}", snap.render_text());
    if with_flight {
        eprint!("{}", snapshot::render_flight(&telemetry.flight.snapshot()));
    }
    if let Some(path) = stats_json {
        write_atomic(path, &snap.to_json());
    }
}

fn main() {
    let opts = Options::parse();
    let mode = opts.forwarding_mode();
    std::fs::create_dir_all(&opts.root)
        .unwrap_or_else(|e| die(&format!("cannot create root {}: {e}", opts.root)));
    let acceptor = TcpAcceptor::bind(&opts.listen)
        .unwrap_or_else(|e| die(&format!("cannot bind {}: {e}", opts.listen)));
    let addr = acceptor.local_addr().expect("local addr");
    if let Some(pf) = &opts.port_file {
        write_atomic(pf, &addr.port().to_string());
    }
    // Build telemetry up front so the fault injector (outermost backend
    // wrapper) and the daemon share one registry.
    let telemetry = Arc::new(Telemetry::new());
    telemetry.clients.set_attribution(opts.attribution);
    // The trace exporter must be attached before any op completes so the
    // first traced request is already observable.
    let exporter = opts.trace_out.as_ref().map(|path| {
        let exporter = Arc::new(TraceExporter::new(opts.trace_sample));
        if !telemetry.set_sink(exporter.clone()) {
            die("telemetry span sink already attached");
        }
        eprintln!(
            "iofwdd: tracing ON — spans to {path} (self-sample every {} op(s))",
            opts.trace_sample
        );
        exporter
    });
    let file_backend = Arc::new(FileBackend::new(&opts.root));
    let mut backend: Arc<dyn iofwd::backend::Backend> = match opts.throttle {
        Some((per_op, bytes_per_sec)) => {
            eprintln!(
                "iofwdd: device model ON — {} us/op, {} MiB/s",
                per_op.as_micros(),
                (bytes_per_sec / (1u64 << 20) as f64).round()
            );
            Arc::new(ThrottledBackend::new(file_backend, bytes_per_sec, per_op))
        }
        None => file_backend,
    };
    if let Some(plan_path) = &opts.fault_plan {
        let text = std::fs::read_to_string(plan_path)
            .unwrap_or_else(|e| die(&format!("cannot read fault plan {plan_path}: {e}")));
        let plan = FaultPlan::parse(&text)
            .unwrap_or_else(|e| die(&format!("bad fault plan {plan_path}: {e}")));
        eprintln!(
            "iofwdd: fault injection ON — seed {}, {} rule(s) from {plan_path}",
            plan.seed,
            plan.rules.len()
        );
        backend = Arc::new(FaultBackend::new(backend, plan, telemetry.clone()));
    }
    // The hot-path knob selects the whole data-path variant in one
    // move: `fast` pairs zero-copy staging with sharded work-stealing
    // queues; `seed` re-enacts the original profile (deep-copy staging,
    // one shared FIFO) as the paired-benchmark control arm.
    let (hotpath, discipline) = match opts.hotpath.as_str() {
        "seed" => (HotPath::Seed, QueueDiscipline::SharedFifo),
        _ => (HotPath::Fast, QueueDiscipline::PerWorker),
    };
    let mut config = ServerConfig::new(mode)
        .with_telemetry(telemetry.clone())
        .with_retry_policy(RetryPolicy::with_attempts(opts.retry_attempts))
        .with_hotpath(hotpath)
        .with_queue_discipline(discipline);
    if let Some(coalesce) = opts.coalesce {
        config = config.with_coalescing(coalesce);
    }
    let coalesce = config.coalesce;
    if opts.accept_fault_every > 0 {
        acceptor.set_accept_fault(opts.accept_fault_every);
    }
    let mut transport = opts.transport.clone();
    if transport == "reactor" {
        if matches!(mode, ForwardingMode::Ciod | ForwardingMode::Zoid) {
            die("--transport reactor requires a worker-pool mode (--mode sched|staged)");
        }
        if !polling::supported() {
            eprintln!(
                "iofwdd: warning: poller unsupported on this target, \
                 falling back to --transport threads"
            );
            transport = "threads".into();
        }
    }
    let server = if transport == "reactor" {
        let reactor_cfg = iofwd::server::ReactorConfig {
            threads: opts.reactor_threads,
            ..Default::default()
        };
        IonServer::spawn_reactor(acceptor, backend, config, reactor_cfg)
            .unwrap_or_else(|e| die(&format!("cannot start reactor transport: {e}")))
    } else {
        IonServer::spawn(Box::new(acceptor), backend, config)
    };
    // The "listening" banner stays first on stderr: startup probes (and
    // the CLI smoke test) key on it.
    eprintln!(
        "iofwdd: listening on {addr}, mode {}, root {}, {} worker(s), {} MiB BML, {transport} transport",
        opts.mode, opts.root, opts.workers, opts.bml_mib
    );
    if opts.accept_fault_every > 0 {
        eprintln!(
            "iofwdd: accept-fault injection ON — synthetic EMFILE every {} accept(s)",
            opts.accept_fault_every
        );
    }
    match coalesce {
        Some(c) => eprintln!(
            "iofwdd: write coalescing ON — up to {} ops / {} KiB per vectored batch",
            c.max_ops,
            c.max_bytes >> 10
        ),
        None => eprintln!("iofwdd: write coalescing off"),
    }
    match hotpath {
        HotPath::Fast => {
            eprintln!("iofwdd: hot path fast — zero-copy staging, sharded work-stealing queues")
        }
        HotPath::Seed => {
            eprintln!("iofwdd: hot path seed — deep-copy staging, shared FIFO (control arm)")
        }
    }
    // Out-of-band introspection: a dedicated listener that answers only
    // Stats queries straight from telemetry memory — reachable even when
    // the data-path port is saturated with parked connections.
    let _introspect = opts.stats_addr.as_ref().map(|stats_addr| {
        let acceptor = TcpAcceptor::bind(stats_addr)
            .unwrap_or_else(|e| die(&format!("cannot bind stats listener {stats_addr}: {e}")));
        let handle = introspect::spawn(acceptor, telemetry.clone())
            .unwrap_or_else(|e| die(&format!("cannot start stats listener: {e}")));
        eprintln!("iofwdd: stats listener on {}", handle.addr());
        if let Some(pf) = &opts.stats_port_file {
            write_atomic(pf, &handle.addr().port().to_string());
        }
        handle
    });
    let _watchdog = opts.watchdog.clone().map(|cfg| {
        eprintln!(
            "iofwdd: watchdog ON — interval {:?}, queue age {:?}, loop lag {:?}, \
             wbuf {} B x{}",
            cfg.interval, cfg.max_queue_age, cfg.max_loop_lag, cfg.wbuf_limit, cfg.wbuf_strikes
        );
        watchdog::spawn(cfg, telemetry.clone(), server.work_queue())
            .unwrap_or_else(|e| die(&format!("cannot start watchdog: {e}")))
    });
    eprintln!("iofwdd: press Ctrl-C to stop");

    // Supervision loop. Recurring work runs on *absolute* deadlines
    // advanced by whole periods from the start phase, so neither sleep
    // quantization nor the work itself accumulates drift — a 30 s stats
    // interval produces a dump at start+30 s, start+60 s, …, not at
    // "previous dump + 30 s + processing time". The sleep itself targets
    // the earliest pending deadline, bounded by a short poll tick so
    // on-demand triggers (dump file, fresh trace spans) stay responsive.
    const POLL_TICK: Duration = Duration::from_millis(200);
    /// Time-series cadence: one deltified snapshot per second feeds the
    /// windowed rates served over the stats protocol.
    const TS_TICK: Duration = Duration::from_secs(1);
    let interval = (opts.stats_interval > 0).then(|| Duration::from_secs(opts.stats_interval));
    let start = Instant::now();
    let mut next_dump = interval.map(|iv| start + iv);
    let mut next_ts = start + TS_TICK;
    let mut traced_spans = 0usize;
    loop {
        let now = Instant::now();
        let mut wake = (now + POLL_TICK).min(next_ts);
        if let Some(due) = next_dump {
            wake = wake.min(due);
        }
        std::thread::sleep(wake.saturating_duration_since(now));
        // Rewrite the trace whenever new spans were retained, so a
        // short-lived traced run's spans land on disk within a poll
        // tick rather than at the next stats interval.
        if let (Some(path), Some(exporter)) = (&opts.trace_out, &exporter) {
            let kept = exporter.kept();
            if kept != traced_spans {
                traced_spans = kept;
                write_atomic(path, &exporter.render());
            }
        }
        if let Some(trigger) = &opts.dump_trigger {
            if Path::new(trigger).exists() {
                let _ = std::fs::remove_file(trigger);
                eprintln!("iofwdd: on-demand stats dump");
                dump_stats(&telemetry, opts.stats_json.as_deref(), true);
            }
        }
        let now = Instant::now();
        if now >= next_ts {
            telemetry.tick_timeseries();
            while next_ts <= now {
                next_ts += TS_TICK;
            }
        }
        if let (Some(iv), Some(due)) = (interval, next_dump) {
            if now >= due {
                let s = server.stats();
                eprintln!(
                    "iofwdd: {} requests, {} MiB in, {} MiB out, {} staged ops, {} open fds",
                    s.requests,
                    s.bytes_in >> 20,
                    s.bytes_out >> 20,
                    s.staged_ops,
                    server.open_descriptors()
                );
                dump_stats(&telemetry, opts.stats_json.as_deref(), false);
                // Whole-period catch-up: a dump stalled past several
                // deadlines resumes on phase, without a burst of
                // back-to-back dumps.
                let mut due = due + iv;
                while due <= now {
                    due += iv;
                }
                next_dump = Some(due);
            }
        }
    }
}
