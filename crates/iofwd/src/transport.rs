//! Transports: how frames move between a compute-node client and the ION
//! daemon.
//!
//! On a real BG/P this hop is the collective (tree) network; here it is
//! pluggable: [`mem`] provides an in-process channel transport (the
//! default for tests and single-host examples, optionally throttled to
//! tree-network rates for realism), and [`tcp`] carries the same frames
//! over TCP for multi-host deployments.

use std::io;

use iofwd_proto::Frame;

/// One end of a bidirectional frame connection.
///
/// `recv` blocks until a frame arrives; `Ok(None)` means the peer closed
/// cleanly. Implementations must allow `send` and `recv` from different
/// threads (`&self` receivers with interior mutability).
pub trait Conn: Send + Sync {
    fn send(&self, frame: Frame) -> io::Result<()>;
    fn recv(&self) -> io::Result<Option<Frame>>;
    /// Close both directions; subsequent `recv` on the peer returns `None`.
    fn close(&self);
}

/// A [`Conn`] decorator counting frames and payload bytes per direction
/// into the daemon's telemetry registry. Directions are server-relative:
/// `recv` feeds the `*_in` counters, `send` the `*_out` ones.
///
/// Per-client attribution rides the same hook: the frame header already
/// carries the client id, so each direction also lands on that client's
/// sharded row. The row lookup is cached per connection (clients keep
/// one id per connection in practice) and refreshed only when the id on
/// the wire changes.
pub struct Instrumented {
    inner: Box<dyn Conn>,
    telemetry: std::sync::Arc<crate::telemetry::Telemetry>,
    // (last client id, its stats row). `u64::MAX` is an impossible
    // client id (`Frame.client_id` is u32), forcing the first lookup.
    client: parking_lot::Mutex<(
        u64,
        Option<std::sync::Arc<crate::telemetry::PerClientStats>>,
    )>,
}

impl Instrumented {
    pub fn new(
        inner: Box<dyn Conn>,
        telemetry: std::sync::Arc<crate::telemetry::Telemetry>,
    ) -> Instrumented {
        Instrumented {
            inner,
            telemetry,
            client: parking_lot::Mutex::new((u64::MAX, None)),
        }
    }

    fn attribute(&self, client_id: u64, bytes: u64, inbound: bool) {
        let mut cached = self.client.lock();
        if cached.0 != client_id {
            *cached = (client_id, self.telemetry.client_stats(client_id));
        }
        if let Some(stats) = &cached.1 {
            if inbound {
                stats.bytes_in.add(bytes);
            } else {
                stats.bytes_out.add(bytes);
            }
        }
    }
}

impl Conn for Instrumented {
    fn send(&self, frame: Frame) -> io::Result<()> {
        let bytes = frame.data.len() as u64;
        let client = u64::from(frame.client_id);
        let res = self.inner.send(frame);
        if res.is_ok() && self.telemetry.enabled() {
            self.telemetry.frames_out.inc();
            self.telemetry.transport_bytes_out.add(bytes);
            self.attribute(client, bytes, false);
        }
        res
    }

    fn recv(&self) -> io::Result<Option<Frame>> {
        let res = self.inner.recv();
        if let Ok(Some(frame)) = &res {
            if self.telemetry.enabled() {
                self.telemetry.frames_in.inc();
                self.telemetry
                    .transport_bytes_in
                    .add(frame.data.len() as u64);
                self.attribute(u64::from(frame.client_id), frame.data.len() as u64, true);
            }
        }
        res
    }

    fn close(&self) {
        self.inner.close();
    }
}

/// Server-side accept source.
pub trait Listener: Send + Sync {
    /// Block for the next client connection; `Ok(None)` means the
    /// listener was shut down.
    fn accept(&self) -> io::Result<Option<Box<dyn Conn>>>;
    /// Unblock any pending `accept` and refuse new connections.
    fn shutdown(&self);
}

pub mod mem {
    //! In-process transport over crossbeam channels.
    //!
    //! [`MemHub`] plays the role of the collective network: clients call
    //! [`MemHub::connect`], servers accept from [`MemHub::listener`]. A
    //! [`Throttle`] can be attached to model a finite-bandwidth hop in
    //! wall-clock examples (the discrete-event simulator in `bgsim` is
    //! the precise tool; this is for live demos).

    use super::{Conn, Listener};
    use crossbeam::channel::{unbounded, Receiver, Sender};
    use iofwd_proto::Frame;
    use parking_lot::Mutex;
    use std::io;
    use std::time::{Duration, Instant};

    /// Optional bandwidth/latency shaping for a mem connection.
    #[derive(Debug, Clone, Copy)]
    pub struct Throttle {
        /// Payload bandwidth in bytes/second.
        pub bytes_per_sec: f64,
        /// Fixed per-frame latency.
        pub per_frame: Duration,
    }

    impl Throttle {
        fn delay_for(&self, bytes: usize) -> Duration {
            self.per_frame + Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
        }
    }

    struct Shaper {
        throttle: Option<Throttle>,
        /// Time at which the link becomes free (token-bucket style pacing).
        free_at: Mutex<Instant>,
    }

    impl Shaper {
        fn new(throttle: Option<Throttle>) -> Self {
            Shaper {
                throttle,
                free_at: Mutex::new(Instant::now()),
            }
        }

        fn pace(&self, bytes: usize) {
            let Some(t) = self.throttle else { return };
            let wait = {
                let mut free_at = self.free_at.lock();
                let now = Instant::now();
                let start = (*free_at).max(now);
                let done = start + t.delay_for(bytes);
                *free_at = done;
                done.saturating_duration_since(now)
            };
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
        }
    }

    /// One endpoint of an in-memory connection.
    pub struct MemConn {
        tx: Sender<Frame>,
        rx: Receiver<Frame>,
        shaper: Shaper,
    }

    impl Conn for MemConn {
        fn send(&self, frame: Frame) -> io::Result<()> {
            self.shaper.pace(frame.wire_len());
            self.tx
                .send(frame)
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))
        }

        fn recv(&self) -> io::Result<Option<Frame>> {
            Ok(self.rx.recv().ok())
        }

        fn close(&self) {
            // Dropping our sender would be ideal, but we only have &self;
            // sending is refused by the peer's disconnect when both sides
            // drop. Explicit close is modeled by dropping the endpoints.
        }
    }

    /// Build a directly-connected pair (client end, server end).
    pub fn pair() -> (MemConn, MemConn) {
        pair_with(None)
    }

    /// Connected pair with shaping applied to each direction.
    pub fn pair_with(throttle: Option<Throttle>) -> (MemConn, MemConn) {
        let (atx, arx) = unbounded();
        let (btx, brx) = unbounded();
        (
            MemConn {
                tx: atx,
                rx: brx,
                shaper: Shaper::new(throttle),
            },
            MemConn {
                tx: btx,
                rx: arx,
                shaper: Shaper::new(throttle),
            },
        )
    }

    /// Rendezvous point connecting clients to a server accept loop.
    pub struct MemHub {
        conn_tx: Sender<MemConn>,
        conn_rx: Receiver<MemConn>,
        throttle: Option<Throttle>,
    }

    impl Default for MemHub {
        fn default() -> Self {
            Self::new()
        }
    }

    impl MemHub {
        pub fn new() -> Self {
            Self::with_throttle(None)
        }

        /// Hub whose connections are bandwidth-shaped (e.g. to collective
        /// network rates).
        pub fn with_throttle(throttle: Option<Throttle>) -> Self {
            let (conn_tx, conn_rx) = unbounded();
            MemHub {
                conn_tx,
                conn_rx,
                throttle,
            }
        }

        /// Client side: open a connection to the hub's listener.
        pub fn connect(&self) -> MemConn {
            let (client, server) = pair_with(self.throttle);
            // If the listener is gone the returned endpoint simply reads
            // EOF on first use — the same thing a real daemon's client
            // sees, so no need to panic here.
            let _ = self.conn_tx.send(server);
            client
        }

        /// Server side: the accept source.
        pub fn listener(&self) -> MemListener {
            MemListener {
                rx: self.conn_rx.clone(),
                closed: Mutex::new(false),
            }
        }
    }

    /// Accept side of a [`MemHub`].
    pub struct MemListener {
        rx: Receiver<MemConn>,
        closed: Mutex<bool>,
    }

    impl Listener for MemListener {
        fn accept(&self) -> io::Result<Option<Box<dyn Conn>>> {
            loop {
                if *self.closed.lock() {
                    return Ok(None);
                }
                match self.rx.recv_timeout(Duration::from_millis(50)) {
                    Ok(c) => return Ok(Some(Box::new(c))),
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return Ok(None),
                }
            }
        }

        fn shutdown(&self) {
            *self.closed.lock() = true;
        }
    }
}

pub mod tcp {
    //! TCP transport: length-delimited frames over a stream socket.

    use super::{Conn, Listener};
    use bytes::BytesMut;
    use iofwd_proto::Frame;
    use parking_lot::Mutex;
    use std::io::{self, Write};
    use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
    use std::os::fd::{AsRawFd, RawFd};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::Duration;

    /// A frame connection over a `TcpStream`.
    pub struct TcpConn {
        write: Mutex<TcpStream>,
        read: Mutex<ReadState>,
    }

    struct ReadState {
        stream: TcpStream,
        buf: BytesMut,
    }

    impl TcpConn {
        pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpConn> {
            let stream = TcpStream::connect(addr)?;
            Self::from_stream(stream)
        }

        pub fn from_stream(stream: TcpStream) -> io::Result<TcpConn> {
            stream.set_nodelay(true)?;
            let read = stream.try_clone()?;
            Ok(TcpConn {
                write: Mutex::new(stream),
                read: Mutex::new(ReadState {
                    stream: read,
                    buf: BytesMut::with_capacity(64 * 1024),
                }),
            })
        }
    }

    /// Drain a header + payload pair with vectored writes, never
    /// gathering them into one buffer. The payload `Bytes` goes to the
    /// kernel from wherever it already lives (receive buffer, BML slab,
    /// replay corpus) — the old `encode()` path re-copied every payload
    /// into a fresh contiguous wire image first, a per-byte tax that
    /// rivals the backend write itself for megabyte frames.
    fn write_all_split(w: &mut impl Write, mut head: &[u8], mut body: &[u8]) -> io::Result<()> {
        while !head.is_empty() || !body.is_empty() {
            let bufs = [io::IoSlice::new(head), io::IoSlice::new(body)];
            match w.write_vectored(&bufs) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) if n <= head.len() => head = &head[n..],
                Ok(n) => {
                    body = &body[n - head.len()..];
                    head = &[];
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    impl Conn for TcpConn {
        fn send(&self, frame: Frame) -> io::Result<()> {
            if frame.data.len() >= Frame::SPLIT_SEND_MIN {
                let header = frame.encode_header();
                let mut w = self.write.lock();
                return write_all_split(&mut *w, &header, &frame.data);
            }
            let wire = frame.encode();
            let mut w = self.write.lock();
            w.write_all(&wire)
        }

        fn recv(&self) -> io::Result<Option<Frame>> {
            let mut state = self.read.lock();
            let ReadState { stream, buf } = &mut *state;
            loop {
                let needed = Frame::required_len(buf)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                if let Some(total) = needed {
                    if buf.len() >= total {
                        // Carve the complete frame out of the receive
                        // buffer without copying the payload; the
                        // decoded meta/data are views into this shared
                        // storage all the way to the handlers.
                        let wire = buf.split_to_bytes(total);
                        let frame = Frame::decode_shared(&wire).map_err(|e| {
                            io::Error::new(io::ErrorKind::InvalidData, e.to_string())
                        })?;
                        return Ok(Some(frame));
                    }
                }
                // Read straight into the buffer's spare capacity — no
                // intermediate stack chunk, no second copy. Once the
                // header names the frame size, reserve the rest of the
                // frame in one go so a large payload grows the buffer
                // once instead of doubling its way up.
                let want = match needed {
                    Some(total) => (total - buf.len()).max(64 * 1024),
                    None => 64 * 1024,
                };
                let n = buf.read_from(stream, want)?;
                if n == 0 {
                    return if buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ))
                    };
                }
            }
        }

        fn close(&self) {
            let _ = self.write.lock().shutdown(std::net::Shutdown::Both);
        }
    }

    /// Accept side over a `TcpListener`.
    ///
    /// Two modes share this type: the threaded server calls the blocking
    /// [`Listener::accept`] (a real blocking `accept(2)` — no poll/sleep
    /// dance — unblocked by a self-connection from [`Listener::shutdown`]),
    /// and the reactor puts the listener in nonblocking mode, registers
    /// its fd with the poller, and drains it with
    /// [`TcpAcceptor::try_accept_stream`].
    ///
    /// For chaos testing, [`TcpAcceptor::set_accept_fault`] makes every
    /// Nth accept fail with a synthetic `EMFILE` *before* touching the
    /// kernel — the pending connection stays in the backlog and succeeds
    /// on the retry, so a surviving accept path loses no clients.
    pub struct TcpAcceptor {
        listener: TcpListener,
        closed: AtomicBool,
        /// Inject a synthetic EMFILE on every Nth accept (0 = off).
        fault_every: AtomicU64,
        accept_seq: AtomicU64,
    }

    impl TcpAcceptor {
        pub fn bind(addr: impl ToSocketAddrs) -> io::Result<TcpAcceptor> {
            let listener = TcpListener::bind(addr)?;
            Ok(TcpAcceptor {
                listener,
                closed: AtomicBool::new(false),
                fault_every: AtomicU64::new(0),
                accept_seq: AtomicU64::new(0),
            })
        }

        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.listener.local_addr()
        }

        /// Fail every `every`-th accept attempt with a synthetic EMFILE
        /// (0 disables). The failure fires before the kernel accept, so
        /// no real connection is consumed by it.
        pub fn set_accept_fault(&self, every: u64) {
            self.fault_every.store(every, Ordering::Relaxed);
        }

        /// Switch the underlying listener between blocking (threaded
        /// accept loop) and nonblocking (reactor poll registration).
        pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
            self.listener.set_nonblocking(nonblocking)
        }

        pub fn is_shut_down(&self) -> bool {
            self.closed.load(Ordering::Acquire)
        }

        fn injected_fault(&self) -> Option<io::Error> {
            let every = self.fault_every.load(Ordering::Relaxed);
            if every == 0 {
                return None;
            }
            let seq = self.accept_seq.fetch_add(1, Ordering::Relaxed) + 1;
            // EMFILE: "too many open files" — the classic fd-exhaustion
            // failure the accept loop must survive.
            seq.is_multiple_of(every)
                .then(|| io::Error::from_raw_os_error(24))
        }

        /// Nonblocking accept for the reactor: `Ok(None)` means no
        /// connection is pending right now (WouldBlock); transient
        /// errors (including injected faults) surface as `Err` for the
        /// caller to count and retry.
        pub fn try_accept_stream(&self) -> io::Result<Option<TcpStream>> {
            if self.is_shut_down() {
                return Ok(None);
            }
            if let Some(e) = self.injected_fault() {
                return Err(e);
            }
            match self.listener.accept() {
                Ok((stream, _)) => Ok(Some(stream)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            }
        }

        /// Blocking accept of the raw stream; `Ok(None)` on shutdown.
        fn accept_stream(&self) -> io::Result<Option<TcpStream>> {
            if self.is_shut_down() {
                return Ok(None);
            }
            if let Some(e) = self.injected_fault() {
                return Err(e);
            }
            let (stream, _) = self.listener.accept()?;
            if self.is_shut_down() {
                // This is (or raced with) the wake connection from
                // `shutdown()`; drop it and report an orderly stop.
                return Ok(None);
            }
            Ok(Some(stream))
        }
    }

    impl AsRawFd for TcpAcceptor {
        fn as_raw_fd(&self) -> RawFd {
            self.listener.as_raw_fd()
        }
    }

    impl Listener for TcpAcceptor {
        fn accept(&self) -> io::Result<Option<Box<dyn Conn>>> {
            match self.accept_stream()? {
                Some(stream) => Ok(Some(Box::new(TcpConn::from_stream(stream)?))),
                None => Ok(None),
            }
        }

        fn shutdown(&self) {
            if self.closed.swap(true, Ordering::AcqRel) {
                return;
            }
            // Unblock a thread parked in accept(2) by connecting to
            // ourselves; the accept path re-checks `closed` after every
            // accept, so the wake connection is dropped on arrival. If
            // nobody is blocked the connection just sits in the backlog
            // until the listener is dropped — harmless either way.
            if let Ok(addr) = self.listener.local_addr() {
                let target = SocketAddr::new(
                    match addr.ip() {
                        IpAddr::V4(ip) if ip.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
                        IpAddr::V6(ip) if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
                        ip => ip,
                    },
                    addr.port(),
                );
                let _ = TcpStream::connect_timeout(&target, Duration::from_millis(200));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::mem::{pair, pair_with, MemHub, Throttle};
    use super::tcp::{TcpAcceptor, TcpConn};
    use super::{Conn, Listener};
    use bytes::Bytes;
    use iofwd_proto::{Fd, Frame, Request};
    use std::time::{Duration, Instant};

    fn frame(seq: u64) -> Frame {
        Frame::request(
            1,
            seq,
            &Request::Write { fd: Fd(3), len: 4 },
            Bytes::from_static(b"abcd"),
        )
    }

    #[test]
    fn mem_pair_roundtrip() {
        let (a, b) = pair();
        a.send(frame(1)).unwrap();
        let got = b.recv().unwrap().unwrap();
        assert_eq!(got.seq, 1);
        assert_eq!(&got.data[..], b"abcd");
        b.send(frame(2)).unwrap();
        assert_eq!(a.recv().unwrap().unwrap().seq, 2);
    }

    #[test]
    fn mem_recv_none_after_peer_drop() {
        let (a, b) = pair();
        drop(a);
        assert!(b.recv().unwrap().is_none());
    }

    #[test]
    fn mem_hub_connects_client_to_listener() {
        let hub = MemHub::new();
        let listener = hub.listener();
        let client = hub.connect();
        let t = std::thread::spawn(move || {
            let conn = listener.accept().unwrap().unwrap();
            let f = conn.recv().unwrap().unwrap();
            conn.send(f).unwrap();
        });
        client.send(frame(9)).unwrap();
        assert_eq!(client.recv().unwrap().unwrap().seq, 9);
        t.join().unwrap();
    }

    #[test]
    fn mem_listener_shutdown_unblocks_accept() {
        let hub = MemHub::new();
        let listener = hub.listener();
        listener.shutdown();
        assert!(listener.accept().unwrap().is_none());
    }

    #[test]
    fn throttle_paces_throughput() {
        // 1 MiB/s, 4 KiB frames: 10 frames ≈ 40 ms minimum.
        let t = Throttle {
            bytes_per_sec: (1 << 20) as f64,
            per_frame: Duration::ZERO,
        };
        let (a, b) = pair_with(Some(t));
        let start = Instant::now();
        let payload = Bytes::from(vec![0u8; 4096]);
        for seq in 0..10 {
            let f = Frame::request(
                1,
                seq,
                &Request::Write {
                    fd: Fd(3),
                    len: payload.len() as u64,
                },
                payload.clone(),
            );
            a.send(f).unwrap();
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(35),
            "sent too fast: {elapsed:?}"
        );
        for _ in 0..10 {
            b.recv().unwrap().unwrap();
        }
    }

    #[test]
    fn tcp_roundtrip() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let conn = acceptor.accept().unwrap().unwrap();
            while let Some(f) = conn.recv().unwrap() {
                conn.send(f).unwrap();
            }
        });
        let client = TcpConn::connect(addr).unwrap();
        for seq in 0..5 {
            client.send(frame(seq)).unwrap();
            let echo = client.recv().unwrap().unwrap();
            assert_eq!(echo.seq, seq);
            assert_eq!(&echo.data[..], b"abcd");
        }
        client.close();
        t.join().unwrap();
    }

    #[test]
    fn tcp_acceptor_shutdown() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        acceptor.shutdown();
        assert!(acceptor.accept().unwrap().is_none());
    }

    #[test]
    fn tcp_shutdown_unblocks_blocked_accept() {
        let acceptor = std::sync::Arc::new(TcpAcceptor::bind("127.0.0.1:0").unwrap());
        let blocked = acceptor.clone();
        let t = std::thread::spawn(move || blocked.accept().unwrap().is_none());
        // Let the thread park in accept(2), then wake it via shutdown.
        std::thread::sleep(Duration::from_millis(50));
        acceptor.shutdown();
        assert!(t.join().unwrap(), "accept should report orderly shutdown");
    }

    #[test]
    fn tcp_accept_fault_fires_before_the_kernel_accept() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();
        acceptor.set_accept_fault(1); // every accept attempt fails
        let client = std::thread::spawn(move || TcpConn::connect(addr).unwrap());
        let err = match acceptor.accept() {
            Err(e) => e,
            Ok(_) => panic!("expected injected accept fault"),
        };
        assert_eq!(err.raw_os_error(), Some(24), "expected synthetic EMFILE");
        // The client's handshake completed into the backlog untouched:
        // once the fault clears, the same connection is accepted.
        acceptor.set_accept_fault(0);
        let server = acceptor.accept().unwrap().unwrap();
        let c = client.join().unwrap();
        c.send(frame(42)).unwrap();
        assert_eq!(server.recv().unwrap().unwrap().seq, 42);
    }

    #[test]
    fn tcp_large_frame_crosses_reads() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();
        let big = vec![7u8; 1 << 20];
        let expect = big.clone();
        let t = std::thread::spawn(move || {
            let conn = acceptor.accept().unwrap().unwrap();
            let f = conn.recv().unwrap().unwrap();
            assert_eq!(&f.data[..], &expect[..]);
        });
        let client = TcpConn::connect(addr).unwrap();
        let f = Frame::request(
            1,
            1,
            &Request::Write {
                fd: Fd(3),
                len: big.len() as u64,
            },
            Bytes::from(big),
        );
        client.send(f).unwrap();
        t.join().unwrap();
    }
}
