//! Distributed tracing & bottleneck attribution.
//!
//! The paper's 66 % → 83 % efficiency argument rests on *attributing*
//! client-observed latency to the server-side stage that produced it
//! (§III/§V): ION resource contention shows up as queue wait under the
//! thread-per-CN strategies and moves into backend service time once a
//! scheduled worker pool owns the I/O. This module turns that analysis
//! into a first-class artifact, in three pieces:
//!
//! 1. [`TraceExporter`] — a [`SpanSink`] retaining sampled [`OpSpan`]s
//!    and rendering them as Chrome trace-event JSON
//!    ([`render_chrome_trace`]), loadable in Perfetto / `chrome://tracing`.
//!    Client tracks (pid 1) show per-op residency and queue wait;
//!    worker tracks (pid 2) show which pool worker executed the backend
//!    call, so worker contention is visible on a timeline; a
//!    `queue_depth` counter track shows scheduler backlog over time.
//! 2. [`validate_chrome_trace`] — a schema check over the exported JSON
//!    (used by `iofwd-cp trace FILE` and the CI gate), backed by a
//!    dependency-free JSON reader ([`JsonValue`]) that, unlike the
//!    telemetry snapshot codec, accepts strings, floats and booleans.
//! 3. [`StageBreakdown`] — per-strategy stage attribution (queue-wait /
//!    dispatch / backend / reply / other shares of total residency),
//!    computed either from a telemetry snapshot's histogram sums or
//!    from raw spans; `figures -- bottleneck` and `iofwd-cp --trace`
//!    print its verdict.
//!
//! Sampling semantics: a span is retained if the client flagged its
//! trace context as sampled, *or* self-sampled as every `sample_every`-th
//! completion (`iofwdd --trace-sample N`; 0 disables self-sampling).
//! Retention is bounded ([`TraceExporter::with_capacity`]); overflow
//! increments a drop counter rather than growing without bound.
//!
//! Coalesced writes (DESIGN.md §12): when the staged pipeline merges a
//! contiguous chain into one vectored backend call, each constituent op
//! still completes its *own* span — on a timeline the chain renders as
//! stacked per-op slices sharing one `dispatch_ns`/backend interval
//! (the batch genuinely occupied the backend once, on behalf of all of
//! them), while `enqueue_ns` stays per-op, so queue-wait attribution
//! remains correct per constituent.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::telemetry::{OpSpan, SpanSink, TelemetrySnapshot};

/// Bounded retention buffer for sampled spans, attached to a
/// [`Telemetry`](crate::telemetry::Telemetry) via `set_sink`.
pub struct TraceExporter {
    /// Keep every Nth completion regardless of client sampling; 0 = off.
    sample_every: u64,
    seen: AtomicU64,
    dropped: AtomicU64,
    capacity: usize,
    spans: Mutex<Vec<OpSpan>>,
}

impl TraceExporter {
    /// Default retention bound: enough for minutes of sampled traffic
    /// without letting a forgotten daemon grow unbounded.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    pub fn new(sample_every: u64) -> TraceExporter {
        TraceExporter::with_capacity(sample_every, TraceExporter::DEFAULT_CAPACITY)
    }

    pub fn with_capacity(sample_every: u64, capacity: usize) -> TraceExporter {
        TraceExporter {
            sample_every,
            seen: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            capacity: capacity.max(1),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Copy of the retained spans, completion order.
    pub fn spans(&self) -> Vec<OpSpan> {
        match self.spans.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Number of spans currently retained (cheap change detection for
    /// the daemon's periodic trace writer).
    pub fn kept(&self) -> usize {
        match self.spans.lock() {
            Ok(g) => g.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// Spans discarded because the retention buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Render the retained spans as Chrome trace-event JSON.
    pub fn render(&self) -> String {
        render_chrome_trace(&self.spans())
    }
}

impl SpanSink for TraceExporter {
    fn on_complete(&self, span: &OpSpan) {
        let nth = self.seen.fetch_add(1, Ordering::Relaxed) + 1;
        let self_sampled = self.sample_every > 0 && nth.is_multiple_of(self.sample_every);
        if !span.sampled && !self_sampled {
            return;
        }
        let mut g = match self.spans.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if g.len() < self.capacity {
            g.push(*span);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------
// Chrome trace-event rendering
// ---------------------------------------------------------------------

/// Client tracks live in this synthetic process.
const PID_CLIENTS: u64 = 1;
/// Worker tracks live in this synthetic process.
const PID_WORKERS: u64 = 2;

struct Event {
    ts_ns: u64,
    json: String,
}

/// Render spans as a Chrome trace-event JSON document (the `{"traceEvents":
/// [...]}` object form), loadable in Perfetto. Tracks:
///
/// * pid 1 / tid `client+1` — one track per client: an `X` slice per op
///   (arrival → end of residency) plus a nested `queue` slice while the
///   op sat in the scheduling stage;
/// * pid 2 / tid `worker` — one track per pool worker: an `X` slice per
///   backend execution, making worker contention visible;
/// * a `queue_depth` `C` (counter) series derived from enqueue/dispatch
///   edges.
///
/// Timestamps are microseconds (Chrome's unit) with nanosecond
/// fractions, relative to the daemon telemetry origin. Non-metadata
/// events are emitted in non-decreasing `ts` order.
pub fn render_chrome_trace(spans: &[OpSpan]) -> String {
    let mut meta: Vec<String> = Vec::new();
    let mut clients = BTreeSet::new();
    let mut workers = BTreeSet::new();
    for s in spans {
        clients.insert(s.client);
        if s.worker > 0 {
            workers.insert(u64::from(s.worker));
        }
    }
    meta.push(meta_event("process_name", PID_CLIENTS, 0, "iofwd clients"));
    for &c in &clients {
        meta.push(meta_event(
            "thread_name",
            PID_CLIENTS,
            c + 1,
            &format!("cn {c}"),
        ));
    }
    if !workers.is_empty() {
        meta.push(meta_event("process_name", PID_WORKERS, 0, "iofwd workers"));
        for &w in &workers {
            meta.push(meta_event(
                "thread_name",
                PID_WORKERS,
                w,
                &format!("worker {}", w - 1),
            ));
        }
    }

    let mut events: Vec<Event> = Vec::with_capacity(spans.len() * 3);
    let mut depth_edges: Vec<(u64, i64)> = Vec::new();
    for s in spans {
        let tid = s.client + 1;
        let mut args = String::new();
        let _ = write!(
            args,
            "\"seq\":{},\"bytes\":{},\"ok\":{},\"errno\":{},\"disposition\":{},\
             \"trace_id\":{},\"worker\":{}",
            s.seq,
            s.bytes,
            s.ok,
            s.errno,
            esc(s.disposition.name()),
            esc(&format!("{:#x}", s.trace_id)),
            s.worker,
        );
        events.push(slice_event(
            s.kind.name(),
            "op",
            PID_CLIENTS,
            tid,
            s.arrival_ns,
            s.total_ns(),
            &args,
        ));
        if s.queue_wait_ns() > 0 {
            events.push(slice_event(
                "queue",
                "queue",
                PID_CLIENTS,
                tid,
                s.enqueue_ns,
                s.queue_wait_ns(),
                "",
            ));
        }
        if s.worker > 0 && s.service_ns() > 0 {
            events.push(slice_event(
                s.kind.name(),
                "backend",
                PID_WORKERS,
                u64::from(s.worker),
                s.backend_start_ns,
                s.service_ns(),
                &format!("\"client\":{},\"seq\":{}", s.client, s.seq),
            ));
        }
        if s.enqueue_ns > 0 && s.dispatch_ns >= s.enqueue_ns {
            depth_edges.push((s.enqueue_ns, 1));
            depth_edges.push((s.dispatch_ns, -1));
        }
    }
    depth_edges.sort_unstable();
    let mut depth: i64 = 0;
    for (ts_ns, delta) in depth_edges {
        depth += delta;
        events.push(Event {
            ts_ns,
            json: format!(
                "{{\"name\":\"queue_depth\",\"ph\":\"C\",\"pid\":{PID_CLIENTS},\"tid\":0,\
                 \"ts\":{},\"args\":{{\"depth\":{}}}}}",
                us(ts_ns),
                depth.max(0)
            ),
        });
    }
    events.sort_by_key(|e| e.ts_ns);

    let mut out = String::with_capacity(64 + meta.len() * 80 + events.len() * 160);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for e in meta
        .iter()
        .map(String::as_str)
        .chain(events.iter().map(|e| e.json.as_str()))
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(e);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Microseconds with nanosecond fractions, Chrome's `ts`/`dur` unit.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn meta_event(name: &str, pid: u64, tid: u64, value: &str) -> String {
    format!(
        "{{\"name\":{},\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
        esc(name),
        esc(value)
    )
}

fn slice_event(
    name: &str,
    cat: &str,
    pid: u64,
    tid: u64,
    ts_ns: u64,
    dur_ns: u64,
    args: &str,
) -> Event {
    let mut json = format!(
        "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{}",
        esc(name),
        esc(cat),
        us(ts_ns),
        us(dur_ns)
    );
    if args.is_empty() {
        json.push('}');
    } else {
        let _ = write!(json, ",\"args\":{{{args}}}}}");
    }
    Event { ts_ns, json }
}

/// JSON string escaping (shared rules with the telemetry codec).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------
// JSON reader (full value grammar: the trace schema needs strings,
// floats and booleans, which the telemetry snapshot codec rejects)
// ---------------------------------------------------------------------

/// A parsed JSON value. Numbers are `f64` — Chrome `ts`/`dur` fields
/// are fractional microseconds.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Obj(Vec<(String, JsonValue)>),
    Arr(Vec<JsonValue>),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl JsonValue {
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        other as char, self.pos
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        other as char, self.pos
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            self.pos += 4;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad \\u code point".to_string())?,
                            );
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                other => {
                    if other < 0x80 {
                        out.push(other as char);
                    } else {
                        let start = self.pos - 1;
                        let len = match other {
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            0xf0..=0xf7 => 4,
                            _ => return Err("invalid UTF-8 lead byte".to_string()),
                        };
                        let chunk = self
                            .bytes
                            .get(start..start + len)
                            .ok_or_else(|| "truncated UTF-8 sequence".to_string())?;
                        let s = std::str::from_utf8(chunk)
                            .map_err(|_| "invalid UTF-8 in string".to_string())?;
                        out.push_str(s);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| {
            b.is_ascii_digit() || *b == b'.' || *b == b'e' || *b == b'E' || *b == b'+' || *b == b'-'
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

// ---------------------------------------------------------------------
// Schema validation
// ---------------------------------------------------------------------

/// What a valid exported trace contained.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    pub events: usize,
    /// `ph:"X"` duration slices.
    pub slices: usize,
    /// `ph:"C"` counter samples.
    pub counter_events: usize,
    /// Distinct client tracks (pid 1 tids with slices).
    pub client_tracks: usize,
    /// Distinct worker tracks (pid 2 tids with slices).
    pub worker_tracks: usize,
    /// Latest slice end (`ts + dur`), microseconds.
    pub span_us: f64,
}

/// Validate an exported Chrome trace-event document against the schema
/// [`render_chrome_trace`] emits: a `traceEvents` array whose events
/// carry `name`/`ph`/`pid`/`tid`, with non-negative `ts`/`dur` on
/// slices, positive (non-zero) slice track ids, and non-decreasing
/// timestamps across non-metadata events.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let root = JsonValue::parse(text)?;
    let events = root
        .get("traceEvents")
        .ok_or_else(|| "missing `traceEvents`".to_string())?
        .as_arr()
        .ok_or_else(|| "`traceEvents` is not an array".to_string())?;
    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    let mut client_tids = BTreeSet::new();
    let mut worker_tids = BTreeSet::new();
    let mut last_ts = f64::NEG_INFINITY;
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing string `name`"))?;
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing string `ph`"))?;
        let pid = ev
            .get("pid")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing numeric `pid`"))?;
        let tid = ev
            .get("tid")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing numeric `tid`"))?;
        if pid < 1.0 || tid < 0.0 {
            return Err(format!("event {i} (`{name}`): bad track id {pid}/{tid}"));
        }
        match ph {
            "M" => continue, // metadata carries no timestamp
            "X" | "C" => {}
            other => return Err(format!("event {i} (`{name}`): unknown ph `{other}`")),
        }
        let ts = ev
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i} (`{name}`): missing numeric `ts`"))?;
        if ts < 0.0 {
            return Err(format!("event {i} (`{name}`): negative ts"));
        }
        if ts < last_ts {
            return Err(format!(
                "event {i} (`{name}`): timestamps not monotone ({ts} after {last_ts})"
            ));
        }
        last_ts = ts;
        if ph == "C" {
            summary.counter_events += 1;
            continue;
        }
        let dur = ev
            .get("dur")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i} (`{name}`): slice missing numeric `dur`"))?;
        if dur < 0.0 {
            return Err(format!("event {i} (`{name}`): negative dur"));
        }
        if tid < 1.0 {
            return Err(format!("event {i} (`{name}`): slice on reserved tid 0"));
        }
        summary.slices += 1;
        summary.span_us = summary.span_us.max(ts + dur);
        if pid == PID_CLIENTS as f64 {
            client_tids.insert(tid as u64);
        } else if pid == PID_WORKERS as f64 {
            worker_tids.insert(tid as u64);
        }
    }
    summary.client_tracks = client_tids.len();
    summary.worker_tracks = worker_tids.len();
    Ok(summary)
}

// ---------------------------------------------------------------------
// Bottleneck attribution
// ---------------------------------------------------------------------

/// Aggregate stage attribution: how total server residency splits
/// across the lifecycle stages, per strategy. The paper's contention
/// argument in one struct: thread-per-CN strategies put the dominant
/// share in queue wait (ops parked behind contended handler threads),
/// worker-pool strategies move it into backend service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    pub ops: u64,
    pub queue_ns: u64,
    pub dispatch_ns: u64,
    pub backend_ns: u64,
    pub reply_ns: u64,
    pub total_ns: u64,
}

impl StageBreakdown {
    /// From a telemetry snapshot's histogram sums (covers every
    /// completed op, not just sampled ones).
    pub fn from_snapshot(snap: &TelemetrySnapshot) -> StageBreakdown {
        let sum = |name: &str| snap.hist(name).map_or(0, |h| h.sum);
        StageBreakdown {
            ops: snap.hist("total_ns").map_or(0, |h| h.count),
            queue_ns: sum("queue_wait_ns"),
            dispatch_ns: sum("dispatch_lag_ns"),
            backend_ns: sum("service_ns"),
            reply_ns: sum("reply_lag_ns"),
            total_ns: sum("total_ns"),
        }
    }

    /// From raw sampled spans (the exporter's view).
    pub fn from_spans(spans: &[OpSpan]) -> StageBreakdown {
        let mut b = StageBreakdown::default();
        for s in spans {
            b.ops += 1;
            b.queue_ns += s.queue_wait_ns();
            b.dispatch_ns += s.dispatch_lag_ns();
            b.backend_ns += s.service_ns();
            b.reply_ns += s.reply_lag_ns();
            b.total_ns += s.total_ns();
        }
        b
    }

    /// Server time not attributed to a named stage (handler overhead
    /// between stamps).
    pub fn other_ns(&self) -> u64 {
        self.total_ns
            .saturating_sub(self.queue_ns + self.dispatch_ns + self.backend_ns + self.reply_ns)
    }

    /// `(stage name, share of total)` for every stage, fixed order.
    pub fn shares(&self) -> [(&'static str, f64); 5] {
        let total = self.total_ns.max(1) as f64;
        [
            ("queue-wait", self.queue_ns as f64 / total),
            ("dispatch", self.dispatch_ns as f64 / total),
            ("backend", self.backend_ns as f64 / total),
            ("reply", self.reply_ns as f64 / total),
            ("other", self.other_ns() as f64 / total),
        ]
    }

    /// The stage with the largest share of total residency.
    pub fn dominant(&self) -> (&'static str, f64) {
        let mut best = ("other", 0.0);
        for (name, share) in self.shares() {
            if share > best.1 {
                best = (name, share);
            }
        }
        best
    }

    /// Multi-line report: one row per stage plus the dominant verdict.
    pub fn render(&self, label: &str) -> String {
        let mut out = String::with_capacity(256);
        let _ = writeln!(
            out,
            "{label}: {} ops, {:.2} ms total server residency",
            self.ops,
            self.total_ns as f64 / 1e6
        );
        for (name, share) in self.shares() {
            let ns = match name {
                "queue-wait" => self.queue_ns,
                "dispatch" => self.dispatch_ns,
                "backend" => self.backend_ns,
                "reply" => self.reply_ns,
                _ => self.other_ns(),
            };
            let _ = writeln!(
                out,
                "  {name:<12} {:>10.3} ms  {:>5.1}%",
                ns as f64 / 1e6,
                share * 100.0
            );
        }
        let (stage, share) = self.dominant();
        let _ = writeln!(
            out,
            "  dominant stage: {stage} ({:.1}% of server residency)",
            share * 100.0
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{Disposition, OpKind};

    fn span(client: u64, seq: u64, worker: u32) -> OpSpan {
        let mut s = OpSpan::begin(OpKind::Write, client, seq, 1_000 * seq);
        s.bytes = 4096;
        s.trace_id = (client << 32) | seq;
        s.sampled = true;
        s.worker = worker;
        s.enqueue_ns = s.arrival_ns + 100;
        s.dispatch_ns = s.enqueue_ns + 400;
        s.backend_start_ns = s.dispatch_ns + 50;
        s.backend_done_ns = s.backend_start_ns + 2_000;
        s.reply_ns = s.backend_done_ns + 150;
        s
    }

    #[test]
    fn exporter_keeps_sampled_and_every_nth() {
        let ex = TraceExporter::new(2);
        let mut unsampled = span(1, 1, 1);
        unsampled.sampled = false;
        ex.on_complete(&unsampled); // 1st: not self-sampled (2 | 1)
        ex.on_complete(&unsampled); // 2nd: self-sampled
        ex.on_complete(&span(1, 3, 1)); // client-sampled
        assert_eq!(ex.spans().len(), 2);
        assert_eq!(ex.dropped(), 0);
    }

    #[test]
    fn exporter_capacity_is_bounded() {
        let ex = TraceExporter::with_capacity(0, 2);
        for seq in 0..5 {
            ex.on_complete(&span(1, seq, 1));
        }
        assert_eq!(ex.spans().len(), 2);
        assert_eq!(ex.dropped(), 3);
    }

    #[test]
    fn rendered_trace_validates_with_expected_tracks() {
        let spans = [span(0, 1, 1), span(0, 2, 2), span(3, 3, 1)];
        let doc = render_chrome_trace(&spans);
        let summary = validate_chrome_trace(&doc).expect("valid trace");
        // 3 op slices + 3 queue slices + 3 backend slices.
        assert_eq!(summary.slices, 9);
        assert_eq!(summary.client_tracks, 2); // clients 0 and 3
        assert_eq!(summary.worker_tracks, 2); // workers 1 and 2
        assert_eq!(summary.counter_events, 6); // enqueue+dispatch per span
        assert!(summary.span_us > 0.0);
    }

    #[test]
    fn empty_trace_is_still_well_formed() {
        let doc = render_chrome_trace(&[]);
        let summary = validate_chrome_trace(&doc).expect("valid");
        assert_eq!(summary.slices, 0);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":{}}").is_err());
        // Slice without a duration.
        let doc = "{\"traceEvents\":[{\"name\":\"w\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0}]}";
        assert!(validate_chrome_trace(doc).is_err());
        // Non-monotone timestamps.
        let doc = "{\"traceEvents\":[\
                   {\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":5,\"dur\":1},\
                   {\"name\":\"b\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":4,\"dur\":1}]}";
        assert!(validate_chrome_trace(doc).is_err());
        // Slice on the reserved counter tid.
        let doc = "{\"traceEvents\":[{\"name\":\"w\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":1}]}";
        assert!(validate_chrome_trace(doc).is_err());
    }

    #[test]
    fn breakdown_attributes_dominant_stage() {
        let b = StageBreakdown::from_spans(&[span(1, 1, 1), span(1, 2, 1)]);
        assert_eq!(b.ops, 2);
        assert_eq!(b.backend_ns, 4_000);
        assert_eq!(b.queue_ns, 800);
        let (stage, share) = b.dominant();
        assert_eq!(stage, "backend");
        assert!(share > 0.5);
        let report = b.render("sched");
        assert!(report.contains("dominant stage: backend"));
    }

    #[test]
    fn disposition_names_appear_in_trace_args() {
        let mut s = span(1, 1, 0);
        s.disposition = Disposition::DrainDeferred;
        s.ok = false;
        s.errno = 5;
        let doc = render_chrome_trace(&[s]);
        assert!(doc.contains("\"disposition\":\"deferred\""));
        assert!(doc.contains("\"errno\":5"));
        validate_chrome_trace(&doc).expect("valid");
    }
}
