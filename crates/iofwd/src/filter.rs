//! In-situ data filtering on the I/O node — the paper's §VII future
//! work, implemented:
//!
//! > Since the compute capabilities of the I/O forwarding nodes are
//! > usually underutilized, we are investigating techniques to offload
//! > data filtering onto the I/O forwarding nodes in order to reduce the
//! > amount of data written to storage as well as to facilitate in situ
//! > analytics.
//!
//! A [`DataFilter`] observes (and may transform or drop) every data
//! operation as it is executed on the ION, after staging and before the
//! backend — so filtering overlaps application computation exactly like
//! the I/O itself does. Filters compose as a [`FilterChain`] attached to
//! the daemon via [`crate::server::ServerConfig::with_filter`], in the
//! spirit of ZOID's plug-in architecture (§II-B2: "ZOID can be easily
//! extended with new functionality via plug-ins").

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

/// What a filter decided about a write's payload.
#[derive(Debug, Clone)]
pub enum FilterAction {
    /// Write the data unchanged.
    Pass,
    /// Write transformed data instead (e.g. subsampled, compacted).
    Replace(Bytes),
    /// Consume the data entirely — pure in-situ analytics; nothing
    /// reaches the backend, the client still sees a full write.
    Consume,
}

/// Context handed to a filter with each write.
#[derive(Debug, Clone, Copy)]
pub struct WriteContext<'a> {
    /// Path the descriptor was opened with (sockets: `host:port`).
    pub path: &'a str,
    /// Positioned-write offset, if any.
    pub offset: Option<u64>,
}

/// An in-situ analysis/reduction stage running on the ION.
pub trait DataFilter: Send + Sync + 'static {
    /// Name for diagnostics.
    fn name(&self) -> &str;

    /// Inspect (and possibly transform) one write's payload.
    fn on_write(&self, ctx: WriteContext<'_>, data: &[u8]) -> FilterAction;

    /// Should this filter run for the given path? Default: everything.
    fn matches(&self, _path: &str) -> bool {
        true
    }
}

/// An ordered set of filters; each stage sees the previous stage's
/// output.
#[derive(Clone, Default)]
pub struct FilterChain {
    filters: Vec<Arc<dyn DataFilter>>,
}

impl FilterChain {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with(mut self, f: Arc<dyn DataFilter>) -> Self {
        self.filters.push(f);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// Run the chain over a write. Returns `None` if some stage consumed
    /// the data, otherwise the (possibly replaced) payload.
    pub fn apply(&self, ctx: WriteContext<'_>, data: Bytes) -> Option<Bytes> {
        let mut current = data;
        for f in &self.filters {
            if !f.matches(ctx.path) {
                continue;
            }
            match f.on_write(ctx, &current) {
                FilterAction::Pass => {}
                FilterAction::Replace(next) => current = next,
                FilterAction::Consume => return None,
            }
        }
        Some(current)
    }
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// Restrict any filter to paths under a prefix.
pub struct Scoped<F: ?Sized> {
    prefix: String,
    inner: Arc<F>,
}

impl<F: DataFilter + ?Sized> Scoped<F> {
    pub fn new(prefix: impl Into<String>, inner: Arc<F>) -> Arc<Self> {
        Arc::new(Scoped {
            prefix: prefix.into(),
            inner,
        })
    }
}

impl<F: DataFilter + ?Sized> DataFilter for Scoped<F> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn matches(&self, path: &str) -> bool {
        path.starts_with(&self.prefix) && self.inner.matches(path)
    }

    fn on_write(&self, ctx: WriteContext<'_>, data: &[u8]) -> FilterAction {
        self.inner.on_write(ctx, data)
    }
}

// ---------------------------------------------------------------------------
// Stock filters
// ---------------------------------------------------------------------------

/// Streaming statistics over `f64` samples flowing through the daemon —
/// the canonical in-situ analytics kernel (the paper's motivating
/// example is computing analysis products while the simulation runs).
#[derive(Default)]
pub struct StatisticsFilter {
    count: AtomicU64,
    state: Mutex<StatState>,
}

#[derive(Default)]
struct StatState {
    sum: f64,
    min: f64,
    max: f64,
    initialized: bool,
}

/// Snapshot of a [`StatisticsFilter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    pub samples: u64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
}

impl StatisticsFilter {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        let s = self.state.lock();
        let n = self.count.load(Ordering::Relaxed);
        StatsSnapshot {
            samples: n,
            mean: if n == 0 { 0.0 } else { s.sum / n as f64 },
            min: if s.initialized { s.min } else { 0.0 },
            max: if s.initialized { s.max } else { 0.0 },
        }
    }
}

impl DataFilter for StatisticsFilter {
    fn name(&self) -> &str {
        "statistics"
    }

    fn on_write(&self, _ctx: WriteContext<'_>, data: &[u8]) -> FilterAction {
        let mut s = self.state.lock();
        let mut n = 0u64;
        for chunk in data.chunks_exact(8) {
            let v = f64::from_le_bytes(chunk.try_into().unwrap());
            if !v.is_finite() {
                continue;
            }
            if !s.initialized {
                s.min = v;
                s.max = v;
                s.initialized = true;
            } else {
                s.min = s.min.min(v);
                s.max = s.max.max(v);
            }
            s.sum += v;
            n += 1;
        }
        drop(s);
        self.count.fetch_add(n, Ordering::Relaxed);
        FilterAction::Pass
    }
}

/// Keep every k-th `f64` sample: a data-reduction filter that shrinks
/// what reaches storage by ~k×.
pub struct SubsampleFilter {
    pub stride: usize,
    reduced_bytes: AtomicU64,
}

impl SubsampleFilter {
    pub fn new(stride: usize) -> Arc<Self> {
        assert!(stride >= 1);
        Arc::new(SubsampleFilter {
            stride,
            reduced_bytes: AtomicU64::new(0),
        })
    }

    /// Bytes removed so far.
    pub fn reduced_bytes(&self) -> u64 {
        self.reduced_bytes.load(Ordering::Relaxed)
    }
}

impl DataFilter for SubsampleFilter {
    fn name(&self) -> &str {
        "subsample"
    }

    fn on_write(&self, _ctx: WriteContext<'_>, data: &[u8]) -> FilterAction {
        if self.stride == 1 {
            return FilterAction::Pass;
        }
        let mut out = Vec::with_capacity(data.len() / self.stride + 8);
        for (i, chunk) in data.chunks_exact(8).enumerate() {
            if i % self.stride == 0 {
                out.extend_from_slice(chunk);
            }
        }
        // Non-multiple-of-8 tails pass through untouched.
        let tail = data.len() - (data.len() / 8) * 8;
        if tail > 0 {
            out.extend_from_slice(&data[data.len() - tail..]);
        }
        self.reduced_bytes
            .fetch_add((data.len() - out.len()) as u64, Ordering::Relaxed);
        FilterAction::Replace(Bytes::from(out))
    }
}

/// Route matching paths to /dev/null: data is accounted and dropped —
/// e.g. scratch output the analysis has already consumed upstream.
pub struct SinkFilter {
    pub prefix: String,
    consumed_bytes: AtomicU64,
}

impl SinkFilter {
    pub fn new(prefix: impl Into<String>) -> Arc<Self> {
        SinkFilter {
            prefix: prefix.into(),
            consumed_bytes: AtomicU64::new(0),
        }
        .into()
    }

    pub fn consumed_bytes(&self) -> u64 {
        self.consumed_bytes.load(Ordering::Relaxed)
    }
}

impl DataFilter for SinkFilter {
    fn name(&self) -> &str {
        "sink"
    }

    fn matches(&self, path: &str) -> bool {
        path.starts_with(&self.prefix)
    }

    fn on_write(&self, _ctx: WriteContext<'_>, data: &[u8]) -> FilterAction {
        self.consumed_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        FilterAction::Consume
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doubles(vals: &[f64]) -> Bytes {
        let mut out = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            out.extend_from_slice(&v.to_le_bytes());
        }
        Bytes::from(out)
    }

    fn ctx() -> WriteContext<'static> {
        WriteContext {
            path: "/data",
            offset: None,
        }
    }

    #[test]
    fn empty_chain_passes_everything() {
        let chain = FilterChain::new();
        let data = Bytes::from_static(b"abc");
        assert_eq!(chain.apply(ctx(), data.clone()), Some(data));
        assert!(chain.is_empty());
    }

    #[test]
    fn statistics_filter_computes_moments() {
        let f = StatisticsFilter::new();
        let chain = FilterChain::new().with(f.clone());
        let data = doubles(&[1.0, 2.0, 3.0, 4.0]);
        let out = chain.apply(ctx(), data.clone()).unwrap();
        assert_eq!(out, data, "statistics filter must not modify data");
        let s = f.snapshot();
        assert_eq!(s.samples, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn statistics_filter_skips_non_finite() {
        let f = StatisticsFilter::new();
        f.on_write(ctx(), &doubles(&[1.0, f64::NAN, f64::INFINITY, 3.0]));
        let s = f.snapshot();
        assert_eq!(s.samples, 2);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn subsample_keeps_every_kth() {
        let f = SubsampleFilter::new(2);
        let chain = FilterChain::new().with(f.clone());
        let out = chain
            .apply(ctx(), doubles(&[0.0, 1.0, 2.0, 3.0, 4.0]))
            .unwrap();
        assert_eq!(out, doubles(&[0.0, 2.0, 4.0]));
        assert_eq!(f.reduced_bytes(), 16);
    }

    #[test]
    fn subsample_stride_one_is_identity() {
        let f = SubsampleFilter::new(1);
        assert!(matches!(f.on_write(ctx(), b"whatever"), FilterAction::Pass));
    }

    #[test]
    fn sink_filter_consumes_matching_paths_only() {
        let f = SinkFilter::new("/scratch/");
        let chain = FilterChain::new().with(f.clone());
        let data = Bytes::from_static(b"xxxx");
        // Non-matching path: untouched.
        assert_eq!(
            chain.apply(
                WriteContext {
                    path: "/results/a",
                    offset: None
                },
                data.clone()
            ),
            Some(data.clone())
        );
        // Matching path: consumed.
        assert_eq!(
            chain.apply(
                WriteContext {
                    path: "/scratch/t",
                    offset: None
                },
                data
            ),
            None
        );
        assert_eq!(f.consumed_bytes(), 4);
    }

    #[test]
    fn scoped_filter_restricts_paths() {
        let stats = StatisticsFilter::new();
        let scoped = Scoped::new("/results/", stats.clone());
        let chain = FilterChain::new().with(scoped);
        chain.apply(
            WriteContext {
                path: "/results/a",
                offset: None,
            },
            doubles(&[5.0]),
        );
        chain.apply(
            WriteContext {
                path: "/scratch/b",
                offset: None,
            },
            doubles(&[100.0]),
        );
        let s = stats.snapshot();
        assert_eq!(s.samples, 1, "scratch write must not be observed");
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn chain_composes_in_order() {
        // subsample(2) then statistics: the stats see the reduced stream.
        let sub = SubsampleFilter::new(2);
        let stats = StatisticsFilter::new();
        let chain = FilterChain::new().with(sub).with(stats.clone());
        chain
            .apply(ctx(), doubles(&[10.0, 99.0, 20.0, 99.0]))
            .unwrap();
        let s = stats.snapshot();
        assert_eq!(s.samples, 2);
        assert_eq!(s.max, 20.0);
        assert_eq!(chain.len(), 2);
    }
}
