//! The Buffer Management Layer (BML).
//!
//! §IV of the paper:
//!
//! > To facilitate asynchronous data staging, we designed a custom buffer
//! > management layer (BML) in ZOID. [...] The total memory managed by
//! > BML can be controlled by an environment variable during the
//! > application launch. In the current implementation, the buffer
//! > management allocates buffers that are powers of 2 bytes. [...] The
//! > amount of data that can be buffered is limited by the available
//! > memory on the ION. If there is insufficient memory to stage the
//! > data, the I/O operation is blocked until a number of queued I/O
//! > operations complete and sufficient memory is available.
//!
//! This module implements exactly that: power-of-two size classes with
//! per-class free lists, a hard capacity on total outstanding buffer
//! memory, and *blocking* acquisition when the cap is reached.
//!
//! Blocked acquisitions are admitted in strict FIFO order via a ticket
//! queue: a release reserves capacity for the head waiter(s) *before*
//! waking them, so a late arrival can never barge past a handler that
//! blocked earlier (no starvation of large requests behind a stream of
//! small ones). This hand-off protocol is model-checked by the loom
//! suite (`tests/loom_model.rs`, run with `RUSTFLAGS="--cfg loom"`).
//!
//! Lifetime under write coalescing (DESIGN.md §12): a staged buffer is
//! normally released right after its own serial backend write. When the
//! worker harvests a contiguous chain into one vectored call, every
//! constituent's buffer is instead *lent* to the batch iovec (no copy)
//! and all of them are released together at fan-out, after the batch's
//! outcome has been attributed per op. Coalescing therefore never
//! extends occupancy past the batch it rode in — the gauge still reads
//! zero once the lane drains, which `kill_during_load_strands_no_bml_buffer`
//! and the drain contract check.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use bytes::{ByteOwner, Bytes};
use iofwd_proto::Errno;

use crate::sync::{Condvar, Mutex};
use crate::telemetry::Telemetry;

/// Smallest buffer class: 4 KiB (one BG/P page).
pub const MIN_CLASS_SHIFT: u32 = 12;
/// Largest buffer class: 64 MiB (the protocol's max frame payload).
pub const MAX_CLASS_SHIFT: u32 = 26;
const NUM_CLASSES: usize = (MAX_CLASS_SHIFT - MIN_CLASS_SHIFT + 1) as usize;

/// Statistics for reports and ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BmlStats {
    /// Successful acquisitions.
    pub acquires: u64,
    /// Acquisitions that had to block for memory (§IV's blocking path).
    pub blocked_acquires: u64,
    /// Acquisitions served from a free list (no allocator call).
    pub freelist_hits: u64,
    /// Peak outstanding buffer memory.
    pub high_water: u64,
    /// Bytes requested beyond what the rounded class provides (internal
    /// fragmentation cost of the power-of-two policy).
    pub fragmentation_bytes: u64,
    /// Acquisitions that adopted an existing payload by reference
    /// (zero-copy staging: capacity charged, no block taken).
    pub adopted: u64,
    /// Block bytes returned to the per-class free lists for reuse.
    pub recycled_bytes: u64,
}

struct BmlInner {
    free: [Vec<Box<[u8]>>; NUM_CLASSES],
    outstanding: u64,
    stats: BmlStats,
    closed: bool,
    /// Blocked acquisitions in arrival order: (ticket, block size).
    waiters: VecDeque<(u64, u64)>,
    /// Tickets whose capacity a release has already reserved; the owner
    /// consumes the entry when it wakes.
    granted: HashMap<u64, u64>,
    next_ticket: u64,
}

impl BmlInner {
    /// Reserve capacity for as many head-of-queue waiters as now fit.
    /// Strict FIFO: stops at the first waiter that does not fit, even if
    /// a later (smaller) one would.
    fn grant_from_front(&mut self, capacity: u64) {
        while let Some(&(ticket, block)) = self.waiters.front() {
            if self.outstanding + block > capacity {
                break;
            }
            self.outstanding += block;
            self.granted.insert(ticket, block);
            self.waiters.pop_front();
        }
    }
}

/// The buffer manager. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct Bml {
    shared: Arc<BmlShared>,
}

struct BmlShared {
    inner: Mutex<BmlInner>,
    cv: Condvar,
    capacity: u64,
    telemetry: Arc<Telemetry>,
}

/// Storage behind a [`BmlBuffer`].
enum BufRepr {
    /// A pool-owned power-of-two block; recycled into the class free
    /// list on drop. Empty only after `Drop` takes the block; all
    /// user-reachable methods see a full block.
    Owned(Box<[u8]>),
    /// A payload adopted by reference (typically a zero-copy view into
    /// a receive buffer). Capacity is charged as if a block of the same
    /// class were held, so BML backpressure behaves identically; drop
    /// releases the charge and the view.
    Adopted(Bytes),
}

/// A staged buffer: exclusive access to `len` usable bytes, either
/// backed by a pool block or adopting a shared payload by reference.
/// Returns its memory (or capacity charge) to the BML on drop.
pub struct BmlBuffer {
    repr: BufRepr,
    len: usize,
    class: usize,
    bml: Bml,
}

/// Keeps a slab block alive as the backing store of a shared [`Bytes`]
/// payload (e.g. a read reply). The block rejoins the free list when
/// the last view drops.
struct SlabPayload {
    buf: BmlBuffer,
}

impl ByteOwner for SlabPayload {
    fn as_slice(&self) -> &[u8] {
        self.buf.as_slice()
    }
}

impl Bml {
    /// Create a BML managing at most `capacity` bytes of staging memory.
    ///
    /// Panics if `capacity` cannot hold even one smallest-class block.
    pub fn new(capacity: u64) -> Self {
        Self::with_telemetry(capacity, Arc::new(Telemetry::disabled()))
    }

    /// Like [`Bml::new`], reporting occupancy/waiter gauges and block
    /// durations into a shared telemetry registry.
    pub fn with_telemetry(capacity: u64, telemetry: Arc<Telemetry>) -> Self {
        assert!(
            capacity >= (1 << MIN_CLASS_SHIFT),
            "BML capacity {capacity} smaller than one {} B block",
            1u64 << MIN_CLASS_SHIFT
        );
        Bml {
            shared: Arc::new(BmlShared {
                inner: Mutex::new(BmlInner {
                    free: std::array::from_fn(|_| Vec::new()),
                    outstanding: 0,
                    stats: BmlStats::default(),
                    closed: false,
                    waiters: VecDeque::new(),
                    granted: HashMap::new(),
                    next_ticket: 0,
                }),
                cv: Condvar::new(),
                capacity,
                telemetry,
            }),
        }
    }

    /// Size class (power-of-two block size) for a request of `len` bytes.
    pub fn class_for(len: usize) -> (usize, usize) {
        let len = len.max(1);
        let shift = (usize::BITS - (len - 1).leading_zeros()).max(MIN_CLASS_SHIFT);
        let shift = shift.min(MAX_CLASS_SHIFT);
        let block = 1usize << shift;
        assert!(block >= len, "request {len} exceeds max class {block}");
        ((shift - MIN_CLASS_SHIFT) as usize, block)
    }

    /// Largest single request this BML can serve.
    pub fn max_request(&self) -> usize {
        (1usize << MAX_CLASS_SHIFT).min(self.shared.capacity as usize)
    }

    /// Acquire a buffer of at least `len` bytes, blocking while staging
    /// memory is exhausted (the paper's §IV behaviour). Fails with
    /// [`Errno::NoMem`] only when the BML has been closed for shutdown.
    pub fn acquire(&self, len: usize) -> Result<BmlBuffer, Errno> {
        self.acquire_timeout(len, None).ok_or(Errno::NoMem)
    }

    /// Acquire with an optional timeout; `None` timeout blocks forever.
    /// Returns `None` if the BML is closed or the timeout expires.
    pub fn acquire_timeout(&self, len: usize, timeout: Option<Duration>) -> Option<BmlBuffer> {
        self.admit(len, timeout, None)
    }

    /// Adopt `data` as a staged buffer by reference: the payload is not
    /// copied — the staging charge for its size class goes through the
    /// same FIFO admission as [`Bml::acquire`], so backpressure and
    /// fairness are identical to the copying path. Fails with
    /// [`Errno::NoMem`] only when the BML has been closed.
    pub fn adopt(&self, data: Bytes) -> Result<BmlBuffer, Errno> {
        self.adopt_timeout(data, None).ok_or(Errno::NoMem)
    }

    /// [`Bml::adopt`] with an optional admission timeout.
    pub fn adopt_timeout(&self, data: Bytes, timeout: Option<Duration>) -> Option<BmlBuffer> {
        self.admit(data.len(), timeout, Some(data))
    }

    /// Non-blocking [`Bml::adopt`]; fails under the same conditions as
    /// [`Bml::try_acquire`] (closed, full, or queued waiters ahead).
    pub fn try_adopt(&self, data: Bytes) -> Option<BmlBuffer> {
        self.try_admit(data.len(), Some(data))
    }

    /// Shared admission path: charge capacity for `len`'s class (FIFO,
    /// blocking) and build a buffer — pool-backed when `source` is
    /// `None`, adopting `source` by reference otherwise.
    fn admit(
        &self,
        len: usize,
        timeout: Option<Duration>,
        source: Option<Bytes>,
    ) -> Option<BmlBuffer> {
        let (class, block_size) = Self::class_for(len);
        assert!(
            block_size as u64 <= self.shared.capacity,
            "request {len} larger than BML capacity {}",
            self.shared.capacity
        );
        let mut inner = self.shared.inner.lock();
        if inner.closed {
            return None;
        }
        // Fast path: nobody queued ahead of us and the block fits.
        if inner.waiters.is_empty() && inner.outstanding + block_size as u64 <= self.shared.capacity
        {
            inner.outstanding += block_size as u64;
            return Some(self.finish_admit(inner, class, block_size, len, false, source));
        }
        // Slow path: join the FIFO admission queue and wait for a release
        // (or close) to hand us reserved capacity.
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        inner.waiters.push_back((ticket, block_size as u64));
        let tel = &self.shared.telemetry;
        let block_start = tel.now_ns();
        if tel.enabled() {
            tel.bml_blocked_acquires.inc();
            tel.bml_waiters.add(1);
        }
        loop {
            if inner.granted.remove(&ticket).is_some() {
                // Capacity already reserved on our behalf.
                if tel.enabled() {
                    tel.bml_waiters.add(-1);
                    tel.bml_block_ns
                        .record(tel.now_ns().saturating_sub(block_start));
                }
                return Some(self.finish_admit(inner, class, block_size, len, true, source));
            }
            if inner.closed {
                inner.stats.blocked_acquires += 1;
                if tel.enabled() {
                    tel.bml_waiters.add(-1);
                }
                return None;
            }
            match timeout {
                None => self.shared.cv.wait(&mut inner),
                Some(t) => {
                    if self.shared.cv.wait_for(&mut inner, t).timed_out() {
                        // A grant may have landed between timeout and
                        // relock; consume it rather than losing capacity.
                        if tel.enabled() {
                            tel.bml_waiters.add(-1);
                        }
                        if inner.granted.remove(&ticket).is_some() {
                            if tel.enabled() {
                                tel.bml_block_ns
                                    .record(tel.now_ns().saturating_sub(block_start));
                            }
                            return Some(
                                self.finish_admit(inner, class, block_size, len, true, source),
                            );
                        }
                        inner.waiters.retain(|&(t, _)| t != ticket);
                        // Our departure may unblock the (smaller) next
                        // waiter that was stuck behind us.
                        inner.grant_from_front(self.shared.capacity);
                        inner.stats.blocked_acquires += 1;
                        drop(inner);
                        self.shared.cv.notify_all();
                        return None;
                    }
                }
            }
        }
    }

    /// Build the buffer once capacity has been charged: pop a
    /// free-listed (or freshly allocated) block, or wrap the adopted
    /// payload. `outstanding` has already been charged by the caller.
    fn finish_admit(
        &self,
        mut inner: crate::sync::MutexGuard<'_, BmlInner>,
        class: usize,
        block_size: usize,
        len: usize,
        blocked: bool,
        source: Option<Bytes>,
    ) -> BmlBuffer {
        inner.stats.acquires += 1;
        if blocked {
            inner.stats.blocked_acquires += 1;
        }
        inner.stats.high_water = inner.stats.high_water.max(inner.outstanding);
        inner.stats.fragmentation_bytes += (block_size - len) as u64;
        let tel = &self.shared.telemetry;
        if tel.enabled() {
            // `outstanding` was charged by the caller under this same
            // lock, so the gauge tracks the accounting exactly.
            tel.bml_occupancy.set(inner.outstanding as i64);
        }
        let repr = match source {
            Some(data) => {
                inner.stats.adopted += 1;
                BufRepr::Adopted(data)
            }
            None => BufRepr::Owned(match inner.free[class].pop() {
                Some(b) => {
                    inner.stats.freelist_hits += 1;
                    if tel.enabled() {
                        tel.slab_hits.inc();
                    }
                    b
                }
                None => {
                    if tel.enabled() {
                        tel.slab_misses.inc();
                        tel.hotpath_alloc_bytes.add(block_size as u64);
                    }
                    vec![0u8; block_size].into_boxed_slice()
                }
            }),
        };
        drop(inner);
        BmlBuffer {
            repr,
            len,
            class,
            bml: self.clone(),
        }
    }

    /// Try to acquire without blocking. Fails when closed, when capacity
    /// is exhausted, or when earlier acquisitions are queued (FIFO: a
    /// try-acquire must not barge past blocked handlers).
    pub fn try_acquire(&self, len: usize) -> Option<BmlBuffer> {
        self.try_admit(len, None)
    }

    fn try_admit(&self, len: usize, source: Option<Bytes>) -> Option<BmlBuffer> {
        let (class, block_size) = Self::class_for(len);
        let mut inner = self.shared.inner.lock();
        if inner.closed
            || !inner.waiters.is_empty()
            || inner.outstanding + block_size as u64 > self.shared.capacity
        {
            return None;
        }
        inner.outstanding += block_size as u64;
        Some(self.finish_admit(inner, class, block_size, len, false, source))
    }

    /// Wake all waiters and refuse further acquisitions (daemon shutdown).
    pub fn close(&self) {
        let mut inner = self.shared.inner.lock();
        inner.closed = true;
        // Un-reserve capacity granted to waiters that have not collected
        // it yet: they will observe `closed` before their grant.
        inner.waiters.clear();
        drop(inner);
        self.shared.cv.notify_all();
    }

    /// Bytes currently held by live buffers (and reserved grants).
    pub fn outstanding(&self) -> u64 {
        self.shared.inner.lock().outstanding
    }

    /// Acquisitions currently blocked in the FIFO admission queue
    /// (introspection for stats reports and the loom suite).
    pub fn waiter_count(&self) -> usize {
        self.shared.inner.lock().waiters.len()
    }

    /// Total managed capacity.
    pub fn capacity(&self) -> u64 {
        self.shared.capacity
    }

    pub fn stats(&self) -> BmlStats {
        self.shared.inner.lock().stats
    }

    fn release(&self, block: Box<[u8]>, class: usize) {
        let block_size = block.len() as u64;
        let mut inner = self.shared.inner.lock();
        inner.outstanding -= block_size;
        // Keep a bounded free list per class so idle staging memory does
        // not pin the whole capacity in fragmented blocks. Blocks that
        // make it back here are the slab: the next acquisition of this
        // class reuses them without touching the allocator.
        if inner.free[class].len() < 64 && !inner.closed {
            inner.stats.recycled_bytes += block_size;
            if self.shared.telemetry.enabled() {
                self.shared.telemetry.slab_recycled_bytes.add(block_size);
            }
            inner.free[class].push(block);
        }
        // FIFO hand-off: reserve the freed capacity for the head
        // waiter(s) before any new arrival can take it.
        inner.grant_from_front(self.shared.capacity);
        if self.shared.telemetry.enabled() {
            self.shared
                .telemetry
                .bml_occupancy
                .set(inner.outstanding as i64);
        }
        drop(inner);
        self.shared.cv.notify_all();
    }

    /// Release the capacity charge of an adopted buffer (no block to
    /// recycle — the payload's storage belongs to its refcount).
    fn release_adopted(&self, class: usize) {
        let block_size = 1u64 << (class as u32 + MIN_CLASS_SHIFT);
        let mut inner = self.shared.inner.lock();
        inner.outstanding -= block_size;
        inner.grant_from_front(self.shared.capacity);
        if self.shared.telemetry.enabled() {
            self.shared
                .telemetry
                .bml_occupancy
                .set(inner.outstanding as i64);
        }
        drop(inner);
        self.shared.cv.notify_all();
    }

    /// Pop (or allocate) a block for a buffer whose capacity charge is
    /// already held — used when a copy-on-write promotion needs private
    /// storage for an adopted payload.
    fn take_block_for_promotion(&self, class: usize, block_size: usize) -> Box<[u8]> {
        let tel = &self.shared.telemetry;
        let mut inner = self.shared.inner.lock();
        match inner.free[class].pop() {
            Some(b) => {
                inner.stats.freelist_hits += 1;
                if tel.enabled() {
                    tel.slab_hits.inc();
                }
                b
            }
            None => {
                if tel.enabled() {
                    tel.slab_misses.inc();
                    tel.hotpath_alloc_bytes.add(block_size as u64);
                }
                vec![0u8; block_size].into_boxed_slice()
            }
        }
    }
}

impl BmlBuffer {
    /// Usable length (the requested size, not the rounded block size).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying block size (power of two) — for an adopted
    /// payload, the class charge it occupies.
    pub fn block_size(&self) -> usize {
        match &self.repr {
            BufRepr::Owned(block) => block.len(),
            BufRepr::Adopted(_) => 1usize << (self.class as u32 + MIN_CLASS_SHIFT),
        }
    }

    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            BufRepr::Owned(block) => &block[..self.len],
            BufRepr::Adopted(data) => &data[..self.len],
        }
    }

    /// Exclusive access to the usable bytes. An adopted payload is
    /// promoted copy-on-write to a private pool block on first call —
    /// the shared view it came from is never mutated through this.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        if let BufRepr::Adopted(data) = &self.repr {
            let data = data.clone();
            // Capacity for this class is already charged; only the
            // private storage itself is taken here.
            let block_size = 1usize << (self.class as u32 + MIN_CLASS_SHIFT);
            let mut block = self.bml.take_block_for_promotion(self.class, block_size);
            block[..self.len].copy_from_slice(&data[..self.len]);
            self.repr = BufRepr::Owned(block);
        }
        match &mut self.repr {
            BufRepr::Owned(block) => &mut block[..self.len],
            // Unreachable: the promotion above replaced any adopted repr.
            BufRepr::Adopted(_) => &mut [],
        }
    }

    /// Copy `src` into the buffer (must fit).
    pub fn fill_from(&mut self, src: &[u8]) {
        assert!(src.len() <= self.len, "fill_from overflow");
        self.as_mut_slice()[..src.len()].copy_from_slice(src);
    }

    /// Shrink the usable length (e.g. after a short backend read);
    /// never grows.
    pub fn truncate(&mut self, n: usize) {
        self.len = self.len.min(n);
    }

    /// Freeze into a shared refcounted payload without copying. The
    /// block — and its BML capacity charge — stays alive until the last
    /// view drops, then returns to the slab like any other release.
    pub fn into_bytes(self) -> Bytes {
        Bytes::from_owner(Arc::new(SlabPayload { buf: self }))
    }
}

impl Drop for BmlBuffer {
    fn drop(&mut self) {
        match std::mem::replace(&mut self.repr, BufRepr::Owned(Box::new([]))) {
            BufRepr::Owned(block) => {
                // The empty sentinel is what `replace` left behind in a
                // buffer that already dropped; never release it.
                if !block.is_empty() {
                    self.bml.release(block, self.class);
                }
            }
            BufRepr::Adopted(_) => self.bml.release_adopted(self.class),
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    #[test]
    fn class_rounding() {
        assert_eq!(Bml::class_for(1), (0, 4096));
        assert_eq!(Bml::class_for(4096), (0, 4096));
        assert_eq!(Bml::class_for(4097), (1, 8192));
        assert_eq!(Bml::class_for(1 << 20), ((20 - 12), 1 << 20));
        assert_eq!(Bml::class_for((1 << 20) + 1), ((21 - 12), 1 << 21));
    }

    #[test]
    #[should_panic]
    fn oversize_request_panics() {
        let _ = Bml::class_for((1 << 26) + 1);
    }

    #[test]
    fn acquire_release_accounting() {
        let bml = Bml::new(1 << 20);
        let b1 = bml.acquire(5000).unwrap(); // rounds to 8192
        assert_eq!(b1.block_size(), 8192);
        assert_eq!(b1.len(), 5000);
        assert_eq!(bml.outstanding(), 8192);
        drop(b1);
        assert_eq!(bml.outstanding(), 0);
        let s = bml.stats();
        assert_eq!(s.acquires, 1);
        assert_eq!(s.high_water, 8192);
        assert_eq!(s.fragmentation_bytes, 8192 - 5000);
    }

    #[test]
    fn freelist_reuse() {
        let bml = Bml::new(1 << 20);
        let b = bml.acquire(4096).unwrap();
        drop(b);
        let _b2 = bml.acquire(4096).unwrap();
        assert_eq!(bml.stats().freelist_hits, 1);
    }

    #[test]
    fn blocking_acquire_waits_for_release() {
        let bml = Bml::new(8192);
        let b1 = bml.acquire(8192).unwrap();
        let bml2 = bml.clone();
        let got_it = Arc::new(AtomicBool::new(false));
        let got_it2 = got_it.clone();
        let t = std::thread::spawn(move || {
            let _b = bml2.acquire(8192).unwrap(); // must block until b1 drops
            got_it2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            !got_it.load(Ordering::SeqCst),
            "acquire should still be blocked"
        );
        drop(b1);
        t.join().unwrap();
        assert!(got_it.load(Ordering::SeqCst));
        assert_eq!(bml.stats().blocked_acquires, 1);
    }

    #[test]
    fn try_acquire_does_not_block() {
        let bml = Bml::new(8192);
        let _b1 = bml.acquire(8192).unwrap();
        let t0 = Instant::now();
        assert!(bml.try_acquire(4096).is_none());
        assert!(t0.elapsed() < Duration::from_millis(20));
    }

    #[test]
    fn acquire_timeout_expires() {
        let bml = Bml::new(4096);
        let _b = bml.acquire(4096).unwrap();
        let got = bml.acquire_timeout(4096, Some(Duration::from_millis(30)));
        assert!(got.is_none());
    }

    #[test]
    fn timed_out_head_waiter_unblocks_successor() {
        // Head waiter wants the whole capacity, which can never fit while
        // the 4 KiB holder persists; the smaller waiter queued behind it
        // (FIFO: it may not barge) must be granted when the head gives up.
        let bml = Bml::new(16384);
        let hold = bml.acquire(4096).unwrap();
        let bml_big = bml.clone();
        let big = std::thread::spawn(move || {
            bml_big.acquire_timeout(16384, Some(Duration::from_millis(60)))
        });
        std::thread::sleep(Duration::from_millis(20));
        let bml_small = bml.clone();
        let small = std::thread::spawn(move || {
            // Queued behind `big`; becomes head when `big` times out.
            bml_small.acquire_timeout(4096, Some(Duration::from_millis(2000)))
        });
        assert!(big.join().unwrap().is_none(), "big request should time out");
        assert!(
            small.join().unwrap().is_some(),
            "small waiter must be granted after head leaves"
        );
        drop(hold);
        assert_eq!(bml.outstanding(), 0);
    }

    #[test]
    fn close_releases_waiters() {
        let bml = Bml::new(4096);
        let _b = bml.acquire(4096).unwrap();
        let bml2 = bml.clone();
        let t = std::thread::spawn(move || bml2.acquire_timeout(4096, None));
        std::thread::sleep(Duration::from_millis(20));
        bml.close();
        assert!(t.join().unwrap().is_none());
        assert!(bml.try_acquire(1).is_none());
        assert!(bml.acquire(1).is_err());
    }

    #[test]
    fn fill_and_read_back() {
        let bml = Bml::new(1 << 16);
        let mut b = bml.acquire(11).unwrap();
        b.fill_from(b"hello world");
        assert_eq!(b.as_slice(), b"hello world");
    }

    #[test]
    fn adopt_shares_storage_and_charges_capacity() {
        let bml = Bml::new(1 << 20);
        let payload = Bytes::from(vec![7u8; 5000]);
        let ptr = payload.as_ref().as_ptr();
        let buf = bml.adopt(payload).unwrap();
        assert_eq!(buf.as_slice().as_ptr(), ptr, "adopt must not copy");
        assert_eq!(buf.block_size(), 8192);
        assert_eq!(bml.outstanding(), 8192);
        assert_eq!(bml.stats().adopted, 1);
        drop(buf);
        assert_eq!(bml.outstanding(), 0);
    }

    #[test]
    fn adopted_buffer_backpressures_like_owned() {
        let bml = Bml::new(8192);
        let held = bml.adopt(Bytes::from(vec![0u8; 8192])).unwrap();
        assert!(bml.try_acquire(1).is_none());
        assert!(bml.try_adopt(Bytes::from(vec![0u8; 16])).is_none());
        drop(held);
        assert!(bml.try_acquire(1).is_some());
    }

    #[test]
    fn as_mut_slice_promotes_adopted_copy_on_write() {
        let bml = Bml::new(1 << 20);
        let payload = Bytes::from(vec![1u8; 100]);
        let shared = payload.clone();
        let mut buf = bml.adopt(payload).unwrap();
        buf.as_mut_slice()[0] = 9;
        assert_eq!(buf.as_slice()[0], 9);
        assert_eq!(shared[0], 1, "original payload must be untouched");
        drop(buf);
        assert_eq!(bml.outstanding(), 0);
    }

    #[test]
    fn into_bytes_keeps_capacity_until_last_view_drops() {
        let bml = Bml::new(1 << 20);
        let mut buf = bml.acquire(4096).unwrap();
        buf.fill_from(b"abc");
        buf.truncate(3);
        let view = buf.into_bytes();
        let view2 = view.clone();
        assert_eq!(&view[..], b"abc");
        assert_eq!(bml.outstanding(), 4096);
        drop(view);
        assert_eq!(bml.outstanding(), 4096, "clone still holds the block");
        drop(view2);
        assert_eq!(bml.outstanding(), 0);
        // The block rejoined the slab free list on the final drop.
        assert_eq!(bml.stats().recycled_bytes, 4096);
    }

    #[test]
    fn many_concurrent_holders_capped() {
        let bml = Bml::new(64 * 4096);
        let mut held = Vec::new();
        for _ in 0..64 {
            held.push(bml.acquire(4096).unwrap());
        }
        assert_eq!(bml.outstanding(), 64 * 4096);
        assert!(bml.try_acquire(1).is_none());
        held.clear();
        assert_eq!(bml.outstanding(), 0);
        assert!(bml.try_acquire(1).is_some());
    }
}
