//! Spawning and supervising an `iofwdd` *process* from test harnesses.
//!
//! Before this module every consumer that needed a live daemon — the
//! CLI smoke tests, the CI shell gates, the experiment harness — carried
//! its own copy of the same ad-hoc ritual: pick a port, spawn the
//! binary, poll something until it listens, remember to kill it.
//! [`DaemonHandle`] is that ritual once, correctly:
//!
//! * spawn `iofwdd --listen 127.0.0.1:0 --port-file …` so the kernel
//!   picks a free port (no bind races);
//! * wait for the port file with a timeout, then confirm the socket
//!   accepts;
//! * redirect stderr to a log file the caller can inspect (e.g. grep
//!   for `panicked` after a chaos run);
//! * kill + reap on [`DaemonHandle::shutdown`] or on drop, so an
//!   assertion failure in a test never leaks a daemon process.
//!
//! This is harness plumbing, not daemon code: it runs in test/bench
//! processes, never on the forwarding path.

use std::io;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Everything needed to launch one `iofwdd`.
///
/// `listen`/`--port-file` are managed by [`DaemonHandle::spawn`]; all
/// other daemon flags go through the typed fields or [`DaemonSpec::arg`].
#[derive(Debug, Clone)]
pub struct DaemonSpec {
    /// Path to the `iofwdd` binary.
    pub bin: PathBuf,
    /// `--root` sandbox directory (created if missing).
    pub root: PathBuf,
    /// `--mode` (ciod|zoid|sched|staged).
    pub mode: String,
    /// `--workers`.
    pub workers: usize,
    /// Extra raw arguments (e.g. `--coalesce=off`, `--fault-plan F`).
    pub extra_args: Vec<String>,
    /// Where to write the daemon's stderr (defaults to `ROOT/../daemon.log`
    /// when `None`).
    pub log: Option<PathBuf>,
    /// How long to wait for the daemon to come up.
    pub ready_timeout: Duration,
}

impl DaemonSpec {
    /// A spec with the same defaults the CI smoke tests use.
    pub fn new(bin: impl Into<PathBuf>, root: impl Into<PathBuf>) -> DaemonSpec {
        DaemonSpec {
            bin: bin.into(),
            root: root.into(),
            mode: "staged".to_string(),
            workers: 2,
            extra_args: Vec::new(),
            log: None,
            ready_timeout: Duration::from_secs(10),
        }
    }

    pub fn mode(mut self, mode: &str) -> DaemonSpec {
        self.mode = mode.to_string();
        self
    }

    pub fn workers(mut self, workers: usize) -> DaemonSpec {
        self.workers = workers;
        self
    }

    /// Append one raw daemon argument (call twice for `--flag value`).
    pub fn arg(mut self, arg: impl Into<String>) -> DaemonSpec {
        self.extra_args.push(arg.into());
        self
    }

    pub fn log_to(mut self, path: impl Into<PathBuf>) -> DaemonSpec {
        self.log = Some(path.into());
        self
    }
}

/// A live `iofwdd` process bound to a kernel-assigned port.
///
/// Dropping the handle kills and reaps the daemon; call
/// [`DaemonHandle::shutdown`] for an explicit, checked stop.
pub struct DaemonHandle {
    child: Option<Child>,
    port: u16,
    log_path: PathBuf,
}

impl DaemonHandle {
    /// Spawn the daemon described by `spec` and wait until it accepts
    /// connections (port file written *and* TCP connect succeeds), or
    /// fail with the tail of its log.
    pub fn spawn(spec: &DaemonSpec) -> io::Result<DaemonHandle> {
        std::fs::create_dir_all(&spec.root)?;
        let scratch = spec
            .root
            .parent()
            .map(Path::to_path_buf)
            .unwrap_or_else(|| spec.root.clone());
        let port_file = scratch.join(format!(
            "iofwdd-{}.port",
            spec.root
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("d")
        ));
        let _ = std::fs::remove_file(&port_file);
        let log_path = spec
            .log
            .clone()
            .unwrap_or_else(|| scratch.join("daemon.log"));
        let log = std::fs::File::create(&log_path)?;

        let mut cmd = Command::new(&spec.bin);
        cmd.arg("--listen")
            .arg("127.0.0.1:0")
            .arg("--root")
            .arg(&spec.root)
            .arg("--mode")
            .arg(&spec.mode)
            .arg("--workers")
            .arg(spec.workers.to_string())
            .arg("--port-file")
            .arg(&port_file)
            .args(&spec.extra_args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(log);
        let child = cmd.spawn()?;
        let mut handle = DaemonHandle {
            child: Some(child),
            port: 0,
            log_path,
        };

        let deadline = Instant::now() + spec.ready_timeout;
        let port = loop {
            // A crashed daemon never writes the port file; surface its
            // log instead of timing out silently.
            if let Some(child) = handle.child.as_mut() {
                if let Ok(Some(status)) = child.try_wait() {
                    return Err(io::Error::other(format!(
                        "iofwdd exited during startup ({status}): {}",
                        handle.log_tail()
                    )));
                }
            }
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(port) = text.trim().parse::<u16>() {
                    break port;
                }
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "iofwdd did not write {} within {:?}: {}",
                        port_file.display(),
                        spec.ready_timeout,
                        handle.log_tail()
                    ),
                ));
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        handle.port = port;

        // Belt and braces: the port file exists, now prove the listener
        // actually accepts (the acceptor thread could still be warming).
        let addr = handle.addr();
        loop {
            if TcpStream::connect(&addr).is_ok() {
                break;
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("iofwdd wrote port {port} but never accepted on {addr}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let _ = std::fs::remove_file(&port_file);
        Ok(handle)
    }

    /// `host:port` the daemon is listening on.
    pub fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.port)
    }

    pub fn port(&self) -> u16 {
        self.port
    }

    /// Where the daemon's stderr is being captured.
    pub fn log_path(&self) -> &Path {
        &self.log_path
    }

    /// The last few KiB of the daemon's log (best effort).
    pub fn log_tail(&self) -> String {
        match std::fs::read_to_string(&self.log_path) {
            Ok(text) => {
                let tail: Vec<&str> = text.lines().rev().take(12).collect();
                tail.into_iter().rev().collect::<Vec<_>>().join("\n")
            }
            Err(_) => String::from("(no log captured)"),
        }
    }

    /// True if the captured log contains a panic line — chaos harnesses
    /// gate on this after tearing the daemon down.
    pub fn panicked(&self) -> bool {
        std::fs::read_to_string(&self.log_path)
            .map(|t| t.to_ascii_lowercase().contains("panicked"))
            .unwrap_or(false)
    }

    /// Kill the daemon and reap it. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) -> io::Result<()> {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            child.wait()?;
        }
        Ok(())
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// Locate the `iofwdd` binary for the current build profile.
///
/// Resolution order:
/// 1. the `IOFWDD_BIN` environment variable (explicit override);
/// 2. `iofwdd` next to the current executable's target directory —
///    covers integration tests (`target/PROFILE/deps/test-…` →
///    `target/PROFILE/iofwdd`) and `cargo run` binaries.
///
/// Returns `None` when the binary has not been built yet; harnesses
/// that can afford it may fall back to invoking `cargo build`.
pub fn locate_iofwdd() -> Option<PathBuf> {
    if let Ok(explicit) = std::env::var("IOFWDD_BIN") {
        let p = PathBuf::from(explicit);
        if p.is_file() {
            return Some(p);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let bin_name = format!("iofwdd{}", std::env::consts::EXE_SUFFIX);
    // Walk up from the test/bench executable: deps/ → PROFILE/ → target/.
    for dir in exe.ancestors().skip(1).take(4) {
        let candidate = dir.join(&bin_name);
        if candidate.is_file() {
            return Some(candidate);
        }
    }
    None
}
