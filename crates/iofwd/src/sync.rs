//! Sync-primitive selection for model-checkable modules.
//!
//! The BML and the work queue — the two protocols whose correctness the
//! paper's asynchronous-staging design leans on — are written against
//! this module instead of `parking_lot` directly. A normal build gets
//! `parking_lot`; building with `RUSTFLAGS="--cfg loom"` swaps in
//! `loomlite`'s scheduler-instrumented primitives so the loom test suite
//! (`crates/iofwd/tests/loom_model.rs`) can explore every interleaving
//! of their critical sections.

#[cfg(loom)]
pub(crate) use loomlite::sync::{Condvar, Mutex, MutexGuard};
#[cfg(not(loom))]
pub(crate) use parking_lot::{Condvar, Mutex, MutexGuard};
