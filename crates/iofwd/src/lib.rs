//! # iofwd — a portable I/O forwarding runtime
//!
//! This crate is the paper's contribution as adoptable code: an
//! I/O-forwarding daemon and client library in the style of IBM's CIOD
//! and Argonne's ZOID, extended with the two optimizations the paper
//! proposes (§IV):
//!
//! 1. **I/O scheduling** — instead of every client handler executing its
//!    own I/O (one thread per compute node, contending for the I/O node's
//!    few cores), handlers enqueue tasks on a shared FIFO work queue
//!    ([`server`]) drained by a small pool of worker threads, each
//!    multiplexing several operations per scheduling pass.
//! 2. **Asynchronous data staging** — data operations are copied into
//!    buffers managed by a buffer management layer ([`bml`]:
//!    power-of-two size classes, bounded total memory, blocking
//!    acquisition) and acknowledged immediately; a descriptor database
//!    ([`descdb`]) tracks in-progress and completed operations per
//!    descriptor and surfaces errors from staged operations on subsequent
//!    calls (§IV).
//!
//! The pieces compose as in the paper:
//!
//! ```text
//!  client (CN)          transport           ION daemon            backend
//!  +----------+   mem channel / TCP   +------------------+   +--------------+
//!  | Client   | --------------------> | handler threads  |-->| file / null /|
//!  | (POSIX-  | <-------------------- |  + [work queue]  |   | mem sink /   |
//!  |  like)   |    Response/Staged    |  + [worker pool] |   | throttled    |
//!  +----------+                       |  + [BML] [descdb]|   +--------------+
//!                                     +------------------+
//! ```
//!
//! Four server modes are provided (see [`server::ForwardingMode`]):
//! `Ciod` (process-per-client semantics: double copy through a
//! shared-memory stand-in), `Zoid` (thread-per-client), `Sched` (work
//! queue + worker pool), and `AsyncStaged` (work queue + BML staging).
//! All four speak the same [`iofwd_proto`] protocol over any
//! [`transport::Conn`].
//!
//! ## Quickstart
//!
//! ```
//! use iofwd::backend::MemSinkBackend;
//! use iofwd::server::{ForwardingMode, IonServer, ServerConfig};
//! use iofwd::transport::mem::MemHub;
//! use iofwd::client::Client;
//! use iofwd_proto::OpenFlags;
//! use std::sync::Arc;
//!
//! let hub = MemHub::new();
//! let backend = Arc::new(MemSinkBackend::new());
//! let server = IonServer::spawn(
//!     Box::new(hub.listener()),
//!     backend.clone(),
//!     ServerConfig::new(ForwardingMode::AsyncStaged { workers: 4, bml_capacity: 1 << 20 }),
//! );
//!
//! let mut client = Client::connect(Box::new(hub.connect()));
//! let fd = client.open("/results.dat", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644).unwrap();
//! client.write(fd, b"hello ion").unwrap();
//! client.close(fd).unwrap();
//! client.shutdown().unwrap();
//! server.shutdown();
//! assert_eq!(backend.contents("/results.dat").unwrap(), b"hello ion");
//! ```

pub mod backend;
pub mod bml;
pub mod client;
pub mod daemon;
pub mod descdb;
pub mod fault;
pub mod file;
pub mod filter;
pub mod server;
pub(crate) mod sync;
pub mod trace;
pub mod transport;

/// Observability: counters/gauges/histograms, per-op lifecycle spans,
/// and the flight-recorder ring (the `iofwd-telemetry` crate).
pub use iofwd_telemetry as telemetry;

pub use client::{Client, ClientError, TraceStats};
pub use server::{ForwardingMode, IonServer, ServerConfig};
pub use trace::{StageBreakdown, TraceExporter};
