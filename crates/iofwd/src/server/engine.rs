//! Request execution shared by every forwarding mode: CIOD proxies, ZOID
//! handler threads, and scheduled workers all funnel through
//! [`Engine::execute`], so mode differences are purely *who runs it and
//! when* — exactly the paper's framing of the design space.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use iofwd_proto::{Errno, Request, Response};
use simcore::rng::SimRng;

use crate::backend::{Backend, BackendObject};
use crate::bml::Bml;
use crate::descdb::{BeginError, DescDb, OpOutcome};
use crate::fault::{is_transient, RetryPolicy};
use crate::filter::{FilterChain, WriteContext};
use crate::server::HotPath;
use crate::telemetry::{OpKind, OpSpan, Telemetry};

/// Telemetry classification of a request. Exhaustive so a new `Request`
/// variant forces a decision about its span kind.
pub(crate) fn op_kind(req: &Request) -> OpKind {
    match req {
        Request::Open { .. } => OpKind::Open,
        Request::Connect { .. } => OpKind::Connect,
        Request::Write { .. } | Request::Pwrite { .. } => OpKind::Write,
        Request::Read { .. } | Request::Pread { .. } => OpKind::Read,
        Request::Fsync { .. } => OpKind::Fsync,
        Request::Close { .. } => OpKind::Close,
        Request::Lseek { .. }
        | Request::Stat { .. }
        | Request::Fstat { .. }
        | Request::Unlink { .. }
        | Request::Ftruncate { .. }
        | Request::Mkdir { .. }
        | Request::Readdir { .. } => OpKind::Meta,
        Request::Shutdown | Request::Stats { .. } => OpKind::Control,
    }
}

/// Wire errno carried by a response, 0 for success shapes. Exhaustive
/// so a new `Response` variant forces a decision about its errno.
pub(crate) fn response_errno(resp: &Response) -> u32 {
    match resp {
        Response::Err { errno } | Response::DeferredErr { errno, .. } => errno.to_wire(),
        Response::Ok { .. } | Response::StatOk { .. } | Response::Staged { .. } => 0,
    }
}

/// Daemon-wide counters.
#[derive(Debug, Default)]
pub struct ServerStats {
    pub requests: AtomicU64,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
    pub staged_ops: AtomicU64,
    pub deferred_errors_reported: AtomicU64,
    /// Bytes removed by in-situ filters before reaching the backend.
    pub bytes_filtered_out: AtomicU64,
}

/// Snapshot of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub requests: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub staged_ops: u64,
    pub deferred_errors_reported: u64,
    pub bytes_filtered_out: u64,
}

/// The daemon's shared state: backend, descriptor database, optional BML.
pub struct Engine {
    pub(crate) backend: Arc<dyn Backend>,
    pub(crate) db: DescDb,
    pub(crate) bml: Option<Bml>,
    pub(crate) stats: ServerStats,
    pub(crate) filters: FilterChain,
    pub(crate) telemetry: Arc<Telemetry>,
    /// Retry policy for transient backend errors. Disabled by default:
    /// embedders (and the daemon CLI) opt in explicitly, so existing
    /// error-propagation semantics are unchanged unless asked for.
    pub(crate) retry: RetryPolicy,
    /// Which data-path variant to run (see [`HotPath`]). `Fast` serves
    /// reads from recycled slab blocks and writes straight from adopted
    /// receive views; `Seed` re-enacts the pre-zero-copy profile as the
    /// paired-benchmark control arm.
    pub(crate) hotpath: HotPath,
    /// Deterministic jitter source for backoff; seeded once so retry
    /// timing is reproducible run-to-run.
    retry_rng: parking_lot::Mutex<SimRng>,
}

impl Engine {
    pub fn new(backend: Arc<dyn Backend>, bml: Option<Bml>) -> Self {
        Self::with_filters(backend, bml, FilterChain::new())
    }

    pub fn with_filters(backend: Arc<dyn Backend>, bml: Option<Bml>, filters: FilterChain) -> Self {
        Self::with_telemetry(backend, bml, filters, Arc::new(Telemetry::disabled()))
    }

    /// Full constructor: the telemetry registry is shared with the
    /// descriptor database (and, by the caller, the BML/queue/transport).
    pub fn with_telemetry(
        backend: Arc<dyn Backend>,
        bml: Option<Bml>,
        filters: FilterChain,
        telemetry: Arc<Telemetry>,
    ) -> Self {
        Engine {
            backend,
            db: DescDb::with_telemetry(telemetry.clone()),
            bml,
            stats: ServerStats::default(),
            filters,
            telemetry,
            retry: RetryPolicy::disabled(),
            hotpath: HotPath::Fast,
            retry_rng: parking_lot::Mutex::new(SimRng::new(0x10f_44d)),
        }
    }

    /// Enable (or reconfigure) retrying of transient backend errors.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Select the data-path variant. Handlers and the reactor read the
    /// knob from here, so no per-request plumbing is needed.
    pub fn set_hotpath(&mut self, hotpath: HotPath) {
        self.hotpath = hotpath;
    }

    pub fn hotpath(&self) -> HotPath {
        self.hotpath
    }

    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Run a backend call under the retry policy: *transient* errnos
    /// ([`is_transient`]) are re-attempted with exponential backoff and
    /// deterministic jitter until the attempt budget or the per-op
    /// deadline runs out. Permanent errnos return immediately — they
    /// keep flowing into the sync reply or the descdb deferred-error
    /// channel exactly as before.
    pub(crate) fn with_retries<T>(
        &self,
        mut f: impl FnMut() -> Result<T, Errno>,
    ) -> Result<T, Errno> {
        let mut attempt = 1u32;
        let started = Instant::now();
        loop {
            match f() {
                Ok(v) => return Ok(v),
                Err(e) if !is_transient(e) || !self.retry.enabled() => return Err(e),
                Err(e) => {
                    if attempt >= self.retry.max_attempts
                        || started.elapsed() >= self.retry.op_deadline
                    {
                        if self.telemetry.enabled() {
                            self.telemetry.retries_exhausted.inc();
                        }
                        return Err(e);
                    }
                    let backoff = {
                        let mut rng = self.retry_rng.lock();
                        self.retry.backoff(attempt, &mut rng)
                    };
                    if self.telemetry.enabled() {
                        self.telemetry.retries_attempted.inc();
                    }
                    std::thread::sleep(backoff);
                    attempt += 1;
                }
            }
        }
    }

    /// Write all of `data`, continuing after POSIX-legal short writes
    /// and retrying transient errors per the policy. A device that
    /// accepts zero bytes with data remaining reports `EIO` rather than
    /// spinning.
    pub(crate) fn write_fully(
        &self,
        o: &mut dyn BackendObject,
        offset: Option<u64>,
        data: &[u8],
    ) -> Result<(), Errno> {
        let mut written = 0usize;
        while written < data.len() {
            // Positional writes continue at offset+written; cursor
            // writes continue at the cursor the short write advanced.
            let at = offset.map(|base| base + written as u64);
            let n = self.with_retries(|| o.write_at(at, &data[written..]))? as usize;
            if n == 0 {
                return Err(Errno::Io);
            }
            written += n;
        }
        Ok(())
    }

    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.stats.requests.load(Ordering::Relaxed),
            bytes_in: self.stats.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.stats.bytes_out.load(Ordering::Relaxed),
            staged_ops: self.stats.staged_ops.load(Ordering::Relaxed),
            deferred_errors_reported: self.stats.deferred_errors_reported.load(Ordering::Relaxed),
            bytes_filtered_out: self.stats.bytes_filtered_out.load(Ordering::Relaxed),
        }
    }

    pub fn descriptor_db(&self) -> &DescDb {
        &self.db
    }

    pub fn bml(&self) -> Option<&Bml> {
        self.bml.as_ref()
    }

    /// [`Engine::execute`] bracketed with backend-stage timestamps and
    /// outcome/byte accounting on the caller's lifecycle span.
    pub fn execute_timed(
        &self,
        req: &Request,
        data: &Bytes,
        span: &mut OpSpan,
    ) -> (Response, Bytes) {
        span.backend_start_ns = self.telemetry.now_ns();
        let (resp, out) = self.execute(req, data);
        span.backend_done_ns = self.telemetry.now_ns();
        span.ok = !matches!(resp, Response::Err { .. } | Response::DeferredErr { .. });
        span.errno = response_errno(&resp);
        span.bytes = span.bytes.max(out.len() as u64);
        (resp, out)
    }

    /// Execute a request to completion and produce the response. `data`
    /// is the frame payload (write contents). Returns the response and
    /// any response payload (read contents).
    pub fn execute(&self, req: &Request, data: &Bytes) -> (Response, Bytes) {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_in
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        match req {
            Request::Open { path, flags, mode } => match self
                .with_retries(|| self.backend.open(path, *flags, *mode))
                .and_then(|obj| self.db.insert(obj, path))
            {
                Ok(fd) => (Response::Ok { ret: fd.0 as i64 }, Bytes::new()),
                Err(e) => (Response::Err { errno: e }, Bytes::new()),
            },
            Request::Connect { host, port } => match self
                .with_retries(|| self.backend.connect(host, *port))
                .and_then(|obj| self.db.insert(obj, &format!("{host}:{port}")))
            {
                Ok(fd) => (Response::Ok { ret: fd.0 as i64 }, Bytes::new()),
                Err(e) => (Response::Err { errno: e }, Bytes::new()),
            },
            Request::Write { fd, len } => self.data_write(*fd, None, data, *len),
            Request::Pwrite { fd, offset, len } => self.data_write(*fd, Some(*offset), data, *len),
            Request::Read { fd, len } => self.data_read(*fd, None, *len),
            Request::Pread { fd, offset, len } => self.data_read(*fd, Some(*offset), *len),
            Request::Lseek { fd, offset, whence } => match self.db.object(*fd) {
                Ok(obj) => {
                    // Seeks are ordered against staged writes: a staged
                    // cursor write consumes the object cursor when the
                    // worker executes it, so a seek overtaking it would
                    // move the cursor out from under the write.
                    if let Err(e) = self.db.wait_idle(*fd) {
                        return (Response::Err { errno: e }, Bytes::new());
                    }
                    match obj.lock().seek(*offset, *whence) {
                        Ok(pos) => (Response::Ok { ret: pos as i64 }, Bytes::new()),
                        Err(e) => (Response::Err { errno: e }, Bytes::new()),
                    }
                }
                Err(e) => (Response::Err { errno: e }, Bytes::new()),
            },
            Request::Fsync { fd } => self.fsync(*fd),
            Request::Close { fd } => self.close(*fd),
            Request::Stat { path } => match self.backend.stat(path) {
                Ok(st) => (Response::StatOk { st }, Bytes::new()),
                Err(e) => (Response::Err { errno: e }, Bytes::new()),
            },
            Request::Fstat { fd } => match self.db.object(*fd) {
                Ok(obj) => match obj.lock().fstat() {
                    Ok(st) => (Response::StatOk { st }, Bytes::new()),
                    Err(e) => (Response::Err { errno: e }, Bytes::new()),
                },
                Err(e) => (Response::Err { errno: e }, Bytes::new()),
            },
            Request::Unlink { path } => match self.backend.unlink(path) {
                Ok(()) => (Response::Ok { ret: 0 }, Bytes::new()),
                Err(e) => (Response::Err { errno: e }, Bytes::new()),
            },
            Request::Ftruncate { fd, len } => match self.db.object(*fd) {
                Ok(obj) => {
                    // Truncation is ordered against staged writes.
                    if let Err(e) = self.db.wait_idle(*fd) {
                        return (Response::Err { errno: e }, Bytes::new());
                    }
                    match obj.lock().truncate(*len) {
                        Ok(()) => (Response::Ok { ret: 0 }, Bytes::new()),
                        Err(e) => (Response::Err { errno: e }, Bytes::new()),
                    }
                }
                Err(e) => (Response::Err { errno: e }, Bytes::new()),
            },
            Request::Mkdir { path, mode } => match self.backend.mkdir(path, *mode) {
                Ok(()) => (Response::Ok { ret: 0 }, Bytes::new()),
                Err(e) => (Response::Err { errno: e }, Bytes::new()),
            },
            Request::Readdir { path } => match self.backend.readdir(path) {
                Ok(names) => {
                    let payload = iofwd_proto::encode_dirents(&names);
                    self.stats
                        .bytes_out
                        .fetch_add(payload.len() as u64, Ordering::Relaxed);
                    (
                        Response::Ok {
                            ret: names.len() as i64,
                        },
                        payload,
                    )
                }
                Err(e) => (Response::Err { errno: e }, Bytes::new()),
            },
            Request::Shutdown => (Response::Ok { ret: 0 }, Bytes::new()),
            // Stats queries are answered at the transport layer (off
            // the data path, before any enqueue); one reaching the
            // engine is a routing bug, reported rather than masked.
            Request::Stats { .. } => (
                Response::Err {
                    errno: Errno::Inval,
                },
                Bytes::new(),
            ),
        }
    }

    fn data_write(
        &self,
        fd: iofwd_proto::Fd,
        offset: Option<u64>,
        data: &Bytes,
        declared_len: u64,
    ) -> (Response, Bytes) {
        if declared_len != data.len() as u64 {
            return (
                Response::Err {
                    errno: Errno::Inval,
                },
                Bytes::new(),
            );
        }
        let (op, obj) = match self.db.begin_op(fd) {
            Ok(v) => v,
            Err(e) => return (self.begin_error_response(e), Bytes::new()),
        };
        let declared = data.len() as u64;
        let filtered = match self.filter_write(fd, offset, data.clone()) {
            Some(d) => d,
            None => {
                // Consumed by an in-situ filter: the client sees a full
                // write, nothing reaches the backend.
                self.db.finish_op(fd, op, OpOutcome::Ok);
                return (
                    Response::Ok {
                        ret: declared as i64,
                    },
                    Bytes::new(),
                );
            }
        };
        let result = {
            let mut o = obj.lock();
            self.write_fully(&mut **o, offset, &filtered)
        };
        match result {
            Ok(()) => {
                self.db.finish_op(fd, op, OpOutcome::Ok);
                // Report the *application's* byte count, not the
                // post-filter count: filtering is transparent.
                (
                    Response::Ok {
                        ret: declared as i64,
                    },
                    Bytes::new(),
                )
            }
            Err(e) => {
                // Synchronous path: report immediately; nothing deferred.
                self.db.finish_op(fd, op, OpOutcome::Ok);
                (Response::Err { errno: e }, Bytes::new())
            }
        }
    }

    /// Run the in-situ filter chain over a write's payload. `None` means
    /// the data was consumed on the ION.
    pub(crate) fn filter_write(
        &self,
        fd: iofwd_proto::Fd,
        offset: Option<u64>,
        data: Bytes,
    ) -> Option<Bytes> {
        if self.filters.is_empty() {
            return Some(data);
        }
        // A descriptor cannot be removed while an operation is in flight
        // (close barriers on wait_idle), so the origin is always
        // available; fail open (pass the data through) if it ever is not.
        let Ok(origin) = self.db.origin(fd) else {
            return Some(data);
        };
        let before = data.len();
        let out = self.filters.apply(
            WriteContext {
                path: &origin,
                offset,
            },
            data,
        );
        let after = out.as_ref().map_or(0, |d| d.len());
        if after < before {
            self.stats
                .bytes_filtered_out
                .fetch_add((before - after) as u64, Ordering::Relaxed);
        }
        out
    }

    /// Execute a staged write on behalf of a worker: filter, write,
    /// record the outcome in the descriptor database. Returns the
    /// outcome so the worker can finish the op's lifecycle span.
    pub fn execute_staged_write(
        &self,
        fd: iofwd_proto::Fd,
        op: iofwd_proto::OpId,
        offset: Option<u64>,
        data: &[u8],
    ) -> OpOutcome {
        // With no filters to observe an owned payload the staging
        // buffer streams straight to the backend; materialising a copy
        // here is pure overhead, kept only for the Seed control arm.
        let outcome = if self.filters.is_empty() && self.hotpath == HotPath::Fast {
            match self.db.object(fd) {
                Ok(obj) => {
                    let res = {
                        let mut o = obj.lock();
                        self.write_fully(&mut **o, offset, data)
                    };
                    match res {
                        Ok(()) => OpOutcome::Ok,
                        Err(e) => OpOutcome::Failed(e),
                    }
                }
                Err(e) => OpOutcome::Failed(e),
            }
        } else {
            if self.telemetry.enabled() && !data.is_empty() {
                self.telemetry.hotpath_alloc_bytes.add(data.len() as u64);
            }
            match self.filter_write(fd, offset, Bytes::copy_from_slice(data)) {
                None => OpOutcome::Ok, // consumed in situ
                Some(filtered) => match self.db.object(fd) {
                    Ok(obj) => {
                        let res = {
                            let mut o = obj.lock();
                            self.write_fully(&mut **o, offset, &filtered)
                        };
                        match res {
                            Ok(()) => OpOutcome::Ok,
                            Err(e) => OpOutcome::Failed(e),
                        }
                    }
                    Err(e) => OpOutcome::Failed(e),
                },
            }
        };
        self.db.finish_op(fd, op, outcome);
        outcome
    }

    /// Whether staged writes may be merged into vectored batches.
    /// A non-empty filter chain sees writes one at a time, so the
    /// coalescing layer stands down rather than change what filters
    /// observe.
    pub fn coalescible(&self) -> bool {
        self.filters.is_empty()
    }

    /// Execute a batch of offset-contiguous staged writes on one
    /// descriptor as a single vectored backend operation, fanning the
    /// outcome back per constituent: parts fully covered by the bytes
    /// the backend accepted succeed; the part containing the shortfall
    /// and every later part fail with the batch's errno. Every part's
    /// outcome is recorded in the descriptor database in batch order,
    /// so deferred-error attribution (first error wins) lands on the
    /// same op as serial execution against a backend whose errors are
    /// positional.
    ///
    /// `base` is the first part's offset (`None` for a cursor chain —
    /// short writes then resume at the cursor the backend advanced).
    /// Parts must be contiguous: part *i+1* starts where part *i*
    /// ends. With a non-empty filter chain (see
    /// [`Engine::coalescible`]) the batch degrades to per-part serial
    /// execution so filter semantics are unchanged.
    pub fn execute_coalesced_write(
        &self,
        fd: iofwd_proto::Fd,
        base: Option<u64>,
        parts: &[(iofwd_proto::OpId, &[u8])],
    ) -> Vec<OpOutcome> {
        if !self.filters.is_empty() {
            // Reconstruct each part's own offset from the chain shape.
            let mut at = base;
            return parts
                .iter()
                .map(|&(op, data)| {
                    let outcome = self.execute_staged_write(fd, op, at, data);
                    at = at.map(|o| o + data.len() as u64);
                    outcome
                })
                .collect();
        }
        let total: usize = parts.iter().map(|(_, d)| d.len()).sum();
        let mut written = 0usize;
        let mut failure = None;
        match self.db.object(fd) {
            Ok(obj) => {
                let mut o = obj.lock();
                while written < total && failure.is_none() {
                    // Rebuild the remaining iovec: drop fully-written
                    // parts, slice the one the short write split.
                    let mut bufs = Vec::with_capacity(parts.len());
                    let mut start = 0usize;
                    for (_, d) in parts {
                        let end = start + d.len();
                        if end > written && !d.is_empty() {
                            bufs.push(&d[written.saturating_sub(start).min(d.len())..]);
                        }
                        start = end;
                    }
                    let at = base.map(|b| b + written as u64);
                    match self.with_retries(|| o.write_vectored_at(at, &bufs)) {
                        // A device accepting zero bytes with data
                        // remaining is an error, as in write_fully.
                        Ok(0) => failure = Some(Errno::Io),
                        Ok(n) => written += n as usize,
                        Err(e) => failure = Some(e),
                    }
                }
            }
            Err(e) => failure = Some(e),
        }
        // Fan the batch outcome back out per constituent op.
        let mut out = Vec::with_capacity(parts.len());
        let mut start = 0usize;
        for &(op, d) in parts {
            let end = start + d.len();
            let outcome = match failure {
                // Covered parts moved all their bytes: full success,
                // even when a later part made the batch go short.
                None => OpOutcome::Ok,
                Some(_) if end <= written => OpOutcome::Ok,
                Some(e) => OpOutcome::Failed(e),
            };
            self.db.finish_op(fd, op, outcome);
            out.push(outcome);
            start = end;
        }
        out
    }

    fn data_read(&self, fd: iofwd_proto::Fd, offset: Option<u64>, len: u64) -> (Response, Bytes) {
        let (op, obj) = match self.db.begin_op(fd) {
            Ok(v) => v,
            Err(e) => return (self.begin_error_response(e), Bytes::new()),
        };
        // Fast path: serve the read out of a recycled BML slab block —
        // the backend fills it in place and the reply payload is a
        // refcounted view of it, so no per-op Vec exists. Falls back to
        // the allocating path when the BML is absent, saturated, or the
        // request exceeds its largest size class.
        let slab = if self.hotpath == HotPath::Fast && len > 0 {
            self.bml.as_ref().and_then(|b| b.try_acquire(len as usize))
        } else {
            None
        };
        if let Some(mut buf) = slab {
            let result = {
                let mut o = obj.lock();
                self.with_retries(|| o.read_into(offset, buf.as_mut_slice()))
            };
            self.db.finish_op(fd, op, OpOutcome::Ok);
            return match result {
                Ok(n) => {
                    buf.truncate(n as usize);
                    self.stats.bytes_out.fetch_add(n, Ordering::Relaxed);
                    (Response::Ok { ret: n as i64 }, buf.into_bytes())
                }
                Err(e) => (Response::Err { errno: e }, Bytes::new()),
            };
        }
        let result = {
            let mut o = obj.lock();
            self.with_retries(|| o.read_at(offset, len))
        };
        self.db.finish_op(fd, op, OpOutcome::Ok);
        match result {
            Ok(buf) => {
                if self.telemetry.enabled() && !buf.is_empty() {
                    self.telemetry.hotpath_alloc_bytes.add(buf.len() as u64);
                }
                self.stats
                    .bytes_out
                    .fetch_add(buf.len() as u64, Ordering::Relaxed);
                (
                    Response::Ok {
                        ret: buf.len() as i64,
                    },
                    Bytes::from(buf),
                )
            }
            Err(e) => (Response::Err { errno: e }, Bytes::new()),
        }
    }

    /// `fsync` is a staging barrier: wait for in-flight staged operations
    /// on the descriptor, surface any deferred error, then flush.
    fn fsync(&self, fd: iofwd_proto::Fd) -> (Response, Bytes) {
        if let Err(e) = self.db.wait_idle(fd) {
            return (Response::Err { errno: e }, Bytes::new());
        }
        if let Some((op, errno)) = self.db.take_error(fd) {
            self.stats
                .deferred_errors_reported
                .fetch_add(1, Ordering::Relaxed);
            return (Response::DeferredErr { op, errno }, Bytes::new());
        }
        match self.db.object(fd) {
            Ok(obj) => {
                let res = {
                    let mut o = obj.lock();
                    self.with_retries(|| o.sync())
                };
                match res {
                    Ok(()) => (Response::Ok { ret: 0 }, Bytes::new()),
                    Err(e) => (Response::Err { errno: e }, Bytes::new()),
                }
            }
            Err(e) => (Response::Err { errno: e }, Bytes::new()),
        }
    }

    /// `close` barriers like fsync, then retires the descriptor. A
    /// deferred error is still reported — the close itself succeeds, as
    /// POSIX close does after a failed async write-back.
    fn close(&self, fd: iofwd_proto::Fd) -> (Response, Bytes) {
        if let Err(e) = self.db.begin_close(fd) {
            return (Response::Err { errno: e }, Bytes::new());
        }
        if let Err(e) = self.db.wait_idle(fd) {
            return (Response::Err { errno: e }, Bytes::new());
        }
        match self.db.remove(fd) {
            Ok((obj, pending)) => {
                let _ = obj.lock().sync();
                if let Some((op, errno)) = pending {
                    self.stats
                        .deferred_errors_reported
                        .fetch_add(1, Ordering::Relaxed);
                    (Response::DeferredErr { op, errno }, Bytes::new())
                } else {
                    (Response::Ok { ret: 0 }, Bytes::new())
                }
            }
            Err(e) => (Response::Err { errno: e }, Bytes::new()),
        }
    }

    fn begin_error_response(&self, e: BeginError) -> Response {
        match e {
            BeginError::Sync(errno) => Response::Err { errno },
            BeginError::Deferred { op, errno } => {
                self.stats
                    .deferred_errors_reported
                    .fetch_add(1, Ordering::Relaxed);
                Response::DeferredErr { op, errno }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemSinkBackend;
    use iofwd_proto::{Fd, OpenFlags};

    fn engine() -> (Engine, Arc<MemSinkBackend>) {
        let be = Arc::new(MemSinkBackend::new());
        (Engine::new(be.clone(), None), be)
    }

    fn open(e: &Engine, path: &str) -> Fd {
        let (resp, _) = e.execute(
            &Request::Open {
                path: path.into(),
                flags: OpenFlags::RDWR | OpenFlags::CREATE,
                mode: 0o644,
            },
            &Bytes::new(),
        );
        match resp {
            Response::Ok { ret } => Fd(ret as u32),
            other => panic!("open failed: {other:?}"),
        }
    }

    #[test]
    fn open_write_read_close() {
        let (e, be) = engine();
        let fd = open(&e, "/a");
        let (resp, _) = e.execute(
            &Request::Write { fd, len: 5 },
            &Bytes::from_static(b"hello"),
        );
        assert_eq!(resp, Response::Ok { ret: 5 });
        let (resp, data) = e.execute(
            &Request::Pread {
                fd,
                offset: 0,
                len: 5,
            },
            &Bytes::new(),
        );
        assert_eq!(resp, Response::Ok { ret: 5 });
        assert_eq!(&data[..], b"hello");
        let (resp, _) = e.execute(&Request::Close { fd }, &Bytes::new());
        assert_eq!(resp, Response::Ok { ret: 0 });
        assert_eq!(be.contents("/a").unwrap(), b"hello");
        let snap = e.stats();
        assert_eq!(snap.requests, 4);
        assert_eq!(snap.bytes_in, 5);
        assert_eq!(snap.bytes_out, 5);
    }

    #[test]
    fn length_mismatch_rejected() {
        let (e, _) = engine();
        let fd = open(&e, "/m");
        let (resp, _) = e.execute(
            &Request::Write { fd, len: 10 },
            &Bytes::from_static(b"shrt"),
        );
        assert_eq!(
            resp,
            Response::Err {
                errno: Errno::Inval
            }
        );
    }

    #[test]
    fn bad_fd_reported() {
        let (e, _) = engine();
        let (resp, _) = e.execute(&Request::Fsync { fd: Fd(77) }, &Bytes::new());
        assert_eq!(resp, Response::Err { errno: Errno::BadF });
        let (resp, _) = e.execute(&Request::Read { fd: Fd(77), len: 1 }, &Bytes::new());
        assert_eq!(resp, Response::Err { errno: Errno::BadF });
    }

    #[test]
    fn stat_paths() {
        let (e, _) = engine();
        let fd = open(&e, "/s");
        e.execute(&Request::Write { fd, len: 3 }, &Bytes::from_static(b"abc"));
        let (resp, _) = e.execute(&Request::Stat { path: "/s".into() }, &Bytes::new());
        match resp {
            Response::StatOk { st } => assert_eq!(st.size, 3),
            other => panic!("{other:?}"),
        }
        let (resp, _) = e.execute(&Request::Fstat { fd }, &Bytes::new());
        match resp {
            Response::StatOk { st } => assert_eq!(st.size, 3),
            other => panic!("{other:?}"),
        }
        let (resp, _) = e.execute(&Request::Unlink { path: "/s".into() }, &Bytes::new());
        assert_eq!(resp, Response::Ok { ret: 0 });
        let (resp, _) = e.execute(&Request::Stat { path: "/s".into() }, &Bytes::new());
        assert_eq!(
            resp,
            Response::Err {
                errno: Errno::NoEnt
            }
        );
    }

    #[test]
    fn double_close_is_badf() {
        let (e, _) = engine();
        let fd = open(&e, "/c");
        assert_eq!(
            e.execute(&Request::Close { fd }, &Bytes::new()).0,
            Response::Ok { ret: 0 }
        );
        assert_eq!(
            e.execute(&Request::Close { fd }, &Bytes::new()).0,
            Response::Err { errno: Errno::BadF }
        );
    }

    #[test]
    fn lseek_roundtrip() {
        let (e, _) = engine();
        let fd = open(&e, "/l");
        e.execute(&Request::Write { fd, len: 4 }, &Bytes::from_static(b"wxyz"));
        let (resp, _) = e.execute(
            &Request::Lseek {
                fd,
                offset: 1,
                whence: iofwd_proto::Whence::Set,
            },
            &Bytes::new(),
        );
        assert_eq!(resp, Response::Ok { ret: 1 });
        let (_, data) = e.execute(&Request::Read { fd, len: 2 }, &Bytes::new());
        assert_eq!(&data[..], b"xy");
    }

    use crate::backend::BackendObject;
    use iofwd_proto::{FileStat, Whence};

    /// Position-sticky faulty backend for coalescing tests: every
    /// positional write at or past `limit` fails with `errno`, and any
    /// single call moves at most `cap` bytes (a POSIX short write).
    /// Being a function of file position (not call count), serial and
    /// coalesced execution must observe identical per-op outcomes.
    struct StickyLimit {
        inner: Arc<MemSinkBackend>,
        cap: usize,
        limit: u64,
        errno: Errno,
    }

    struct StickyObj {
        inner: Box<dyn crate::backend::BackendObject>,
        cap: usize,
        limit: u64,
        errno: Errno,
    }

    impl BackendObject for StickyObj {
        fn write_at(&mut self, offset: Option<u64>, data: &[u8]) -> Result<u64, Errno> {
            let off = offset.expect("sticky test backend is positional-only");
            if off >= self.limit {
                return Err(self.errno);
            }
            let n = data.len().min(self.cap).min((self.limit - off) as usize);
            self.inner.write_at(offset, &data[..n])
        }

        fn read_at(&mut self, offset: Option<u64>, len: u64) -> Result<Vec<u8>, Errno> {
            self.inner.read_at(offset, len)
        }

        fn seek(&mut self, offset: i64, whence: Whence) -> Result<u64, Errno> {
            self.inner.seek(offset, whence)
        }

        fn sync(&mut self) -> Result<(), Errno> {
            self.inner.sync()
        }

        fn fstat(&mut self) -> Result<FileStat, Errno> {
            self.inner.fstat()
        }
    }

    impl Backend for StickyLimit {
        fn open(
            &self,
            path: &str,
            flags: OpenFlags,
            mode: u32,
        ) -> Result<Box<dyn BackendObject>, Errno> {
            Ok(Box::new(StickyObj {
                inner: self.inner.open(path, flags, mode)?,
                cap: self.cap,
                limit: self.limit,
                errno: self.errno,
            }))
        }

        fn stat(&self, path: &str) -> Result<FileStat, Errno> {
            self.inner.stat(path)
        }

        fn unlink(&self, path: &str) -> Result<(), Errno> {
            self.inner.unlink(path)
        }
    }

    fn begin(e: &Engine, fd: Fd) -> iofwd_proto::OpId {
        match e.descriptor_db().begin_op(fd) {
            Ok((op, _)) => op,
            Err(err) => panic!("begin_op failed: {err:?}"),
        }
    }

    #[test]
    fn coalesced_write_success_and_cursor_chain() {
        let (e, be) = engine();
        let fd = open(&e, "/co");
        let (a, b, c) = (begin(&e, fd), begin(&e, fd), begin(&e, fd));
        // Positional chain [2, 8).
        let parts: Vec<(iofwd_proto::OpId, &[u8])> = vec![(a, b"AB"), (b, b"CDE"), (c, b"F")];
        let outcomes = e.execute_coalesced_write(fd, Some(2), &parts);
        assert_eq!(outcomes, vec![OpOutcome::Ok; 3]);
        assert_eq!(be.contents("/co").unwrap(), b"\0\0ABCDEF");
        // Cursor chain: the engine-held cursor sits at 0 (positional
        // writes leave it), so a None-base batch lands from there.
        let (d, g) = (begin(&e, fd), begin(&e, fd));
        let outcomes = e.execute_coalesced_write(fd, None, &[(d, b"xy"), (g, b"z")]);
        assert_eq!(outcomes, vec![OpOutcome::Ok; 2]);
        assert_eq!(&be.contents("/co").unwrap()[..3], b"xyz");
        // No deferred error: fsync is clean.
        assert_eq!(
            e.execute(&Request::Fsync { fd }, &Bytes::new()).0,
            Response::Ok { ret: 0 }
        );
    }

    #[test]
    fn coalesced_short_writes_complete_via_continuation() {
        // cap=3 forces every backend call short; no error position.
        let be = Arc::new(MemSinkBackend::new());
        let sticky = Arc::new(StickyLimit {
            inner: be.clone(),
            cap: 3,
            limit: u64::MAX,
            errno: Errno::Io,
        });
        let e = Engine::new(sticky, None);
        let fd = open(&e, "/short");
        let (a, b) = (begin(&e, fd), begin(&e, fd));
        let outcomes = e.execute_coalesced_write(fd, Some(0), &[(a, b"01234"), (b, b"56789")]);
        assert_eq!(outcomes, vec![OpOutcome::Ok; 2]);
        assert_eq!(be.contents("/short").unwrap(), b"0123456789");
    }

    #[test]
    fn coalesced_error_fans_out_to_uncovered_ops_only() {
        // Writes at/past byte 6 fail: part a ([0,4)) is covered, part b
        // ([4,8)) straddles, part c ([8,10)) is untouched.
        let be = Arc::new(MemSinkBackend::new());
        let sticky = Arc::new(StickyLimit {
            inner: be.clone(),
            cap: usize::MAX,
            limit: 6,
            errno: Errno::NoSpc,
        });
        let e = Engine::new(sticky, None);
        let fd = open(&e, "/fan");
        let (a, b, c) = (begin(&e, fd), begin(&e, fd), begin(&e, fd));
        let outcomes =
            e.execute_coalesced_write(fd, Some(0), &[(a, b"AAAA"), (b, b"BBBB"), (c, b"CC")]);
        assert_eq!(
            outcomes,
            vec![
                OpOutcome::Ok,
                OpOutcome::Failed(Errno::NoSpc),
                OpOutcome::Failed(Errno::NoSpc),
            ]
        );
        // The prefix the device accepted is on disk.
        assert_eq!(be.contents("/fan").unwrap(), b"AAAABB");
        // Deferred-error attribution: first failing op, its errno.
        match e.execute(&Request::Fsync { fd }, &Bytes::new()).0 {
            Response::DeferredErr { op, errno } => {
                assert_eq!(op, b);
                assert_eq!(errno, Errno::NoSpc);
            }
            other => panic!("expected deferred error, got {other:?}"),
        }
    }

    #[test]
    fn coalesced_write_on_dead_descriptor_fails_every_part() {
        let (e, _) = engine();
        let fd = open(&e, "/dead");
        let (a, b) = (begin(&e, fd), begin(&e, fd));
        // Retire the object out from under the batch.
        e.descriptor_db().finish_op(fd, a, OpOutcome::Ok);
        e.descriptor_db().finish_op(fd, b, OpOutcome::Ok);
        e.execute(&Request::Close { fd }, &Bytes::new());
        let (x, y) = (iofwd_proto::OpId(900), iofwd_proto::OpId(901));
        let outcomes = e.execute_coalesced_write(fd, Some(0), &[(x, b"a"), (y, b"b")]);
        assert_eq!(
            outcomes,
            vec![
                OpOutcome::Failed(Errno::BadF),
                OpOutcome::Failed(Errno::BadF),
            ]
        );
    }
}
