//! Event-loop health watchdog: a sampling thread that trips on
//! configured SLOs and dumps the flight recorder.
//!
//! The introspection plane answers "what is happening"; the watchdog
//! answers "something stopped happening" without anyone asking. Every
//! [`WatchdogConfig::interval`] it samples three stall signals:
//!
//! - **Queue head-of-line age** ([`WorkQueue::oldest_enqueue_ns`]): the
//!   oldest item still parked in the work queue. A backend that hangs
//!   (injected `delay_us` faults, a dead filesystem) shows up here
//!   first, while throughput counters just flatline silently.
//! - **Loop lag** ([`Telemetry::loop_heartbeats`]): how long since the
//!   slowest reactor event loop completed a lap. A loop stuck in a
//!   blocking call stops beating even when the queue is empty.
//! - **Persistent write-buffer high water** (`wbuf_bytes` gauge): reply
//!   bytes parked for clients that stopped reading. One sample is
//!   normal backpressure; [`WatchdogConfig::wbuf_strikes`] consecutive
//!   samples over the limit means the condition is stuck.
//!
//! A trip bumps `watchdog_trips`, emits one structured stderr line
//! (`iofwd-watchdog: trip reason=... observed=... limit=...`), and
//! appends a flight-recorder dump to [`WatchdogConfig::dump_path`] so
//! the ops in flight at the moment of the stall are preserved. Each
//! reason latches: it re-arms only after its signal drops back under
//! the limit, so a wedged daemon logs one line per stall, not one per
//! sample.

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use super::queue::WorkQueue;
use crate::telemetry::{snapshot, Telemetry};

/// SLO thresholds and plumbing for [`spawn`]. Parsed from the daemon's
/// `--watchdog key=value,...` flag by [`WatchdogConfig::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Sampling period.
    pub interval: Duration,
    /// Trip once the oldest queued item has waited this long
    /// (zero disables the check).
    pub max_queue_age: Duration,
    /// Trip once the slowest registered event loop has gone this long
    /// without completing a lap (zero disables the check).
    pub max_loop_lag: Duration,
    /// Trip once `wbuf_bytes` has stayed above this for
    /// `wbuf_strikes` consecutive samples (zero disables the check).
    pub wbuf_limit: u64,
    /// Consecutive over-limit samples before a wbuf trip.
    pub wbuf_strikes: u32,
    /// Where trip dumps (reason line + flight recorder) are appended;
    /// `None` keeps dumps on stderr only.
    pub dump_path: Option<PathBuf>,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            interval: Duration::from_millis(100),
            max_queue_age: Duration::from_secs(2),
            max_loop_lag: Duration::from_secs(1),
            wbuf_limit: 0,
            wbuf_strikes: 5,
            dump_path: None,
        }
    }
}

impl WatchdogConfig {
    /// Parse the `--watchdog` flag grammar: comma-separated `key=value`
    /// pairs over the defaults. Keys: `interval_ms`, `queue_age_ms`,
    /// `loop_lag_ms`, `wbuf_bytes`, `wbuf_strikes`, `dump=<path>`.
    /// The literal `on` (or an empty string) takes every default.
    pub fn parse(spec: &str) -> Result<WatchdogConfig, String> {
        let mut cfg = WatchdogConfig::default();
        let spec = spec.trim();
        if spec.is_empty() || spec == "on" {
            return Ok(cfg);
        }
        for pair in spec.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("watchdog: expected key=value, got {pair:?}"))?;
            let ms = |v: &str| -> Result<Duration, String> {
                v.parse::<u64>()
                    .map(Duration::from_millis)
                    .map_err(|_| format!("watchdog: bad milliseconds in {pair:?}"))
            };
            match key.trim() {
                "interval_ms" => cfg.interval = ms(value)?.max(Duration::from_millis(1)),
                "queue_age_ms" => cfg.max_queue_age = ms(value)?,
                "loop_lag_ms" => cfg.max_loop_lag = ms(value)?,
                "wbuf_bytes" => {
                    cfg.wbuf_limit = value
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("watchdog: bad byte count in {pair:?}"))?;
                }
                "wbuf_strikes" => {
                    cfg.wbuf_strikes = value
                        .trim()
                        .parse::<u32>()
                        .map_err(|_| format!("watchdog: bad strike count in {pair:?}"))?
                        .max(1);
                }
                "dump" => cfg.dump_path = Some(PathBuf::from(value.trim())),
                other => return Err(format!("watchdog: unknown key {other:?}")),
            }
        }
        Ok(cfg)
    }
}

/// Per-reason latch: fires on the rising edge, re-arms on the falling
/// one.
#[derive(Default)]
struct Latch {
    tripped: bool,
}

impl Latch {
    fn edge(&mut self, firing: bool) -> bool {
        let rising = firing && !self.tripped;
        self.tripped = firing;
        rising
    }
}

/// A running watchdog. Dropping without
/// [`shutdown`](WatchdogHandle::shutdown) detaches the sampler thread.
pub struct WatchdogHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl WatchdogHandle {
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

struct Sampler {
    cfg: WatchdogConfig,
    telemetry: Arc<Telemetry>,
    queue: Option<Arc<WorkQueue>>,
    queue_latch: Latch,
    loop_latch: Latch,
    wbuf_latch: Latch,
    wbuf_over: u32,
}

impl Sampler {
    fn sample(&mut self) {
        let now = self.telemetry.now_ns();

        let queue_age_ns = self
            .queue
            .as_ref()
            .and_then(|q| q.oldest_enqueue_ns())
            .filter(|&e| e > 0)
            .map_or(0, |e| now.saturating_sub(e));
        let limit = self.cfg.max_queue_age.as_nanos() as u64;
        if self.queue_latch.edge(limit > 0 && queue_age_ns > limit) {
            self.trip("queue_stall", queue_age_ns, limit);
        }

        let lag_ns = if self.telemetry.loop_heartbeats.registered() > 0 {
            self.telemetry.loop_heartbeats.max_lag_ns(now)
        } else {
            0
        };
        let limit = self.cfg.max_loop_lag.as_nanos() as u64;
        if self.loop_latch.edge(limit > 0 && lag_ns > limit) {
            self.trip("loop_stall", lag_ns, limit);
        }

        let wbuf = self.telemetry.wbuf_bytes.get().max(0) as u64;
        if self.cfg.wbuf_limit > 0 && wbuf > self.cfg.wbuf_limit {
            self.wbuf_over = self.wbuf_over.saturating_add(1);
        } else {
            self.wbuf_over = 0;
        }
        if self
            .wbuf_latch
            .edge(self.wbuf_over >= self.cfg.wbuf_strikes)
        {
            self.trip("wbuf_high_water", wbuf, self.cfg.wbuf_limit);
        }
    }

    fn trip(&self, reason: &str, observed: u64, limit: u64) {
        self.telemetry.watchdog_trips.inc();
        let line = format!(
            "iofwd-watchdog: trip reason={reason} observed={observed} limit={limit} \
             trips={} queue_depth={} conns_open={}",
            self.telemetry.watchdog_trips.get(),
            self.telemetry.queue_depth.get(),
            self.telemetry.conns_open.get(),
        );
        eprintln!("{line}");
        let Some(path) = &self.cfg.dump_path else {
            return;
        };
        let dump = snapshot::render_flight(&self.telemetry.flight.snapshot());
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| writeln!(f, "{line}\n{dump}"));
        if let Err(e) = written {
            eprintln!(
                "iofwd-watchdog: flight dump to {} failed: {e}",
                path.display()
            );
        }
    }
}

/// Start the sampler thread. The queue handle is optional so the
/// watchdog still covers loop lag and wbuf pressure in the queueless
/// modes (Ciod/Zoid).
pub fn spawn(
    cfg: WatchdogConfig,
    telemetry: Arc<Telemetry>,
    queue: Option<Arc<WorkQueue>>,
) -> std::io::Result<WatchdogHandle> {
    let stop = Arc::new(AtomicBool::new(false));
    let thread = {
        let stop = stop.clone();
        let mut sampler = Sampler {
            cfg,
            telemetry,
            queue,
            queue_latch: Latch::default(),
            loop_latch: Latch::default(),
            wbuf_latch: Latch::default(),
            wbuf_over: 0,
        };
        std::thread::Builder::new()
            .name("iofwd-watchdog".into())
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    sampler.sample();
                    std::thread::sleep(sampler.cfg.interval);
                }
            })?
    };
    Ok(WatchdogHandle {
        stop,
        thread: Some(thread),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_defaults_and_overrides() {
        assert_eq!(
            WatchdogConfig::parse("on").expect("on"),
            WatchdogConfig::default()
        );
        assert_eq!(
            WatchdogConfig::parse("").expect("empty"),
            WatchdogConfig::default()
        );
        let cfg = WatchdogConfig::parse(
            "interval_ms=50, queue_age_ms=250,loop_lag_ms=500,wbuf_bytes=1048576,\
             wbuf_strikes=3,dump=/tmp/wd.txt",
        )
        .expect("full spec");
        assert_eq!(cfg.interval, Duration::from_millis(50));
        assert_eq!(cfg.max_queue_age, Duration::from_millis(250));
        assert_eq!(cfg.max_loop_lag, Duration::from_millis(500));
        assert_eq!(cfg.wbuf_limit, 1 << 20);
        assert_eq!(cfg.wbuf_strikes, 3);
        assert_eq!(cfg.dump_path, Some(PathBuf::from("/tmp/wd.txt")));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(WatchdogConfig::parse("queue_age_ms").is_err());
        assert!(WatchdogConfig::parse("queue_age_ms=soon").is_err());
        assert!(WatchdogConfig::parse("blink=1").is_err());
    }

    #[test]
    fn latch_fires_on_rising_edge_only() {
        let mut l = Latch::default();
        assert!(!l.edge(false));
        assert!(l.edge(true));
        assert!(!l.edge(true), "held condition must not re-fire");
        assert!(!l.edge(false), "falling edge re-arms silently");
        assert!(l.edge(true), "re-armed latch fires again");
    }

    #[test]
    fn loop_stall_trips_and_recovers() {
        let telemetry = Arc::new(Telemetry::new());
        let slot = telemetry.loop_heartbeats.register(telemetry.now_ns());
        let mut sampler = Sampler {
            cfg: WatchdogConfig {
                max_loop_lag: Duration::from_millis(1),
                max_queue_age: Duration::ZERO,
                ..WatchdogConfig::default()
            },
            telemetry: telemetry.clone(),
            queue: None,
            queue_latch: Latch::default(),
            loop_latch: Latch::default(),
            wbuf_latch: Latch::default(),
            wbuf_over: 0,
        };
        std::thread::sleep(Duration::from_millis(5));
        sampler.sample();
        assert_eq!(telemetry.watchdog_trips.get(), 1);
        sampler.sample();
        assert_eq!(telemetry.watchdog_trips.get(), 1, "latched while stalled");
        // The loop beats again: the latch re-arms, a second stall trips.
        telemetry.loop_heartbeats.beat(slot, telemetry.now_ns());
        sampler.sample();
        std::thread::sleep(Duration::from_millis(5));
        sampler.sample();
        assert_eq!(telemetry.watchdog_trips.get(), 2);
    }

    #[test]
    fn wbuf_trip_requires_consecutive_strikes() {
        let telemetry = Arc::new(Telemetry::new());
        let mut sampler = Sampler {
            cfg: WatchdogConfig {
                wbuf_limit: 100,
                wbuf_strikes: 3,
                max_queue_age: Duration::ZERO,
                max_loop_lag: Duration::ZERO,
                ..WatchdogConfig::default()
            },
            telemetry: telemetry.clone(),
            queue: None,
            queue_latch: Latch::default(),
            loop_latch: Latch::default(),
            wbuf_latch: Latch::default(),
            wbuf_over: 0,
        };
        telemetry.wbuf_bytes.add(500);
        sampler.sample();
        sampler.sample();
        assert_eq!(telemetry.watchdog_trips.get(), 0, "two strikes is not out");
        // An intervening clean sample resets the streak.
        telemetry.wbuf_bytes.add(-500);
        sampler.sample();
        telemetry.wbuf_bytes.add(500);
        sampler.sample();
        sampler.sample();
        assert_eq!(telemetry.watchdog_trips.get(), 0);
        sampler.sample();
        assert_eq!(telemetry.watchdog_trips.get(), 1);
    }
}
