//! The ION daemon: accept loop, per-client handlers, worker pool.
//!
//! [`ForwardingMode`] selects among the four architectures the paper
//! compares (Figure 9's four curves):
//!
//! | mode | handler | executor | client blocked for |
//! |------|---------|----------|--------------------|
//! | `Ciod` | rx thread + proxy per client | proxy (double copy) | whole operation |
//! | `Zoid` | thread per client | the handler itself | whole operation |
//! | `Sched` | thread per client | shared worker pool | whole operation |
//! | `AsyncStaged` | thread per client | shared worker pool | staging copy only |

mod engine;
mod handlers;
pub mod introspect;
mod queue;
mod reactor;
mod staged;
pub mod watchdog;

pub use engine::{Engine, ServerStats, StatsSnapshot};
pub use introspect::IntrospectHandle;
pub use queue::{
    Completion, CompletionSink, QueueDiscipline, ReplyTo, StagedPart, WorkItem, WorkQueue,
};
pub use reactor::{ReactorConfig, ReactorHandle};
pub use staged::FdSerializer;
pub use watchdog::{WatchdogConfig, WatchdogHandle};

use std::io;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use iofwd_proto::{Errno, Response};
use parking_lot::Mutex;

use crate::backend::Backend;
use crate::bml::Bml;
use crate::descdb::OpOutcome;
use crate::fault::RetryPolicy;
use crate::transport::Listener;

/// Which forwarding architecture the daemon runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardingMode {
    /// IBM's CIOD: per-client proxy with a shared-memory copy (§II-B1).
    Ciod,
    /// ZeptoOS ZOID baseline: thread per client executes its own I/O
    /// (§II-B2).
    Zoid,
    /// ZOID + I/O scheduling: shared FIFO work queue + worker pool (§IV).
    Sched { workers: usize },
    /// ZOID + I/O scheduling + asynchronous data staging via the BML
    /// (§IV).
    AsyncStaged { workers: usize, bml_capacity: u64 },
}

impl ForwardingMode {
    pub fn name(&self) -> &'static str {
        match self {
            ForwardingMode::Ciod => "ciod",
            ForwardingMode::Zoid => "zoid",
            ForwardingMode::Sched { .. } => "sched",
            ForwardingMode::AsyncStaged { .. } => "async-staged",
        }
    }

    fn workers(&self) -> usize {
        match self {
            ForwardingMode::Ciod | ForwardingMode::Zoid => 0,
            ForwardingMode::Sched { workers } => *workers,
            ForwardingMode::AsyncStaged { workers, .. } => *workers,
        }
    }
}

/// Hot-path variant, for the zero-copy ablation (DESIGN.md §17).
///
/// `Fast` is the real data path. `Seed` is the paired-benchmark
/// control arm: it re-creates the allocation/copy profile the daemon
/// had before the zero-copy receive path landed (deep-copy out of the
/// receive buffer, stage by acquire+copy, reply to reads from fresh
/// allocations), so `experiments` can measure the win honestly on the
/// same binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HotPath {
    /// Zero-copy: decoded frames stay views into the receive buffer,
    /// staging adopts the payload by reference, reads reply from
    /// recycled slab blocks.
    #[default]
    Fast,
    /// Pre-zero-copy emulation: one deep copy out of the receive
    /// buffer per frame, one staging copy into an acquired BML block,
    /// one fresh allocation per read reply.
    Seed,
}

impl HotPath {
    pub fn name(&self) -> &'static str {
        match self {
            HotPath::Fast => "fast",
            HotPath::Seed => "seed",
        }
    }
}

/// Write-coalescing budgets: how much a worker may merge into a single
/// vectored backend call when it finds offset-contiguous staged writes
/// parked behind the one it dequeued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalesceConfig {
    /// Upper bound on merged payload bytes per batch.
    pub max_bytes: usize,
    /// Upper bound on constituent ops per batch (including the lead).
    pub max_ops: usize,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            max_bytes: 1 << 20,
            max_ops: 16,
        }
    }
}

/// Daemon configuration.
#[derive(Clone)]
pub struct ServerConfig {
    pub mode: ForwardingMode,
    /// How many tasks a worker dequeues per scheduling pass (the paper's
    /// per-thread I/O multiplexing; §IV uses a poll-based event loop).
    pub worker_batch: usize,
    /// Work-queue discipline (the paper uses a single shared FIFO; the
    /// per-worker variant exists for the ablation bench).
    pub queue_discipline: QueueDiscipline,
    /// In-situ filter chain applied to every data write on the ION
    /// (§VII future work: offloaded data filtering / analytics).
    pub filters: crate::filter::FilterChain,
    /// Observability registry shared by every layer of the daemon.
    /// Enabled by default — recording is cheap enough to leave on; swap
    /// in `Telemetry::disabled()` for a zero-overhead null sink.
    pub telemetry: Arc<crate::telemetry::Telemetry>,
    /// Retry policy for transient backend errors (EAGAIN/EIO/ECONNRESET).
    /// Disabled by default: tests and benches see every backend error
    /// exactly once unless they opt in. `iofwdd` enables
    /// [`RetryPolicy::standard`] by default.
    pub retry: RetryPolicy,
    /// Staged-write coalescing budgets; `None` disables merging. On by
    /// default for the worker-pool modes (Sched/AsyncStaged) — the only
    /// modes with a queue for writes to park behind — and off (and
    /// meaningless) for Ciod/Zoid, which execute inline.
    pub coalesce: Option<CoalesceConfig>,
    /// Hot-path variant: the zero-copy path (default) or the
    /// seed-emulation control arm for paired benchmarks.
    pub hotpath: HotPath,
}

impl ServerConfig {
    pub fn new(mode: ForwardingMode) -> Self {
        ServerConfig {
            mode,
            worker_batch: 4,
            queue_discipline: QueueDiscipline::SharedFifo,
            filters: crate::filter::FilterChain::new(),
            telemetry: Arc::new(crate::telemetry::Telemetry::new()),
            retry: RetryPolicy::disabled(),
            coalesce: match mode {
                ForwardingMode::Sched { .. } | ForwardingMode::AsyncStaged { .. } => {
                    Some(CoalesceConfig::default())
                }
                ForwardingMode::Ciod | ForwardingMode::Zoid => None,
            },
            hotpath: HotPath::Fast,
        }
    }

    /// Replace the telemetry registry (e.g. `Telemetry::disabled()`, or
    /// one with a larger flight-recorder capacity).
    pub fn with_telemetry(mut self, telemetry: Arc<crate::telemetry::Telemetry>) -> Self {
        self.telemetry = telemetry;
        self
    }

    pub fn with_worker_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0);
        self.worker_batch = batch;
        self
    }

    pub fn with_queue_discipline(mut self, d: QueueDiscipline) -> Self {
        self.queue_discipline = d;
        self
    }

    /// Attach an in-situ filter chain; filters run on the ION where the
    /// write executes, overlapping application computation.
    pub fn with_filter(mut self, chain: crate::filter::FilterChain) -> Self {
        self.filters = chain;
        self
    }

    /// Retry transient backend errors per `policy` before failing an op.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Override the write-coalescing budgets (`None` disables merging).
    pub fn with_coalescing(mut self, coalesce: Option<CoalesceConfig>) -> Self {
        self.coalesce = coalesce;
        self
    }

    /// Select the hot-path variant (zero-copy vs. seed emulation).
    pub fn with_hotpath(mut self, hotpath: HotPath) -> Self {
        self.hotpath = hotpath;
        self
    }
}

/// A running ION daemon. Dropping without [`IonServer::shutdown`] detaches
/// its threads; call `shutdown` for an orderly join (clients must have
/// disconnected or sent `Request::Shutdown` first).
pub struct IonServer {
    engine: Arc<Engine>,
    queue: Option<Arc<WorkQueue>>,
    serializer: Option<Arc<FdSerializer>>,
    listener: Arc<dyn Listener>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    handler_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    reactor: Option<ReactorHandle>,
    config: ServerConfig,
}

/// What the shutdown drain did with staged writes that were still parked
/// when the deadline forced the worker pool down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Staged writes executed during the drain (within the deadline).
    pub executed: usize,
    /// Staged writes failed with a recorded deferred error (deadline
    /// exhausted before they could run).
    pub deferred: usize,
}

/// Engine + worker-pool plumbing shared by both transports.
struct ServerCore {
    engine: Arc<Engine>,
    queue: Option<Arc<WorkQueue>>,
    serializer: Option<Arc<FdSerializer>>,
    worker_threads: Vec<JoinHandle<()>>,
}

fn build_core(backend: Arc<dyn Backend>, config: &ServerConfig) -> ServerCore {
    let telemetry = config.telemetry.clone();
    let bml = match config.mode {
        ForwardingMode::AsyncStaged { bml_capacity, .. } => {
            Some(Bml::with_telemetry(bml_capacity, telemetry.clone()))
        }
        _ => None,
    };
    // Count backend data-plane traffic only when someone is looking.
    let backend: Arc<dyn Backend> = if telemetry.enabled() {
        Arc::new(crate::backend::Instrumented::new(
            backend,
            telemetry.clone(),
        ))
    } else {
        backend
    };
    let mut engine =
        Engine::with_telemetry(backend, bml, config.filters.clone(), telemetry.clone());
    engine.set_retry_policy(config.retry);
    engine.set_hotpath(config.hotpath);
    let engine = Arc::new(engine);

    let (queue, serializer, worker_threads) = match config.mode.workers() {
        0 => (None, None, Vec::new()),
        n => {
            let queue = Arc::new(WorkQueue::with_telemetry(
                config.queue_discipline,
                n,
                telemetry.clone(),
            ));
            let serializer = Arc::new(FdSerializer::new());
            let workers = (0..n)
                .map(|w| {
                    let queue = queue.clone();
                    let engine = engine.clone();
                    let serializer = serializer.clone();
                    let batch = config.worker_batch;
                    let coalesce = config.coalesce;
                    std::thread::Builder::new()
                        .name(format!("iofwd-worker-{w}"))
                        .spawn(move || {
                            handlers::worker_loop(w, batch, queue, engine, serializer, coalesce)
                        })
                        .expect("spawn worker")
                })
                .collect();
            (Some(queue), Some(serializer), workers)
        }
    };
    ServerCore {
        engine,
        queue,
        serializer,
        worker_threads,
    }
}

/// Join (and discard) every handler thread that has already returned,
/// so a long-lived daemon's handle list tracks *live* clients instead
/// of growing monotonically across connection churn.
fn reap_finished(handles: &mut Vec<JoinHandle<()>>) {
    let mut i = 0;
    while i < handles.len() {
        if handles[i].is_finished() {
            let _ = handles.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

impl IonServer {
    /// Start the daemon on a listener (thread-per-connection transport).
    pub fn spawn(
        listener: Box<dyn Listener>,
        backend: Arc<dyn Backend>,
        config: ServerConfig,
    ) -> IonServer {
        let telemetry = config.telemetry.clone();
        let ServerCore {
            engine,
            queue,
            serializer,
            worker_threads,
        } = build_core(backend, &config);
        let listener: Arc<dyn Listener> = Arc::from(listener);
        let handler_threads = Arc::new(Mutex::new(Vec::new()));

        let accept_thread = {
            let listener = listener.clone();
            let engine = engine.clone();
            let queue = queue.clone();
            let serializer = serializer.clone();
            let handler_threads = handler_threads.clone();
            let mode = config.mode;
            let telemetry = telemetry.clone();
            std::thread::Builder::new()
                .name("iofwd-accept".into())
                .spawn(move || {
                    // Transient accept failures (EMFILE, ECONNABORTED,
                    // EINTR, …) must not kill the listener: back off,
                    // count, retry. Only `shutdown()` (surfaced as
                    // `Ok(None)`) ends the loop.
                    let mut backoff = Duration::from_millis(1);
                    loop {
                        let conn = match listener.accept() {
                            Ok(Some(conn)) => conn,
                            Ok(None) => break,
                            Err(_) => {
                                if telemetry.enabled() {
                                    telemetry.accept_errors.inc();
                                }
                                std::thread::sleep(backoff);
                                backoff = (backoff * 2).min(Duration::from_millis(100));
                                continue;
                            }
                        };
                        backoff = Duration::from_millis(1);
                        reap_finished(&mut handler_threads.lock());
                        let conn: Arc<dyn crate::transport::Conn> = if telemetry.enabled() {
                            Arc::new(crate::transport::Instrumented::new(conn, telemetry.clone()))
                        } else {
                            Arc::from(conn)
                        };
                        let engine = engine.clone();
                        let queue = queue.clone();
                        let serializer = serializer.clone();
                        if telemetry.enabled() {
                            telemetry.conns_open.add(1);
                        }
                        let telemetry = telemetry.clone();
                        let handle = std::thread::Builder::new()
                            .name("iofwd-handler".into())
                            .spawn(move || {
                                match mode {
                                    ForwardingMode::Ciod => handlers::handle_ciod(conn, engine),
                                    ForwardingMode::Zoid => handlers::handle_zoid(conn, engine),
                                    ForwardingMode::Sched { .. } => handlers::handle_sched(
                                        conn,
                                        engine,
                                        queue.expect("sched mode has a queue"),
                                    ),
                                    ForwardingMode::AsyncStaged { .. } => handlers::handle_staged(
                                        conn,
                                        engine,
                                        queue.expect("staged mode has a queue"),
                                        serializer.expect("staged mode has a serializer"),
                                    ),
                                }
                                if telemetry.enabled() {
                                    telemetry.conns_open.add(-1);
                                }
                            })
                            .expect("spawn handler");
                        handler_threads.lock().push(handle);
                    }
                })
                .expect("spawn accept loop")
        };

        IonServer {
            engine,
            queue,
            serializer,
            listener,
            accept_thread: Some(accept_thread),
            worker_threads,
            handler_threads,
            reactor: None,
            config,
        }
    }

    /// Start the daemon on a TCP listener using the poll-based reactor
    /// transport: a small fixed pool of event loops multiplexes every
    /// client socket instead of spawning a thread per connection.
    ///
    /// Requires a worker-pool mode (`Sched`/`AsyncStaged`) — the
    /// reactor has no per-client thread to execute inline on. Fails if
    /// the vendored poller does not support this target (the caller
    /// falls back to [`IonServer::spawn`]).
    pub fn spawn_reactor(
        acceptor: crate::transport::tcp::TcpAcceptor,
        backend: Arc<dyn Backend>,
        config: ServerConfig,
        reactor_cfg: ReactorConfig,
    ) -> io::Result<IonServer> {
        if config.mode.workers() == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "reactor transport requires a worker-pool mode (sched/async-staged)",
            ));
        }
        let ServerCore {
            engine,
            queue,
            serializer,
            worker_threads,
        } = build_core(backend, &config);
        let queue = queue.expect("worker-pool mode has a queue");
        let acceptor = Arc::new(acceptor);
        let staged = matches!(config.mode, ForwardingMode::AsyncStaged { .. });
        match reactor::spawn(
            acceptor.clone(),
            engine.clone(),
            queue.clone(),
            serializer.clone(),
            staged,
            reactor_cfg,
        ) {
            Ok(handle) => Ok(IonServer {
                engine,
                queue: Some(queue),
                serializer,
                listener: acceptor,
                accept_thread: None,
                worker_threads,
                handler_threads: Arc::new(Mutex::new(Vec::new())),
                reactor: Some(handle),
                config,
            }),
            Err(e) => {
                // Unwind the worker pool we just built; no client ever
                // connected, so there is nothing to drain.
                queue.close();
                queue.abort();
                for w in worker_threads {
                    let _ = w.join();
                }
                if let Some(bml) = engine.bml() {
                    bml.close();
                }
                Err(e)
            }
        }
    }

    /// Live handler threads (thread-per-connection transport only; the
    /// reactor spawns none). Finished handlers are reaped on the next
    /// accept, so across connection churn this tracks open clients, not
    /// historical ones.
    pub fn handler_thread_count(&self) -> usize {
        let mut handles = self.handler_threads.lock();
        reap_finished(&mut handles);
        handles.len()
    }

    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The daemon's telemetry registry (always present; a null sink if
    /// the config disabled it).
    pub fn telemetry(&self) -> Arc<crate::telemetry::Telemetry> {
        self.engine.telemetry().clone()
    }

    /// Daemon-wide request counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.engine.stats()
    }

    /// The shared work queue (None for Ciod/Zoid modes) — the watchdog
    /// samples its head-of-line age through this.
    pub fn work_queue(&self) -> Option<Arc<WorkQueue>> {
        self.queue.clone()
    }

    /// Work-queue statistics (None for Ciod/Zoid modes).
    pub fn queue_stats(&self) -> Option<(u64, u64)> {
        self.queue
            .as_ref()
            .map(|q| (q.total_enqueued(), q.depth_high_water()))
    }

    /// BML statistics (None unless AsyncStaged).
    pub fn bml_stats(&self) -> Option<crate::bml::BmlStats> {
        self.engine.bml().map(|b| b.stats())
    }

    /// Number of descriptors currently open on the daemon.
    pub fn open_descriptors(&self) -> usize {
        self.engine.descriptor_db().open_count()
    }

    /// Orderly shutdown: stop accepting, drain the work queue, join
    /// workers and client handlers. Delegates to
    /// [`shutdown_with_deadline`](Self::shutdown_with_deadline) with a
    /// generous budget; under normal load everything executes and the
    /// report is all-`executed`.
    pub fn shutdown(self) {
        self.shutdown_with_deadline(Duration::from_secs(30));
    }

    /// Deadline-bounded degraded shutdown.
    ///
    /// Ordering matters here, and every step exists to uphold one
    /// invariant: **no staged write is dropped without an outcome, and
    /// no BML buffer is stranded.**
    ///
    /// 1. Stop accepting connections and join the accept loop.
    /// 2. `close()` the work queue: new pushes fail with `QueueClosed`
    ///    (handlers translate that into a clean errno reply or an
    ///    inline execution), while workers keep draining what's queued.
    /// 3. Give workers half the budget to finish in order, then
    ///    `abort()`: remaining items stay parked for the drain instead
    ///    of being handed to workers that must now exit.
    /// 4. Join workers, then drain the queue *and* the serializer
    ///    lanes. Each parked staged write either executes now (while
    ///    budget remains) or records a deferred error via the
    ///    descriptor database — either way its op completes and its
    ///    BML buffer is returned.
    /// 5. Join handlers. This must come *after* the drain: a handler's
    ///    close-time reclaim waits for every staged op to reach an
    ///    outcome, which step 4 guarantees.
    /// 6. Close the BML.
    pub fn shutdown_with_deadline(mut self, deadline: Duration) -> ShutdownReport {
        let started = Instant::now();
        self.listener.shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(q) = &self.queue {
            q.close();
            let soft = deadline / 2;
            while q.depth() > 0 && started.elapsed() < soft {
                std::thread::sleep(Duration::from_millis(1));
            }
            q.abort();
        }
        for w in std::mem::take(&mut self.worker_threads) {
            let _ = w.join();
        }

        let telemetry = self.engine.telemetry().clone();
        let mut leftovers: Vec<WorkItem> = Vec::new();
        if let Some(q) = &self.queue {
            leftovers.extend(q.drain_remaining());
        }
        if let Some(s) = &self.serializer {
            leftovers.extend(s.drain_all());
        }
        let mut report = ShutdownReport::default();
        for item in leftovers {
            match item {
                item @ WorkItem::StagedWrite { .. } if started.elapsed() < deadline => {
                    handlers::run_staged_inline(
                        &self.engine,
                        &telemetry,
                        item,
                        crate::telemetry::Disposition::DrainExecuted,
                    );
                    report.executed += 1;
                    if telemetry.enabled() {
                        telemetry.drain_executed.inc();
                    }
                }
                WorkItem::StagedWrite {
                    fd,
                    op,
                    buf,
                    mut span,
                    ..
                } => {
                    // Deadline exhausted: fail the op *explicitly* so the
                    // client's deferred-error channel reports it on the
                    // next op or close, and return the staging memory.
                    self.engine
                        .descriptor_db()
                        .finish_op(fd, op, OpOutcome::Failed(Errno::Io));
                    drop(buf);
                    // The span still completes — into the flight recorder
                    // and trace, not the void — recording that this write
                    // was deferred to the error channel at shutdown.
                    span.ok = false;
                    span.errno = Errno::Io.to_wire();
                    span.disposition = crate::telemetry::Disposition::DrainDeferred;
                    telemetry.complete(&span);
                    report.deferred += 1;
                    if telemetry.enabled() {
                        telemetry.drain_deferred.inc();
                    }
                }
                // A coalesced batch caught by the drain (workers are
                // never killed mid-item, but the arm keeps the drain
                // total): execute or defer every constituent.
                item @ WorkItem::CoalescedWrite { .. } if started.elapsed() < deadline => {
                    let n = match &item {
                        WorkItem::CoalescedWrite { parts, .. } => parts.len(),
                        _ => 0,
                    };
                    handlers::run_staged_inline(
                        &self.engine,
                        &telemetry,
                        item,
                        crate::telemetry::Disposition::DrainExecuted,
                    );
                    report.executed += n;
                    if telemetry.enabled() {
                        telemetry.drain_executed.add(n as u64);
                    }
                }
                WorkItem::CoalescedWrite { fd, parts } => {
                    for part in parts {
                        self.engine.descriptor_db().finish_op(
                            fd,
                            part.op,
                            OpOutcome::Failed(Errno::Io),
                        );
                        drop(part.buf);
                        let mut span = part.span;
                        span.ok = false;
                        span.errno = Errno::Io.to_wire();
                        span.disposition = crate::telemetry::Disposition::DrainDeferred;
                        telemetry.complete(&span);
                        report.deferred += 1;
                        if telemetry.enabled() {
                            telemetry.drain_deferred.inc();
                        }
                    }
                }
                // Sync items carry no BML memory and no recorded op.
                // Handler-origin: dropping the reply sender unblocks the
                // waiting handler with a disconnect. Reactor-origin: the
                // event loop is still running and holds per-connection
                // bookkeeping for this op, so fail it explicitly — the
                // completion routes back through the reactor's sink.
                WorkItem::Sync {
                    reply, mut span, ..
                } => {
                    if matches!(reply, ReplyTo::Reactor { .. }) {
                        span.ok = false;
                        span.errno = Errno::Again.to_wire();
                        span.disposition = crate::telemetry::Disposition::QueueRejected;
                        reply.deliver(
                            Response::Err {
                                errno: Errno::Again,
                            },
                            Bytes::new(),
                            span,
                        );
                    }
                }
            }
        }

        let handlers: Vec<_> = std::mem::take(&mut *self.handler_threads.lock());
        for h in handlers {
            let _ = h.join();
        }
        // Reactor transport: the event loops stayed up through the
        // drain so queue-rejected completions could still reach their
        // connections; now stop them (tears down remaining sockets and
        // reclaims descriptors) before closing the BML.
        if let Some(r) = self.reactor.take() {
            r.stop();
        }
        if let Some(bml) = self.engine.bml() {
            bml.close();
        }
        report
    }
}
