//! Poll-based reactor transport: the event-loop alternative to
//! thread-per-connection.
//!
//! The paper's ION serves on the order of a hundred compute nodes per
//! I/O node; at petascale fan-in (and in the `connection_scale`
//! experiment) a thread per client means thousands of stacks and a
//! scheduler meltdown on the ION's handful of cores. The reactor
//! multiplexes every client socket onto a small fixed pool of event
//! loops built on `epoll(7)` (vendored `polling` stub):
//!
//! - **Framed, non-blocking I/O.** Each connection owns a read buffer
//!   fed by [`bytes::BytesMut::read_from`] (no intermediate copy) and a
//!   write buffer of encoded frames drained on writability.
//!   [`Frame::decode`]'s streaming contract (`Ok(None)` = incomplete)
//!   drives the partial-read state machine; partial writes park the
//!   remainder and wait for `POLLOUT`.
//! - **Admission control as backpressure.** Where the threaded staged
//!   handler *blocks* on BML exhaustion (`acquire_timeout(len, None)`),
//!   an event loop must never block: a failed [`Bml::try_acquire`]
//!   parks the connection — the frame is stashed, the socket drops out
//!   of the readable interest set — and is retried each loop lap. TCP
//!   flow control pushes the stall back to the compute node, exactly
//!   the §IV contract ("the I/O operation is blocked until sufficient
//!   memory is available"), minus the dedicated thread.
//! - **Per-client fairness.** A client with more than
//!   [`ReactorConfig::max_client_queued`] items in the shared work
//!   queue is parked the same way, so one chatty compute node cannot
//!   monopolize the worker pool ahead of its neighbors.
//! - **Blocking ops off-loop.** Metadata requests and the
//!   read-after-staged-write barrier (`wait_idle`) touch the filesystem
//!   or block on the descriptor database, so they run on a tiny
//!   `iofwd-sync-*` executor pool, never on an event loop.
//!
//! Completions flow back through [`CompletionSink`]: workers finish an
//! op, push a [`Completion`] onto the owning loop's channel, and kick
//! its [`Waker`]. `(token, gen)` pairs make stale completions (client
//! disconnected mid-op) harmless: the span still folds into telemetry,
//! the reply is simply unaddressable.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, Sender};
use iofwd_proto::{Errno, Fd, Frame, Request, Response, TraceExt};
use polling::{Event, Interest, Poller, Waker};

use super::engine::{op_kind, response_errno, Engine};
use super::handlers::{
    apply_trace, maybe_deep_copy_rx, maybe_deep_copy_tx, run_staged_inline, stage_echo_of,
};
use super::queue::{Completion, CompletionSink, ReplyTo, WorkItem, WorkQueue};
use super::staged::FdSerializer;
use super::HotPath;
use crate::bml::Bml;
use crate::descdb::BeginError;
use crate::telemetry::{Disposition, OpSpan, PerClientStats, Telemetry};
use crate::transport::tcp::TcpAcceptor;

/// Token reserved for the listening socket (registered on loop 0 only).
const LISTENER_TOKEN: usize = usize::MAX - 1;
/// Minimum spare read-buffer capacity per `read(2)`.
const READ_CHUNK: usize = 64 * 1024;
/// Idle poll timeout; parked-connection retries ride on this tick.
const TICK: Duration = Duration::from_millis(20);
/// Backoff before re-touching a listener that just failed `accept(2)`.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(1);

/// Tuning knobs for [`spawn`].
#[derive(Debug, Clone, Copy)]
pub struct ReactorConfig {
    /// Event-loop threads; client sockets are assigned round-robin.
    pub threads: usize,
    /// Frames decoded per connection per loop lap before yielding to
    /// the next connection (fairness between clients on one loop).
    pub frames_per_pass: usize,
    /// Park a client once it has this many items in the work queue.
    pub max_client_queued: usize,
    /// Park a client's read side once its un-flushed reply bytes
    /// exceed this (it is not reading its responses).
    pub max_write_buffer: usize,
    /// Threads for blocking work (metadata ops, read barriers).
    pub sync_executors: usize,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            threads: 2,
            frames_per_pass: 8,
            max_client_queued: 32,
            max_write_buffer: 1 << 20,
            sync_executors: 8,
        }
    }
}

/// Running reactor: event-loop threads plus the sync-executor pool.
pub struct ReactorHandle {
    stop: Arc<AtomicBool>,
    wakers: Vec<Waker>,
    threads: Vec<JoinHandle<()>>,
    sync_threads: Vec<JoinHandle<()>>,
}

impl ReactorHandle {
    /// Stop every event loop and join all threads. Connections still
    /// open are torn down (descriptors reclaimed, spans completed).
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        for w in &self.wakers {
            w.wake();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Event loops dropped their SyncTask senders on exit; the
        // executors drain what is left and hang up.
        for t in self.sync_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Blocking work an event loop must not run in place.
enum SyncTask {
    /// Execute a metadata (or oversized-write) request inline.
    Execute {
        req: Request,
        data: Bytes,
        reply: ReplyTo,
        span: OpSpan,
    },
    /// Barrier behind staged writes on `fd`, then enqueue the read.
    BarrierThenQueue {
        fd: Fd,
        req: Request,
        data: Bytes,
        reply: ReplyTo,
        span: OpSpan,
    },
    /// Close descriptors left open by a disconnected client.
    Reclaim { fds: Vec<Fd> },
}

/// Completion queue for one event loop; `Send + Sync` so workers and
/// sync executors can push from any thread.
struct ReactorSink {
    tx: Sender<Completion>,
    waker: Waker,
    telemetry: Arc<Telemetry>,
}

impl CompletionSink for ReactorSink {
    fn complete(&self, completion: Completion) {
        match self.tx.send(completion) {
            Ok(()) => self.waker.wake(),
            // The loop is gone (shutdown race): the reply has no
            // destination but the span must still reach the recorder.
            Err(send_err) => {
                let mut span = send_err.0.span;
                span.reply_ns = self.telemetry.now_ns();
                self.telemetry.complete(&span);
            }
        }
    }
}

/// What a completed op means for the connection's descriptor session
/// (mirrors `handlers::Session`, keyed by request seq because the
/// response arrives asynchronously).
enum PendingOp {
    /// `Open`/`Connect`: success allocates a descriptor to track.
    Open,
    /// `Close`: success (or deferred error) releases the descriptor.
    Close(Fd),
}

/// Per-connection state machine.
struct ConnState {
    stream: TcpStream,
    /// Inbound bytes; `Frame::decode` consumes complete frames.
    rbuf: BytesMut,
    /// Encoded reply frames awaiting the socket.
    wbuf: VecDeque<Bytes>,
    /// Bytes of `wbuf.front()` already written (partial-write cursor).
    wbuf_off: usize,
    /// Total un-flushed bytes across `wbuf`.
    wbuf_bytes: usize,
    /// Session-tracking ops in flight, keyed by frame seq.
    pending: HashMap<u64, PendingOp>,
    /// Descriptors this client opened and has not closed.
    fds: HashSet<Fd>,
    /// Client id from the most recent frame (for fairness lookups).
    client: u64,
    /// Cached per-client attribution row for `client`, refreshed when
    /// the id changes — one shard lookup per id change, not per frame
    /// (lint R9: all mutations go through `Telemetry::client_stats`).
    stats: Option<Arc<PerClientStats>>,
    /// Decoded frame waiting for admission (BML or queue pushed back).
    parked_frame: Option<Frame>,
    /// Ops handed to the queue / sync pool with replies outstanding.
    inflight: usize,
    parked_queue: bool,
    parked_bml: bool,
    parked_wbuf: bool,
    peer_closed: bool,
    close_after_flush: bool,
    /// Interest set currently registered with the poller. `finish_conn`
    /// only issues an `epoll_ctl`-backed `modify` when the recomputed
    /// set differs — most service passes leave it untouched, and a
    /// syscall per pass is exactly the per-op overhead the reactor
    /// exists to avoid.
    interest: Interest,
    /// On the hot list (decoded frames may still be buffered).
    in_hot: bool,
    /// Wants a hot-list slot next lap (set when the per-pass frame
    /// budget ran out with bytes still buffered).
    want_hot: bool,
    dead: bool,
}

impl ConnState {
    fn new(stream: TcpStream) -> ConnState {
        ConnState {
            stream,
            rbuf: BytesMut::with_capacity(READ_CHUNK),
            wbuf: VecDeque::new(),
            wbuf_off: 0,
            wbuf_bytes: 0,
            pending: HashMap::new(),
            fds: HashSet::new(),
            client: 0,
            stats: None,
            parked_frame: None,
            inflight: 0,
            parked_queue: false,
            parked_bml: false,
            parked_wbuf: false,
            peer_closed: false,
            close_after_flush: false,
            interest: Interest::READABLE,
            in_hot: false,
            want_hot: false,
            dead: false,
        }
    }

    fn parked(&self) -> bool {
        self.parked_queue || self.parked_bml || self.parked_wbuf
    }

    /// A drained connection whose peer is done (or that acked
    /// `Shutdown`) dies once every reply has left the building.
    fn maybe_finished(&mut self) {
        if (self.peer_closed || self.close_after_flush)
            && self.inflight == 0
            && self.wbuf.is_empty()
            && self.parked_frame.is_none()
        {
            self.dead = true;
        }
    }
}

/// Connection slot: `gen` increments on reuse so completions addressed
/// to a previous occupant are recognized as stale.
struct Slot {
    gen: u64,
    conn: Option<ConnState>,
}

/// One event loop.
struct ReactorThread {
    idx: usize,
    poller: Poller,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Connections with buffered-but-undecoded frames: serviced every
    /// lap with a zero poll timeout, since no new socket readiness
    /// will announce bytes we already hold.
    hot: VecDeque<usize>,
    events: Vec<Event>,
    conn_rx: Receiver<TcpStream>,
    comp_rx: Receiver<Completion>,
    sink: Arc<ReactorSink>,
    sync_tx: Sender<SyncTask>,
    engine: Arc<Engine>,
    queue: Arc<WorkQueue>,
    serializer: Option<Arc<FdSerializer>>,
    bml: Option<Bml>,
    staged: bool,
    telemetry: Arc<Telemetry>,
    cfg: ReactorConfig,
    stop: Arc<AtomicBool>,
    /// Accept duty (loop 0 only): the listener plus the round-robin
    /// hand-off channels to every loop (self included).
    acceptor: Option<Arc<TcpAcceptor>>,
    assign: Vec<Sender<TcpStream>>,
    assign_wakers: Vec<Waker>,
    rr: usize,
    /// Accept backoff deadline after a transient accept failure.
    next_accept_at: Option<Instant>,
}

impl ReactorThread {
    fn run(mut self) {
        // Loop-health instrumentation: a heartbeat slot the watchdog
        // reads for worst-case lap lag, plus lap-to-lap and poll-wait
        // timings. `poll_wait_ns` is time *voluntarily* parked in
        // `wait(2)`; `loop_lag_ns` minus it is time spent working — a
        // lap that stretches without polling means a blocking call
        // leaked onto the event loop.
        let instrumented = self.telemetry.enabled();
        let hb_slot = instrumented.then(|| {
            self.telemetry
                .loop_heartbeats
                .register(self.telemetry.now_ns())
        });
        let mut last_lap_ns = self.telemetry.now_ns();
        while !self.stop.load(Ordering::Acquire) {
            if instrumented {
                let now = self.telemetry.now_ns();
                self.telemetry
                    .loop_lag_ns
                    .record_shard(self.idx, now.saturating_sub(last_lap_ns));
                last_lap_ns = now;
                if let Some(slot) = hb_slot {
                    self.telemetry.loop_heartbeats.beat(slot, now);
                }
            }
            self.drain_incoming();
            self.drain_completions();
            self.retry_parked();
            let lap = self.hot.len();
            for _ in 0..lap {
                if let Some(tok) = self.hot.pop_front() {
                    if let Some(c) = self.slots.get_mut(tok).and_then(|s| s.conn.as_mut()) {
                        c.in_hot = false;
                    }
                    self.service_conn(tok);
                }
            }
            let timeout = if self.hot.is_empty() && self.next_accept_at.is_none() {
                TICK
            } else {
                Duration::ZERO
            };
            let mut events = std::mem::take(&mut self.events);
            let wait_from = self.telemetry.now_ns();
            let _ = self.poller.wait(&mut events, Some(timeout));
            if instrumented {
                self.telemetry
                    .poll_wait_ns
                    .record_shard(self.idx, self.telemetry.now_ns().saturating_sub(wait_from));
                self.telemetry
                    .ready_batch
                    .record_shard(self.idx, events.len() as u64);
            }
            for ev in events.drain(..) {
                if ev.token == LISTENER_TOKEN {
                    self.accept_burst();
                    continue;
                }
                if ev.writable {
                    self.flush_conn(ev.token);
                }
                if ev.readable {
                    self.service_conn(ev.token);
                }
            }
            self.events = events;
            if self.next_accept_at.is_some() {
                self.accept_burst();
            }
        }
        self.teardown();
    }

    // -- accept path --------------------------------------------------

    /// Accept everything the backlog holds, spreading connections
    /// round-robin across the loops. Transient failures (EMFILE,
    /// ECONNABORTED, injected faults) are counted and retried after a
    /// short backoff — the listener stays alive no matter what.
    fn accept_burst(&mut self) {
        let Some(acceptor) = self.acceptor.clone() else {
            return;
        };
        if let Some(at) = self.next_accept_at {
            if Instant::now() < at {
                return;
            }
            self.next_accept_at = None;
        }
        loop {
            if self.stop.load(Ordering::Acquire) {
                return;
            }
            match acceptor.try_accept_stream() {
                Ok(Some(stream)) => {
                    let target = if self.assign.is_empty() {
                        self.idx
                    } else {
                        self.rr % self.assign.len()
                    };
                    self.rr = self.rr.wrapping_add(1);
                    if target == self.idx {
                        self.register_conn(stream);
                    } else if let (Some(tx), Some(w)) =
                        (self.assign.get(target), self.assign_wakers.get(target))
                    {
                        if tx.send(stream).is_ok() {
                            w.wake();
                        }
                    }
                }
                // Backlog drained, or the listener has shut down.
                Ok(None) => return,
                Err(_) => {
                    if self.telemetry.enabled() {
                        self.telemetry.accept_errors.inc();
                    }
                    self.next_accept_at = Some(Instant::now() + ACCEPT_BACKOFF);
                    return;
                }
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let tok = match self.free.pop() {
            Some(t) => t,
            None => {
                self.slots.push(Slot { gen: 0, conn: None });
                self.slots.len() - 1
            }
        };
        if self
            .poller
            .add(stream.as_raw_fd(), tok, Interest::READABLE)
            .is_err()
        {
            self.free.push(tok);
            return;
        }
        if let Some(slot) = self.slots.get_mut(tok) {
            slot.conn = Some(ConnState::new(stream));
        }
        if self.telemetry.enabled() {
            self.telemetry.conns_open.add(1);
        }
        // The client may have written before registration; service once
        // now rather than waiting for the next readiness report.
        self.push_hot(tok);
    }

    fn push_hot(&mut self, tok: usize) {
        if let Some(c) = self.slots.get_mut(tok).and_then(|s| s.conn.as_mut()) {
            if !c.in_hot && !c.dead {
                c.in_hot = true;
                self.hot.push_back(tok);
            }
        }
    }

    // -- channel drains -----------------------------------------------

    fn drain_incoming(&mut self) {
        while let Ok(stream) = self.conn_rx.try_recv() {
            self.register_conn(stream);
        }
    }

    fn drain_completions(&mut self) {
        while let Ok(c) = self.comp_rx.try_recv() {
            self.on_completion(c);
        }
    }

    fn on_completion(&mut self, c: Completion) {
        let mut span = c.span;
        span.reply_ns = self.telemetry.now_ns();
        let live = self
            .slots
            .get(c.token)
            .is_some_and(|slot| slot.gen == c.gen && slot.conn.is_some());
        if !live {
            // Stale: the client disconnected while the op ran.
            self.telemetry.complete(&span);
            return;
        }
        let Some(mut conn) = self.slots.get_mut(c.token).and_then(|s| s.conn.take()) else {
            self.telemetry.complete(&span);
            return;
        };
        match conn.pending.remove(&c.seq) {
            Some(PendingOp::Open) => {
                if let Response::Ok { ret } = c.resp {
                    conn.fds.insert(Fd(ret as u32));
                }
            }
            Some(PendingOp::Close(fd)) => {
                if matches!(c.resp, Response::Ok { .. } | Response::DeferredErr { .. }) {
                    conn.fds.remove(&fd);
                }
            }
            None => {}
        }
        conn.inflight = conn.inflight.saturating_sub(1);
        let mut data = c.data;
        maybe_deep_copy_tx(self.engine.hotpath(), &self.telemetry, &mut data);
        let mut frame = Frame::response(c.client_id, c.seq, &c.resp, data);
        if span.trace_id != 0 {
            frame = frame.with_ext(TraceExt::Echo(stage_echo_of(&span)));
        }
        self.telemetry.complete(&span);
        self.enqueue_wire(&mut conn, frame);
        conn.maybe_finished();
        self.finish_conn(c.token, conn);
    }

    /// Re-admit parked frames. BML parks retry every lap (buffers free
    /// continuously); queue parks retry once the client's backlog has
    /// drained to half the cap (hysteresis, so a parked client does not
    /// flap at the boundary).
    fn retry_parked(&mut self) {
        for tok in 0..self.slots.len() {
            let eligible = match self.slots.get(tok).and_then(|s| s.conn.as_ref()) {
                Some(c) if c.parked_frame.is_some() && !c.dead => {
                    if c.parked_queue {
                        self.queue.client_queued(c.client) * 2 <= self.cfg.max_client_queued
                    } else {
                        c.parked_bml
                    }
                }
                _ => false,
            };
            if !eligible {
                continue;
            }
            let Some(mut conn) = self.slots.get_mut(tok).and_then(|s| s.conn.take()) else {
                continue;
            };
            conn.parked_queue = false;
            if let Some(frame) = conn.parked_frame.take() {
                // parked_bml stays set through the retry so a re-park
                // does not double-count the backpressure event; admit
                // clears it on success.
                self.admit(tok, &mut conn, frame);
            }
            if !conn.parked() {
                // Unparked: resume draining whatever piled up in rbuf.
                conn.want_hot = true;
            }
            self.finish_conn(tok, conn);
        }
    }

    // -- read path ----------------------------------------------------

    fn service_conn(&mut self, tok: usize) {
        let Some(mut conn) = self.slots.get_mut(tok).and_then(|s| s.conn.take()) else {
            return;
        };
        self.pump(tok, &mut conn);
        conn.maybe_finished();
        self.finish_conn(tok, conn);
    }

    /// Decode-and-admit loop: up to `frames_per_pass` frames, refilling
    /// `rbuf` from the socket when a frame is incomplete.
    fn pump(&mut self, tok: usize, conn: &mut ConnState) {
        let mut budget = self.cfg.frames_per_pass.max(1);
        loop {
            if conn.dead || conn.parked() || conn.peer_closed || conn.close_after_flush {
                return;
            }
            if budget == 0 {
                // Yield to other connections; come back next lap if
                // undecoded bytes remain.
                if !conn.rbuf.is_empty() {
                    conn.want_hot = true;
                }
                return;
            }
            // Zero-copy decode: once a complete frame sits in rbuf,
            // carve it out as shared storage and hand the handlers
            // views into it — the payload is never memcpy'd out of the
            // receive buffer.
            let complete = match Frame::required_len(&conn.rbuf) {
                Ok(total) => total.filter(|&t| conn.rbuf.len() >= t),
                // Undecodable garbage: the framing is unrecoverable.
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            };
            match complete {
                Some(total) => {
                    let wire = conn.rbuf.split_to_bytes(total);
                    let frame = match Frame::decode_shared(&wire) {
                        Ok(f) => f,
                        Err(_) => {
                            conn.dead = true;
                            return;
                        }
                    };
                    budget -= 1;
                    if self.telemetry.enabled() {
                        self.telemetry.frames_in.inc();
                        self.telemetry
                            .transport_bytes_in
                            .add(frame.data.len() as u64);
                        // Attribute inbound bytes at decode time — once
                        // per frame, even if admission later parks and
                        // re-admits it. The row is cached per id.
                        let client = u64::from(frame.client_id);
                        if conn.client != client || conn.stats.is_none() {
                            conn.client = client;
                            conn.stats = self.telemetry.client_stats(client);
                        }
                        if let Some(stats) = &conn.stats {
                            stats.bytes_in.add(frame.data.len() as u64);
                        }
                    }
                    self.admit(tok, conn, frame);
                }
                None => match conn.rbuf.read_from(&mut conn.stream, READ_CHUNK) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        return;
                    }
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.dead = true;
                        return;
                    }
                },
            }
        }
    }

    // -- admission ----------------------------------------------------

    fn admit(&mut self, tok: usize, conn: &mut ConnState, mut frame: Frame) {
        maybe_deep_copy_rx(self.engine.hotpath(), &self.telemetry, &mut frame);
        let client = u64::from(frame.client_id);
        conn.client = client;
        // Fairness gate: a client hogging the work queue is parked
        // before we even decode the request.
        if self.queue.client_queued(client) >= self.cfg.max_client_queued.max(1) {
            self.park_queue(conn, frame);
            return;
        }
        let req = match frame.decode_request() {
            Ok(req) => req,
            Err(_) => {
                // Mirror `decode_or_reject`: error reply, no span.
                let reply = Frame::response(
                    frame.client_id,
                    frame.seq,
                    &Response::Err {
                        errno: Errno::Inval,
                    },
                    Bytes::new(),
                );
                self.enqueue_wire(conn, reply);
                return;
            }
        };
        // Stats queries are answered inline from telemetry memory —
        // never queued, never parked behind the fairness gate's retry
        // (the gate above applies, but a stalled *worker pool* cannot
        // block a query; only this client's own queue debt can).
        if let Request::Stats { query } = req {
            let (resp, data) = super::introspect::answer(&self.telemetry, query);
            let reply = Frame::response(frame.client_id, frame.seq, &resp, data);
            self.enqueue_wire(conn, reply);
            return;
        }
        let mut span = OpSpan::begin(op_kind(&req), client, frame.seq, self.telemetry.now_ns());
        span.bytes = frame.data.len() as u64;
        apply_trace(&mut span, &frame);
        if matches!(req, Request::Shutdown) {
            let reply = Frame::response(
                frame.client_id,
                frame.seq,
                &Response::Ok { ret: 0 },
                Bytes::new(),
            );
            self.enqueue_wire(conn, reply);
            conn.close_after_flush = true;
            return;
        }
        if self.staged {
            self.admit_staged(tok, conn, frame, req, span);
        } else {
            self.submit_queue(tok, conn, frame, req, span);
        }
    }

    /// Sched mode: everything rides the shared work queue.
    fn submit_queue(
        &mut self,
        tok: usize,
        conn: &mut ConnState,
        frame: Frame,
        req: Request,
        mut span: OpSpan,
    ) {
        span.enqueue_ns = self.telemetry.now_ns();
        let reply = self.reply_to(tok, frame.client_id, frame.seq);
        self.track_pending(conn, frame.seq, &req);
        conn.inflight += 1;
        if let Err(closed) = self.queue.push(WorkItem::Sync {
            req,
            data: frame.data,
            reply,
            span,
        }) {
            // Queue closed (shutdown race): fail the op with a clean
            // transient errno; the completion routes back through our
            // own sink, so the bookkeeping above unwinds normally.
            fail_queued_item(*closed.0);
        }
    }

    /// Staged mode: the asynchronous-staging admission state machine,
    /// non-blocking edition.
    fn admit_staged(
        &mut self,
        tok: usize,
        conn: &mut ConnState,
        frame: Frame,
        req: Request,
        mut span: OpSpan,
    ) {
        let Some(bml) = self.bml.clone() else {
            // Defensive: staged mode always builds a BML.
            self.submit_queue(tok, conn, frame, req, span);
            return;
        };
        match req {
            Request::Write { fd, len } | Request::Pwrite { fd, len, .. }
                if len as usize <= bml.max_request() =>
            {
                let offset = if let Request::Pwrite { offset, .. } = req {
                    Some(offset)
                } else {
                    None
                };
                if len != frame.data.len() as u64 {
                    self.fail_inline(
                        conn,
                        frame.client_id,
                        frame.seq,
                        &mut span,
                        &Response::Err {
                            errno: Errno::Inval,
                        },
                    );
                    return;
                }
                // Admission control: where the threaded handler blocks
                // on `acquire_timeout`, the reactor parks the client.
                // Order matters — acquire *before* `begin_op`, so a
                // parked client leaves no half-open operation on the
                // descriptor for barriers to wait on. The fast path
                // adopts the receive view (capacity charged, no bytes
                // moved); the Seed arm copies into an owned block.
                let admitted = match self.engine.hotpath() {
                    HotPath::Fast => bml.try_adopt(frame.data.clone()),
                    HotPath::Seed => bml.try_acquire(len as usize),
                };
                let Some(mut buf) = admitted else {
                    self.park_bml(conn, frame);
                    return;
                };
                conn.parked_bml = false;
                let resp = match self.engine.descriptor_db().begin_op(fd) {
                    Err(BeginError::Sync(errno)) => Response::Err { errno },
                    Err(BeginError::Deferred { op, errno }) => {
                        self.engine
                            .stats
                            .deferred_errors_reported
                            .fetch_add(1, Ordering::Relaxed);
                        Response::DeferredErr { op, errno }
                    }
                    Ok((op, _obj)) => {
                        if self.engine.hotpath() == HotPath::Seed {
                            buf.fill_from(&frame.data);
                        }
                        self.engine.stats.requests.fetch_add(1, Ordering::Relaxed);
                        self.engine.stats.bytes_in.fetch_add(len, Ordering::Relaxed);
                        self.engine.stats.staged_ops.fetch_add(1, Ordering::Relaxed);
                        if self.telemetry.enabled() {
                            self.telemetry.ops_staged.inc();
                        }
                        // The staging ack is the client-visible reply;
                        // the worker completes the span post-backend.
                        span.enqueue_ns = self.telemetry.now_ns();
                        span.reply_ns = span.enqueue_ns;
                        let item = WorkItem::StagedWrite {
                            fd,
                            op,
                            offset,
                            buf,
                            span,
                        };
                        if let Some(serializer) = self.serializer.clone() {
                            if let Some(item) = serializer.admit(fd, item) {
                                if let Err(closed) = self.queue.push(item) {
                                    run_staged_inline(
                                        &self.engine,
                                        &self.telemetry,
                                        *closed.0,
                                        Disposition::Completed,
                                    );
                                    while let Some(next) = serializer.complete(fd) {
                                        run_staged_inline(
                                            &self.engine,
                                            &self.telemetry,
                                            next,
                                            Disposition::Completed,
                                        );
                                    }
                                }
                            }
                        } else if let Err(closed) = self.queue.push(item) {
                            run_staged_inline(
                                &self.engine,
                                &self.telemetry,
                                *closed.0,
                                Disposition::Completed,
                            );
                        }
                        let mut ack = Frame::response(
                            frame.client_id,
                            frame.seq,
                            &Response::Staged { op },
                            Bytes::new(),
                        );
                        if span.trace_id != 0 {
                            ack = ack.with_ext(TraceExt::Echo(stage_echo_of(&span)));
                        }
                        self.enqueue_wire(conn, ack);
                        return;
                    }
                };
                self.fail_inline(conn, frame.client_id, frame.seq, &mut span, &resp);
            }
            Request::Read { fd, .. } | Request::Pread { fd, .. } => {
                // Read barrier blocks on `wait_idle`; run it off-loop.
                let reply = self.reply_to(tok, frame.client_id, frame.seq);
                conn.inflight += 1;
                let task = SyncTask::BarrierThenQueue {
                    fd,
                    req,
                    data: frame.data,
                    reply,
                    span,
                };
                self.send_sync(task);
            }
            // Metadata ops and oversized writes (falling through the
            // size guard above) execute synchronously — on the executor
            // pool, since they touch the filesystem. `Shutdown` and
            // `Stats` are consumed by `admit` and never reach here, but
            // routing them through the executor would be harmless (the
            // engine rejects a stray `Stats` with `Inval`).
            other @ (Request::Open { .. }
            | Request::Connect { .. }
            | Request::Close { .. }
            | Request::Write { .. }
            | Request::Pwrite { .. }
            | Request::Lseek { .. }
            | Request::Fsync { .. }
            | Request::Stat { .. }
            | Request::Fstat { .. }
            | Request::Unlink { .. }
            | Request::Ftruncate { .. }
            | Request::Mkdir { .. }
            | Request::Readdir { .. }
            | Request::Stats { .. }
            | Request::Shutdown) => {
                let reply = self.reply_to(tok, frame.client_id, frame.seq);
                self.track_pending(conn, frame.seq, &other);
                conn.inflight += 1;
                let task = SyncTask::Execute {
                    req: other,
                    data: frame.data,
                    reply,
                    span,
                };
                self.send_sync(task);
            }
        }
    }

    /// Hand a task to the sync-executor pool, keeping the
    /// `sync_queue_depth` gauge honest on the failure path.
    fn send_sync(&self, task: SyncTask) {
        if self.telemetry.enabled() {
            self.telemetry.sync_queue_depth.add(1);
        }
        if let Err(send_err) = self.sync_tx.send(task) {
            if self.telemetry.enabled() {
                self.telemetry.sync_queue_depth.add(-1);
            }
            fail_sync_task(send_err.0);
        }
    }

    fn track_pending(&self, conn: &mut ConnState, seq: u64, req: &Request) {
        match req {
            Request::Open { .. } | Request::Connect { .. } => {
                conn.pending.insert(seq, PendingOp::Open);
            }
            Request::Close { fd } => {
                conn.pending.insert(seq, PendingOp::Close(*fd));
            }
            Request::Write { .. }
            | Request::Pwrite { .. }
            | Request::Read { .. }
            | Request::Pread { .. }
            | Request::Lseek { .. }
            | Request::Fsync { .. }
            | Request::Stat { .. }
            | Request::Fstat { .. }
            | Request::Unlink { .. }
            | Request::Ftruncate { .. }
            | Request::Mkdir { .. }
            | Request::Readdir { .. }
            | Request::Stats { .. }
            | Request::Shutdown => {}
        }
    }

    fn reply_to(&self, tok: usize, client_id: u32, seq: u64) -> ReplyTo {
        ReplyTo::Reactor {
            sink: self.sink.clone(),
            token: tok,
            gen: self.slots.get(tok).map_or(0, |s| s.gen),
            client_id,
            seq,
        }
    }

    fn park_queue(&mut self, conn: &mut ConnState, frame: Frame) {
        if !conn.parked_queue {
            conn.parked_queue = true;
            if self.telemetry.enabled() {
                self.telemetry.backpressure_events.inc();
                if let Some(stats) = &conn.stats {
                    stats.backpressure_events.inc();
                }
            }
        }
        conn.parked_frame = Some(frame);
    }

    fn park_bml(&mut self, conn: &mut ConnState, frame: Frame) {
        if !conn.parked_bml {
            conn.parked_bml = true;
            if self.telemetry.enabled() {
                self.telemetry.backpressure_events.inc();
                if let Some(stats) = &conn.stats {
                    stats.backpressure_events.inc();
                }
            }
        }
        conn.parked_frame = Some(frame);
    }

    /// Complete a span as failed and queue the error reply, all inline.
    fn fail_inline(
        &mut self,
        conn: &mut ConnState,
        client_id: u32,
        seq: u64,
        span: &mut OpSpan,
        resp: &Response,
    ) {
        let now = self.telemetry.now_ns();
        span.enqueue_ns = now;
        span.dispatch_ns = now;
        span.ok = false;
        span.errno = response_errno(resp);
        span.reply_ns = self.telemetry.now_ns();
        let mut frame = Frame::response(client_id, seq, resp, Bytes::new());
        if span.trace_id != 0 {
            frame = frame.with_ext(TraceExt::Echo(stage_echo_of(span)));
        }
        self.telemetry.complete(span);
        self.enqueue_wire(conn, frame);
    }

    // -- write path ---------------------------------------------------

    fn enqueue_wire(&mut self, conn: &mut ConnState, frame: Frame) {
        if conn.dead {
            return;
        }
        let data_len = frame.data.len() as u64;
        // Large payloads ride the wbuf as their own segment, by
        // reference: a slab-backed read reply or an echoed receive-view
        // goes socket-ward without ever being re-copied into a
        // contiguous wire image. `flush` already walks segments with a
        // partial-write cursor, so a two-segment frame needs no new
        // bookkeeping there.
        let queued = if frame.data.len() >= Frame::SPLIT_SEND_MIN {
            let header = frame.encode_header();
            let total = header.len() + frame.data.len();
            conn.wbuf.push_back(header);
            conn.wbuf.push_back(frame.data);
            total
        } else {
            let wire = frame.encode();
            let total = wire.len();
            conn.wbuf.push_back(wire);
            total
        };
        conn.wbuf_bytes += queued;
        if self.telemetry.enabled() {
            self.telemetry.frames_out.inc();
            self.telemetry.transport_bytes_out.add(data_len);
            self.telemetry.wbuf_bytes.add(queued as i64);
            if let Some(stats) = &conn.stats {
                stats.bytes_out.add(data_len);
                stats.note_wbuf(conn.wbuf_bytes as u64);
            }
        }
        self.flush(conn);
        // Write-side backpressure: a client not reading its replies
        // stops being read from until the backlog halves.
        if conn.wbuf_bytes > self.cfg.max_write_buffer && !conn.parked_wbuf {
            conn.parked_wbuf = true;
            if self.telemetry.enabled() {
                self.telemetry.backpressure_events.inc();
                if let Some(stats) = &conn.stats {
                    stats.backpressure_events.inc();
                }
            }
        }
    }

    fn flush(&mut self, conn: &mut ConnState) {
        while let Some(front) = conn.wbuf.front() {
            let off = conn.wbuf_off.min(front.len());
            match (&conn.stream).write(&front[off..]) {
                Ok(0) => {
                    conn.dead = true;
                    return;
                }
                Ok(n) => {
                    conn.wbuf_bytes = conn.wbuf_bytes.saturating_sub(n);
                    if self.telemetry.enabled() {
                        self.telemetry.wbuf_bytes.add(-(n as i64));
                    }
                    conn.wbuf_off = off + n;
                    if conn.wbuf_off >= front.len() {
                        conn.wbuf_off = 0;
                        conn.wbuf.pop_front();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
        if conn.parked_wbuf && conn.wbuf_bytes <= self.cfg.max_write_buffer / 2 {
            conn.parked_wbuf = false;
            // Read side resumes — on the hot list, not via poll
            // interest alone: the frames this park deferred are already
            // sitting in rbuf, so the (level-triggered) socket may never
            // signal readable again. Every flush path must do this, not
            // just the EPOLLOUT one; a completion's enqueue_wire can be
            // the flush that crosses the low-water mark, and if it
            // skips the hot list the buffered frames are stranded for
            // good (worker idle, loop parked on its tick).
            conn.want_hot = true;
        }
        conn.maybe_finished();
    }

    fn flush_conn(&mut self, tok: usize) {
        let Some(mut conn) = self.slots.get_mut(tok).and_then(|s| s.conn.take()) else {
            return;
        };
        self.flush(&mut conn);
        self.finish_conn(tok, conn);
    }

    // -- slot lifecycle -----------------------------------------------

    /// Put a connection back in its slot (recomputing poll interest),
    /// or tear it down if it died.
    fn finish_conn(&mut self, tok: usize, conn: ConnState) {
        if conn.dead {
            self.destroy(tok, conn);
            return;
        }
        let interest = Interest {
            readable: !conn.parked() && !conn.peer_closed && !conn.close_after_flush,
            writable: !conn.wbuf.is_empty(),
        };
        let want_hot = conn.want_hot;
        let fd_tok = {
            let mut conn = conn;
            if interest != conn.interest
                && self
                    .poller
                    .modify(conn.stream.as_raw_fd(), interest)
                    .is_ok()
            {
                conn.interest = interest;
            }
            conn.want_hot = false;
            if let Some(slot) = self.slots.get_mut(tok) {
                slot.conn = Some(conn);
                Some(tok)
            } else {
                None
            }
        };
        if want_hot {
            if let Some(tok) = fd_tok {
                self.push_hot(tok);
            }
        }
    }

    fn destroy(&mut self, tok: usize, conn: ConnState) {
        self.poller.delete(conn.stream.as_raw_fd());
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        if !conn.fds.is_empty() {
            let fds: Vec<Fd> = conn.fds.iter().copied().collect();
            // Reclaim barriers staged writes (close waits for them), so
            // it must happen off-loop; at teardown the executors may be
            // gone, in which case we reclaim inline — the loop is done
            // serving clients anyway.
            if self.telemetry.enabled() {
                self.telemetry.sync_queue_depth.add(1);
            }
            if let Err(send_err) = self.sync_tx.send(SyncTask::Reclaim { fds }) {
                if self.telemetry.enabled() {
                    self.telemetry.sync_queue_depth.add(-1);
                }
                if let SyncTask::Reclaim { fds } = send_err.0 {
                    for fd in fds {
                        let _ = self.engine.execute(&Request::Close { fd }, &Bytes::new());
                    }
                }
            }
        }
        if self.telemetry.enabled() {
            self.telemetry.conns_open.add(-1);
            // Release this connection's share of the un-flushed-bytes
            // gauge; its replies die with the socket.
            self.telemetry.wbuf_bytes.add(-(conn.wbuf_bytes as i64));
        }
        if let Some(slot) = self.slots.get_mut(tok) {
            slot.gen = slot.gen.wrapping_add(1);
            slot.conn = None;
        }
        self.free.push(tok);
    }

    fn teardown(&mut self) {
        for tok in 0..self.slots.len() {
            let conn = self.slots.get_mut(tok).and_then(|s| s.conn.take());
            if let Some(conn) = conn {
                self.destroy(tok, conn);
            }
        }
        // Late completions: nowhere to reply, but every span folds in.
        while let Ok(c) = self.comp_rx.try_recv() {
            let mut span = c.span;
            span.reply_ns = self.telemetry.now_ns();
            self.telemetry.complete(&span);
        }
    }
}

/// Fail a queue-rejected item the way the threaded handlers do.
fn fail_queued_item(item: WorkItem) {
    if let WorkItem::Sync {
        reply, mut span, ..
    } = item
    {
        span.ok = false;
        span.errno = Errno::Again.to_wire();
        span.disposition = Disposition::QueueRejected;
        span.dispatch_ns = span.enqueue_ns;
        reply.deliver(
            Response::Err {
                errno: Errno::Again,
            },
            Bytes::new(),
            span,
        );
    }
}

/// Fail a task whose executor pool is gone (shutdown race).
fn fail_sync_task(task: SyncTask) {
    match task {
        SyncTask::Execute {
            reply, mut span, ..
        }
        | SyncTask::BarrierThenQueue {
            reply, mut span, ..
        } => {
            span.ok = false;
            span.errno = Errno::Again.to_wire();
            span.dispatch_ns = span.enqueue_ns;
            reply.deliver(
                Response::Err {
                    errno: Errno::Again,
                },
                Bytes::new(),
                span,
            );
        }
        SyncTask::Reclaim { .. } => {}
    }
}

/// Blocking-work executor: metadata ops, read barriers, descriptor
/// reclamation. Exits when every event loop has dropped its sender.
fn sync_executor_loop(
    rx: Receiver<SyncTask>,
    engine: Arc<Engine>,
    queue: Arc<WorkQueue>,
    telemetry: Arc<Telemetry>,
) {
    while let Ok(task) = rx.recv() {
        let run_from = if telemetry.enabled() {
            telemetry.sync_queue_depth.add(-1);
            telemetry.now_ns()
        } else {
            0
        };
        match task {
            SyncTask::Execute {
                req,
                data,
                reply,
                mut span,
            } => {
                let now = telemetry.now_ns();
                span.enqueue_ns = now;
                span.dispatch_ns = now;
                let (resp, out) = engine.execute_timed(&req, &data, &mut span);
                reply.deliver(resp, out, span);
            }
            SyncTask::BarrierThenQueue {
                fd,
                req,
                data,
                reply,
                mut span,
            } => {
                if let Err(errno) = engine.descriptor_db().wait_idle(fd) {
                    span.ok = false;
                    span.errno = errno.to_wire();
                    let now = telemetry.now_ns();
                    span.enqueue_ns = now;
                    span.dispatch_ns = now;
                    reply.deliver(Response::Err { errno }, Bytes::new(), span);
                    continue;
                }
                span.enqueue_ns = telemetry.now_ns();
                if let Err(closed) = queue.push(WorkItem::Sync {
                    req,
                    data,
                    reply,
                    span,
                }) {
                    fail_queued_item(*closed.0);
                }
            }
            SyncTask::Reclaim { fds } => {
                for fd in fds {
                    let _ = engine.execute(&Request::Close { fd }, &Bytes::new());
                }
            }
        }
        if run_from > 0 {
            telemetry
                .sync_run_ns
                .record(telemetry.now_ns().saturating_sub(run_from));
        }
    }
}

/// Start the reactor: `cfg.threads` event loops (loop 0 owns the
/// listener) plus `cfg.sync_executors` blocking-work threads.
///
/// Fails if the poller is unsupported on this target (caller falls back
/// to the threaded transport) or thread spawning fails.
pub(crate) fn spawn(
    acceptor: Arc<TcpAcceptor>,
    engine: Arc<Engine>,
    queue: Arc<WorkQueue>,
    serializer: Option<Arc<FdSerializer>>,
    staged: bool,
    cfg: ReactorConfig,
) -> io::Result<ReactorHandle> {
    let telemetry = engine.telemetry().clone();
    let n = cfg.threads.max(1);
    acceptor.set_nonblocking(true)?;

    let mut pollers = Vec::with_capacity(n);
    let mut wakers = Vec::with_capacity(n);
    for _ in 0..n {
        let poller = Poller::new()?;
        wakers.push(poller.waker());
        pollers.push(poller);
    }
    if let Some(p0) = pollers.first_mut() {
        p0.add(acceptor.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)?;
    }

    let stop = Arc::new(AtomicBool::new(false));
    let (sync_tx, sync_rx) = unbounded::<SyncTask>();
    let mut conn_txs = Vec::with_capacity(n);
    let mut conn_rxs = VecDeque::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded::<TcpStream>();
        conn_txs.push(tx);
        conn_rxs.push_back(rx);
    }

    let mut sync_threads = Vec::new();
    for i in 0..cfg.sync_executors.max(1) {
        let rx = sync_rx.clone();
        let engine = engine.clone();
        let queue = queue.clone();
        let telemetry = telemetry.clone();
        match std::thread::Builder::new()
            .name(format!("iofwd-sync-{i}"))
            .spawn(move || sync_executor_loop(rx, engine, queue, telemetry))
        {
            Ok(h) => sync_threads.push(h),
            Err(e) => {
                drop(sync_tx);
                for t in sync_threads {
                    let _ = t.join();
                }
                return Err(e);
            }
        }
    }
    drop(sync_rx);

    let mut threads = Vec::with_capacity(n);
    for (idx, poller) in pollers.into_iter().enumerate() {
        let Some(conn_rx) = conn_rxs.pop_front() else {
            break;
        };
        let (comp_tx, comp_rx) = unbounded::<Completion>();
        let sink = Arc::new(ReactorSink {
            tx: comp_tx,
            waker: poller.waker(),
            telemetry: telemetry.clone(),
        });
        let thread = ReactorThread {
            idx,
            poller,
            slots: Vec::new(),
            free: Vec::new(),
            hot: VecDeque::new(),
            events: Vec::new(),
            conn_rx,
            comp_rx,
            sink,
            sync_tx: sync_tx.clone(),
            engine: engine.clone(),
            queue: queue.clone(),
            serializer: serializer.clone(),
            bml: engine.bml().cloned(),
            staged,
            telemetry: telemetry.clone(),
            cfg,
            stop: stop.clone(),
            acceptor: (idx == 0).then(|| acceptor.clone()),
            assign: if idx == 0 {
                conn_txs.clone()
            } else {
                Vec::new()
            },
            assign_wakers: if idx == 0 { wakers.clone() } else { Vec::new() },
            rr: 0,
            next_accept_at: None,
        };
        match std::thread::Builder::new()
            .name(format!("iofwd-reactor-{idx}"))
            .spawn(move || thread.run())
        {
            Ok(h) => threads.push(h),
            Err(e) => {
                stop.store(true, Ordering::Release);
                for w in &wakers {
                    w.wake();
                }
                for t in threads {
                    let _ = t.join();
                }
                drop(sync_tx);
                drop(conn_txs);
                for t in sync_threads {
                    let _ = t.join();
                }
                return Err(e);
            }
        }
    }
    // The spawned loops hold the only live senders now; dropping ours
    // lets the executor pool hang up once the loops exit.
    drop(sync_tx);
    drop(conn_txs);

    Ok(ReactorHandle {
        stop,
        wakers,
        threads,
        sync_threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemSinkBackend;
    use crate::client::Client;
    use crate::server::{ForwardingMode, IonServer, ServerConfig};
    use crate::transport::tcp::{TcpAcceptor, TcpConn};
    use iofwd_proto::OpenFlags;
    use std::io::Read;

    fn reactor_server(
        mode: ForwardingMode,
        cfg: ReactorConfig,
    ) -> (IonServer, std::net::SocketAddr) {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
        let addr = acceptor.local_addr().expect("addr");
        let server = IonServer::spawn_reactor(
            acceptor,
            Arc::new(MemSinkBackend::new()),
            ServerConfig::new(mode),
            cfg,
        )
        .expect("spawn reactor");
        (server, addr)
    }

    /// Read frames off a raw socket until `n` responses have arrived.
    fn read_responses(stream: &mut TcpStream, n: usize) -> Vec<Frame> {
        let mut buf = BytesMut::new();
        let mut out = Vec::new();
        while out.len() < n {
            match Frame::decode(&buf).expect("well-formed response stream") {
                Some((frame, used)) => {
                    let _ = buf.split_to(used);
                    out.push(frame);
                }
                None => {
                    let got = buf.read_from(stream, 4096).expect("read");
                    assert!(got > 0, "server hung up early ({}/{n} replies)", out.len());
                }
            }
        }
        out
    }

    #[test]
    fn partial_frame_reads_reassemble_across_many_small_writes() {
        let (server, addr) = reactor_server(
            ForwardingMode::Sched { workers: 1 },
            ReactorConfig::default(),
        );
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");

        // One open + one pwrite, dribbled onto the wire a few bytes at
        // a time: the reactor must hold partial frames across many
        // read(2)s and admit each frame exactly once.
        let payload = vec![0xabu8; 512];
        let open = Frame::request(
            7,
            1,
            &Request::Open {
                path: "/dribble".into(),
                flags: OpenFlags::CREATE | OpenFlags::WRONLY,
                mode: 0o644,
            },
            Bytes::new(),
        )
        .encode();
        for chunk in open.chunks(7) {
            stream.write_all(chunk).expect("write chunk");
            stream.flush().expect("flush");
            std::thread::sleep(Duration::from_millis(1));
        }
        let open_reply = read_responses(&mut stream, 1).remove(0);
        assert_eq!(open_reply.seq, 1);
        let fd = match open_reply.decode_response().expect("open resp") {
            Response::Ok { ret } => Fd(ret as u32),
            other => panic!("open failed: {other:?}"),
        };
        let pwrite = Frame::request(
            7,
            2,
            &Request::Pwrite {
                fd,
                offset: 0,
                len: payload.len() as u64,
            },
            Bytes::copy_from_slice(&payload),
        )
        .encode();
        for chunk in pwrite.chunks(7) {
            stream.write_all(chunk).expect("write chunk");
            stream.flush().expect("flush");
            std::thread::sleep(Duration::from_millis(1));
        }
        let reply = read_responses(&mut stream, 1).remove(0);
        assert_eq!(reply.seq, 2);
        match reply.decode_response().expect("pwrite resp") {
            Response::Ok { ret } => assert_eq!(ret, payload.len() as i64),
            other => panic!("pwrite failed: {other:?}"),
        }
        drop(stream);
        server.shutdown();
    }

    #[test]
    fn write_backpressure_parks_the_reader_and_every_reply_still_arrives() {
        let cfg = ReactorConfig {
            // Tiny reply budget so pipelined 64 KiB pread responses
            // trip the write-side park immediately.
            max_write_buffer: 4096,
            ..ReactorConfig::default()
        };
        // One worker: the shared FIFO then guarantees per-client reply
        // order, so the ordering assertion below is meaningful.
        let (server, addr) = reactor_server(ForwardingMode::Sched { workers: 1 }, cfg);
        let telemetry = server.telemetry();

        let mut setup = Client::connect(Box::new(TcpConn::connect(addr).expect("connect")));
        let fd = setup
            .open("/big", OpenFlags::CREATE | OpenFlags::WRONLY, 0o644)
            .expect("open");
        let block = vec![0x5au8; 64 * 1024];
        setup.pwrite(fd, 0, &block).expect("pwrite");
        setup.close(fd).expect("close");
        setup.shutdown().expect("shutdown req");

        // Pipeline 128 preads (8 MiB of replies) without reading any of
        // them: the socket fills, the reactor's write buffer exceeds its
        // cap, and the connection must be parked — not killed, not
        // replied to out of order.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .write_all(
                &Frame::request(
                    9,
                    0,
                    &Request::Open {
                        path: "/big".into(),
                        flags: OpenFlags::RDONLY,
                        mode: 0,
                    },
                    Bytes::new(),
                )
                .encode(),
            )
            .expect("open");
        let open_reply = read_responses(&mut stream, 1).remove(0);
        let fd = match open_reply.decode_response().expect("open resp") {
            Response::Ok { ret } => Fd(ret as u32),
            other => panic!("open failed: {other:?}"),
        };
        let total = 128u64;
        let replies = {
            let mut wire = Vec::new();
            for seq in 1..=total {
                wire.extend_from_slice(
                    &Frame::request(
                        9,
                        seq,
                        &Request::Pread {
                            fd,
                            offset: 0,
                            len: block.len() as u64,
                        },
                        Bytes::new(),
                    )
                    .encode(),
                );
            }
            stream.write_all(&wire).expect("pipeline");
            stream.flush().expect("flush");
            std::thread::sleep(Duration::from_millis(100));
            read_responses(&mut stream, total as usize)
        };
        for (i, reply) in replies.iter().enumerate() {
            let i = i + 1;
            assert_eq!(reply.seq, i as u64, "replies must come back in order");
            match reply.decode_response().expect("pread resp") {
                Response::Ok { ret } => assert_eq!(ret, block.len() as i64),
                other => panic!("pread {i} failed: {other:?}"),
            }
            assert_eq!(reply.data.len(), block.len());
        }
        assert!(
            telemetry.backpressure_events.get() > 0,
            "8 MiB of unread replies against a 4 KiB budget must park"
        );
        drop(stream);
        server.shutdown();
    }

    #[test]
    fn injected_accept_faults_do_not_kill_the_reactor_listener() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
        let addr = acceptor.local_addr().expect("addr");
        // Every second accept attempt fails with a synthetic EMFILE
        // *before* the kernel accept, so the pending client stays in
        // the backlog and is picked up on the post-backoff retry.
        acceptor.set_accept_fault(2);
        let server = IonServer::spawn_reactor(
            acceptor,
            Arc::new(MemSinkBackend::new()),
            ServerConfig::new(ForwardingMode::AsyncStaged {
                workers: 1,
                bml_capacity: 1 << 20,
            }),
            ReactorConfig::default(),
        )
        .expect("spawn reactor");
        let telemetry = server.telemetry();

        for i in 0..6 {
            let mut client = Client::connect(Box::new(TcpConn::connect(addr).expect("connect")));
            let fd = client
                .open(
                    &format!("/chaos-{i}"),
                    OpenFlags::CREATE | OpenFlags::WRONLY,
                    0o644,
                )
                .expect("open");
            client.pwrite(fd, 0, b"still alive").expect("pwrite");
            client.close(fd).expect("close");
            client.shutdown().expect("shutdown req");
        }
        assert!(
            telemetry.accept_errors.get() >= 3,
            "fault injection must have fired"
        );
        server.shutdown();
    }

    #[test]
    fn disconnect_mid_pipeline_reclaims_descriptors() {
        let (server, addr) = reactor_server(
            ForwardingMode::AsyncStaged {
                workers: 1,
                bml_capacity: 1 << 20,
            },
            ReactorConfig::default(),
        );
        {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let wire = Frame::request(
                3,
                1,
                &Request::Open {
                    path: "/abandoned".into(),
                    flags: OpenFlags::CREATE | OpenFlags::WRONLY,
                    mode: 0o644,
                },
                Bytes::new(),
            )
            .encode();
            stream.write_all(&wire).expect("write");
            // Wait for the open reply so the descriptor is definitely
            // allocated and session-tracked, then vanish without Close.
            let mut byte = [0u8; 1];
            assert!(stream.read(&mut byte).expect("reply") > 0);
            std::mem::drop(stream);
        }
        // The reactor notices the EOF, tears the slot down, and the
        // sync pool reclaims the orphaned descriptor.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.open_descriptors() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            server.open_descriptors(),
            0,
            "orphaned fd must be reclaimed"
        );
        server.shutdown();
    }
}
