//! Live introspection plane: answers [`Request::Stats`] queries.
//!
//! A stats query never touches the work queue, the BML, or the
//! descriptor database — [`answer`] is pure memory reads against the
//! telemetry registry — so the daemon keeps answering `iofwd-cp stats`
//! even when the data path is wedged behind a stalled backend. That is
//! the whole point: the moment you most need introspection is the
//! moment the work queue stops moving.
//!
//! Queries arrive on two paths:
//!
//! - **In-band**: a `Request::Stats` frame on a normal client
//!   connection. Both transports intercept it right after decode
//!   (threads: `handlers::try_answer_stats`; reactor: inline in
//!   `admit`) and reply before any enqueue.
//! - **Out-of-band**: a dedicated `--stats-addr` TCP listener served by
//!   [`spawn`]. This port speaks the same framed protocol but accepts
//!   *only* stats queries, so an operator can always get a socket even
//!   when every data connection is parked under backpressure.

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use iofwd_proto::{Errno, Frame, Request, Response, StatsQuery};

use crate::telemetry::{snapshot, Telemetry};
use crate::transport::tcp::TcpAcceptor;
use crate::transport::{Conn, Listener};

/// Ring points folded into a rates reply: at the daemon's 1 s
/// time-series tick this is a ~10 s window — long enough to smooth
/// scheduling jitter, short enough to track a phase change.
pub const RATES_WINDOW_POINTS: usize = 10;

/// Render the reply for one stats query. Reads counters, gauges,
/// histogram shards, the per-client table, and the time-series ring;
/// takes no lock any data-path operation ever holds while blocking.
/// The payload length rides in `Response::Ok::ret` so existing clients
/// need no new response variant.
pub fn answer(telemetry: &Telemetry, query: StatsQuery) -> (Response, Bytes) {
    let text = match query {
        StatsQuery::Snapshot => snapshot::capture(telemetry).to_json(),
        StatsQuery::Rates => {
            snapshot::render_rates_json(&telemetry.timeseries.rates(RATES_WINDOW_POINTS))
        }
        StatsQuery::Prometheus => {
            let rates = telemetry.timeseries.rates(RATES_WINDOW_POINTS);
            snapshot::capture(telemetry).render_prometheus(Some(&rates))
        }
    };
    let data = Bytes::from(text.into_bytes());
    (
        Response::Ok {
            ret: data.len() as i64,
        },
        data,
    )
}

/// The out-of-band stats listener. Dropping without
/// [`shutdown`](IntrospectHandle::shutdown) detaches the accept thread.
pub struct IntrospectHandle {
    acceptor: Arc<TcpAcceptor>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl IntrospectHandle {
    /// The bound address (useful with a `:0` bind in tests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread. Per-connection
    /// threads exit when their client hangs up.
    pub fn shutdown(mut self) {
        self.acceptor.shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Serve one stats connection: only `Request::Stats` is honored;
/// anything else (including data ops aimed at the wrong port) gets
/// `Errno::Inval`. `if let` rather than a `match` over `Request` so the
/// wire enum keeps exactly one exhaustive dispatch site (lint R3).
fn serve_conn(conn: Box<dyn Conn>, telemetry: &Telemetry) {
    while let Ok(Some(frame)) = conn.recv() {
        let (resp, data) = if let Ok(Request::Stats { query }) = frame.decode_request() {
            answer(telemetry, query)
        } else {
            (
                Response::Err {
                    errno: Errno::Inval,
                },
                Bytes::new(),
            )
        };
        if conn
            .send(Frame::response(frame.client_id, frame.seq, &resp, data))
            .is_err()
        {
            return;
        }
    }
}

/// Bind-and-serve for the `--stats-addr` flag: a thread-per-connection
/// accept loop answering framed stats queries. Connection counts here
/// are tiny (operators and harnesses, not compute nodes), so threads
/// are the simple, correct tool.
pub fn spawn(acceptor: TcpAcceptor, telemetry: Arc<Telemetry>) -> io::Result<IntrospectHandle> {
    let addr = acceptor.local_addr()?;
    let acceptor = Arc::new(acceptor);
    let accept_thread = {
        let acceptor = acceptor.clone();
        std::thread::Builder::new()
            .name("iofwd-stats".into())
            .spawn(move || {
                // Transient accept failures must not kill the stats
                // port; only shutdown() (Ok(None)) ends the loop.
                loop {
                    match acceptor.accept() {
                        Ok(Some(conn)) => {
                            let telemetry = telemetry.clone();
                            let spawned = std::thread::Builder::new()
                                .name("iofwd-stats-conn".into())
                                .spawn(move || serve_conn(conn, &telemetry));
                            // Thread exhaustion: drop the connection;
                            // the client sees EOF and can retry.
                            drop(spawned);
                        }
                        Ok(None) => return,
                        Err(_) => {
                            std::thread::sleep(std::time::Duration::from_millis(10));
                        }
                    }
                }
            })?
    };
    Ok(IntrospectHandle {
        acceptor,
        addr,
        accept_thread: Some(accept_thread),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::TelemetrySnapshot;
    use crate::transport::tcp::TcpConn;

    fn query(conn: &TcpConn, seq: u64, q: StatsQuery) -> (Response, Bytes) {
        conn.send(Frame::request(
            0,
            seq,
            &Request::Stats { query: q },
            Bytes::new(),
        ))
        .expect("send");
        let frame = conn.recv().expect("recv").expect("open stream");
        (frame.decode_response().expect("response"), frame.data)
    }

    #[test]
    fn stats_listener_answers_all_three_queries() {
        let telemetry = Arc::new(Telemetry::new());
        telemetry.ops_completed.add(41);
        telemetry.tick_timeseries();
        telemetry.ops_completed.add(1);
        telemetry.tick_timeseries();
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
        let handle = spawn(acceptor, telemetry).expect("spawn stats listener");

        let conn = TcpConn::connect(handle.addr()).expect("connect");
        let (resp, data) = query(&conn, 1, StatsQuery::Snapshot);
        assert!(matches!(resp, Response::Ok { ret } if ret == data.len() as i64));
        let snap = TelemetrySnapshot::from_json(std::str::from_utf8(&data).expect("utf8"))
            .expect("snapshot json parses");
        assert_eq!(snap.counter("ops_completed"), 42);

        let (resp, data) = query(&conn, 2, StatsQuery::Rates);
        assert!(matches!(resp, Response::Ok { .. }));
        let text = std::str::from_utf8(&data).expect("utf8");
        assert!(text.contains("\"ops_per_s\""), "rates json: {text}");

        let (resp, data) = query(&conn, 3, StatsQuery::Prometheus);
        assert!(matches!(resp, Response::Ok { .. }));
        let text = std::str::from_utf8(&data).expect("utf8");
        snapshot::validate_prometheus(text).expect("prometheus text parses");

        handle.shutdown();
    }

    #[test]
    fn non_stats_requests_on_the_stats_port_get_inval() {
        let telemetry = Arc::new(Telemetry::new());
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
        let handle = spawn(acceptor, telemetry).expect("spawn stats listener");
        let conn = TcpConn::connect(handle.addr()).expect("connect");
        conn.send(Frame::request(0, 1, &Request::Shutdown, Bytes::new()))
            .expect("send");
        let frame = conn.recv().expect("recv").expect("open stream");
        assert!(matches!(
            frame.decode_response().expect("response"),
            Response::Err {
                errno: Errno::Inval
            }
        ));
        handle.shutdown();
    }
}
