//! Per-client handler loops, one flavour per forwarding mode.
//!
//! * [`handle_zoid`] — the ZOID baseline (§II-B2): the handler thread for
//!   a compute node executes that node's I/O itself.
//! * [`handle_ciod`] — the CIOD architecture (§II-B1): the daemon-side
//!   thread copies each request into a "shared-memory region" (an honest
//!   extra copy) and hands it to a dedicated per-client *proxy*, which
//!   executes the I/O and replies.
//! * [`handle_sched`] — I/O scheduling (§IV): the handler enqueues the
//!   task on the shared work queue and sleeps until a worker finishes it.
//! * [`handle_staged`] — I/O scheduling + asynchronous data staging
//!   (§IV): data writes are copied into BML buffers, acknowledged
//!   immediately (`Response::Staged`), and executed by the worker pool;
//!   metadata operations stay synchronous, with `fsync`/`close`/reads
//!   acting as barriers.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded};
use iofwd_proto::{Errno, Frame, OpId, Request, Response, StageEcho, TraceContext, TraceExt};

use super::engine::{op_kind, response_errno, Engine};
use super::queue::{ReplyTo, StagedPart, WorkItem, WorkQueue};
use super::staged::FdSerializer;
use super::{CoalesceConfig, HotPath};
use crate::descdb::{BeginError, OpOutcome};
use crate::telemetry::{Disposition, OpKind, OpSpan, Telemetry};
use crate::transport::Conn;

/// Descriptors opened by one client connection, so a vanished client's
/// descriptors can be reclaimed (a compute node that dies mid-job must
/// not leak ION resources).
#[derive(Default)]
pub(crate) struct Session {
    fds: std::collections::HashSet<iofwd_proto::Fd>,
}

impl Session {
    /// Observe a request/response pair and update the descriptor set.
    fn track(&mut self, req: &Request, resp: &Response) {
        match req {
            Request::Open { .. } | Request::Connect { .. } => {
                if let Response::Ok { ret } = resp {
                    self.fds.insert(iofwd_proto::Fd(*ret as u32));
                }
            }
            Request::Close { fd } => {
                if matches!(resp, Response::Ok { .. } | Response::DeferredErr { .. }) {
                    self.fds.remove(fd);
                }
            }
            // No other operation creates or retires a descriptor.
            Request::Write { .. }
            | Request::Pwrite { .. }
            | Request::Read { .. }
            | Request::Pread { .. }
            | Request::Lseek { .. }
            | Request::Fsync { .. }
            | Request::Stat { .. }
            | Request::Fstat { .. }
            | Request::Unlink { .. }
            | Request::Shutdown
            | Request::Stats { .. }
            | Request::Ftruncate { .. }
            | Request::Mkdir { .. }
            | Request::Readdir { .. } => {}
        }
    }

    /// Close everything the departed client left open.
    fn reclaim(self, engine: &Engine) {
        for fd in self.fds {
            let _ = engine.execute(&Request::Close { fd }, &Bytes::new());
        }
    }
}

fn send_response(conn: &dyn Conn, client: u32, seq: u64, resp: &Response, data: Bytes) {
    // A send failure means the client vanished; the handler loop will
    // observe the closed connection on its next recv.
    let _ = conn.send(Frame::response(client, seq, resp, data));
}

/// Seed-arm receive copy: re-materialise the payload as a fresh heap
/// allocation, re-enacting the pre-zero-copy profile where every frame
/// was deep-copied out of the receive buffer before processing. A no-op
/// on the fast path, where the payload stays a view of the receive
/// buffer end to end.
pub(crate) fn maybe_deep_copy_rx(hotpath: HotPath, telemetry: &Telemetry, frame: &mut Frame) {
    if hotpath == HotPath::Seed && !frame.data.is_empty() {
        if telemetry.enabled() {
            telemetry.hotpath_alloc_bytes.add(frame.data.len() as u64);
        }
        frame.data = Bytes::copy_from_slice(&frame.data);
    }
}

/// Seed-arm transmit copy, the reply-side mirror of
/// [`maybe_deep_copy_rx`]: re-materialise a reply payload as a fresh
/// heap allocation before it reaches the transport, re-enacting the
/// pre-split-send profile where every reply was serialised into a
/// contiguous wire image (header plus payload memcpy). A no-op on the
/// fast path, where a large payload travels to the socket by reference
/// from the slab block it was read into.
pub(crate) fn maybe_deep_copy_tx(hotpath: HotPath, telemetry: &Telemetry, data: &mut Bytes) {
    if hotpath == HotPath::Seed && !data.is_empty() {
        if telemetry.enabled() {
            telemetry.hotpath_alloc_bytes.add(data.len() as u64);
        }
        *data = Bytes::copy_from_slice(data);
    }
}

/// Adopt the client's trace context (if the frame carries one) onto the
/// op's lifecycle span, so the id survives queueing, staging, and the
/// worker pool, and shows up in the flight recorder and trace exporter.
pub(crate) fn apply_trace(span: &mut OpSpan, frame: &Frame) {
    if let Some(ctx) = frame.trace_ctx() {
        span.trace_id = ctx.trace_id;
        span.sampled = ctx.is_sampled();
    }
}

/// Server-side stage breakdown echoed back to a traced client. Built
/// from the same span `Telemetry::complete` folds into the histograms,
/// so a client summing echoes reproduces the daemon's own numbers.
pub(crate) fn stage_echo_of(span: &OpSpan) -> StageEcho {
    StageEcho {
        trace_id: span.trace_id,
        flags: if span.sampled {
            TraceContext::SAMPLED
        } else {
            0
        },
        queue_ns: span.queue_wait_ns(),
        dispatch_ns: span.dispatch_lag_ns(),
        backend_ns: span.service_ns(),
        // A staged ack goes out before the backend runs
        // (backend_done_ns == 0); its reply lag is not yet measurable.
        reply_ns: if span.backend_done_ns == 0 {
            0
        } else {
            span.reply_lag_ns()
        },
        total_ns: span.total_ns(),
    }
}

/// Stamp the reply, echo the stage breakdown to traced clients, send,
/// and complete the span — in that order, so the echoed durations are
/// exactly the ones the daemon's histograms record.
fn finish_and_reply(
    conn: &dyn Conn,
    telemetry: &Telemetry,
    span: &mut OpSpan,
    client: u32,
    seq: u64,
    resp: &Response,
    data: Bytes,
) {
    span.reply_ns = telemetry.now_ns();
    let mut frame = Frame::response(client, seq, resp, data);
    if span.trace_id != 0 {
        frame = frame.with_ext(TraceExt::Echo(stage_echo_of(span)));
    }
    // Fold the span BEFORE the reply hits the wire: once a client has
    // seen its response, a stats snapshot must already account for the
    // op (the experiment harness harvests over the wire immediately
    // after its last reply).
    telemetry.complete(span);
    // A send failure means the client vanished; the handler loop will
    // observe the closed connection on its next recv.
    let _ = conn.send(frame);
}

/// Intercept a stats query right after decode: answered from telemetry
/// memory before any span, queue, or engine involvement, so the
/// introspection plane works even when the data path is wedged (see
/// `server::introspect`). Returns `true` when the frame was consumed.
/// `if let` rather than a `match` over `Request` so the wire enum keeps
/// exactly one exhaustive dispatch site per handler (lint R3).
fn try_answer_stats(conn: &dyn Conn, telemetry: &Telemetry, frame: &Frame, req: &Request) -> bool {
    let Request::Stats { query } = req else {
        return false;
    };
    let (resp, data) = super::introspect::answer(telemetry, *query);
    send_response(conn, frame.client_id, frame.seq, &resp, data);
    true
}

fn decode_or_reject(conn: &dyn Conn, frame: &Frame) -> Option<Request> {
    match frame.decode_request() {
        Ok(req) => Some(req),
        Err(_) => {
            send_response(
                conn,
                frame.client_id,
                frame.seq,
                &Response::Err {
                    errno: Errno::Inval,
                },
                Bytes::new(),
            );
            None
        }
    }
}

/// ZOID: thread-per-client, execute inline. There is no queue, so
/// arrival, enqueue, and dispatch collapse to the same instant.
pub fn handle_zoid(conn: Arc<dyn Conn>, engine: Arc<Engine>) {
    let telemetry = engine.telemetry().clone();
    let mut session = Session::default();
    while let Ok(Some(frame)) = conn.recv() {
        let Some(req) = decode_or_reject(conn.as_ref(), &frame) else {
            continue;
        };
        if try_answer_stats(conn.as_ref(), &telemetry, &frame, &req) {
            continue;
        }
        let now = telemetry.now_ns();
        let mut span = OpSpan::begin(op_kind(&req), u64::from(frame.client_id), frame.seq, now);
        span.enqueue_ns = now;
        span.dispatch_ns = now;
        span.bytes = frame.data.len() as u64;
        apply_trace(&mut span, &frame);
        let shutdown = matches!(req, Request::Shutdown);
        let (resp, data) = engine.execute_timed(&req, &frame.data, &mut span);
        session.track(&req, &resp);
        finish_and_reply(
            conn.as_ref(),
            &telemetry,
            &mut span,
            frame.client_id,
            frame.seq,
            &resp,
            data,
        );
        if shutdown {
            break;
        }
    }
    session.reclaim(&engine);
}

/// CIOD: daemon thread copies into "shared memory", a per-client proxy
/// executes. The copy is real — it is CIOD's architectural cost.
pub fn handle_ciod(conn: Arc<dyn Conn>, engine: Arc<Engine>) {
    let (shm_tx, shm_rx) = unbounded::<(Frame, OpSpan)>();
    let proxy_conn = conn.clone();
    let proxy_engine = engine.clone();
    let proxy = std::thread::Builder::new()
        .name("ciod-proxy".into())
        .spawn(move || {
            // The I/O proxy process: executes forwarded calls and returns
            // results directly to the compute node.
            let telemetry = proxy_engine.telemetry().clone();
            let mut session = Session::default();
            while let Ok((frame, mut span)) = shm_rx.recv() {
                // Queue wait = time the frame sat in the shm channel.
                span.dispatch_ns = telemetry.now_ns();
                let Some(req) = decode_or_reject(proxy_conn.as_ref(), &frame) else {
                    span.ok = false;
                    span.errno = Errno::Inval.to_wire();
                    span.reply_ns = telemetry.now_ns();
                    telemetry.complete(&span);
                    continue;
                };
                if try_answer_stats(proxy_conn.as_ref(), &telemetry, &frame, &req) {
                    // Meta-traffic, not an I/O op: the span is dropped
                    // unfolded so stats polling never skews op counters.
                    continue;
                }
                let shutdown = matches!(req, Request::Shutdown);
                let (resp, data) = proxy_engine.execute_timed(&req, &frame.data, &mut span);
                session.track(&req, &resp);
                finish_and_reply(
                    proxy_conn.as_ref(),
                    &telemetry,
                    &mut span,
                    frame.client_id,
                    frame.seq,
                    &resp,
                    data,
                );
                if shutdown {
                    break;
                }
            }
            session.reclaim(&proxy_engine);
        })
        .expect("spawn ciod proxy");

    let telemetry = engine.telemetry().clone();
    while let Ok(Some(frame)) = conn.recv() {
        let kind = match frame.decode_request() {
            Ok(ref req) => op_kind(req),
            Err(_) => OpKind::Control, // proxy will reject it
        };
        let mut span = OpSpan::begin(
            kind,
            u64::from(frame.client_id),
            frame.seq,
            telemetry.now_ns(),
        );
        span.bytes = frame.data.len() as u64;
        apply_trace(&mut span, &frame);
        // Copy the payload into the shared-memory region before the proxy
        // may touch it (CIOD's double copy, §II-B1).
        // HOTPATH: deliberate deep copy — paper fidelity, not an oversight.
        let copied = Bytes::from(frame.data.to_vec());
        let shutdown = matches!(frame.decode_request(), Ok(Request::Shutdown));
        let staged = Frame {
            data: copied,
            ..frame
        };
        span.enqueue_ns = telemetry.now_ns();
        if shm_tx.send((staged, span)).is_err() {
            break;
        }
        if shutdown {
            break;
        }
    }
    drop(shm_tx);
    let _ = proxy.join();
}

/// I/O scheduling: enqueue, wait for a worker, reply.
pub fn handle_sched(conn: Arc<dyn Conn>, engine: Arc<Engine>, queue: Arc<WorkQueue>) {
    let telemetry = engine.telemetry().clone();
    let mut session = Session::default();
    while let Ok(Some(mut frame)) = conn.recv() {
        maybe_deep_copy_rx(engine.hotpath(), &telemetry, &mut frame);
        let Some(req) = decode_or_reject(conn.as_ref(), &frame) else {
            continue;
        };
        if try_answer_stats(conn.as_ref(), &telemetry, &frame, &req) {
            continue;
        }
        let mut span = OpSpan::begin(
            op_kind(&req),
            u64::from(frame.client_id),
            frame.seq,
            telemetry.now_ns(),
        );
        span.bytes = frame.data.len() as u64;
        apply_trace(&mut span, &frame);
        if matches!(req, Request::Shutdown) {
            send_response(
                conn.as_ref(),
                frame.client_id,
                frame.seq,
                &Response::Ok { ret: 0 },
                Bytes::new(),
            );
            break;
        }
        let (tx, rx) = bounded(1);
        span.enqueue_ns = telemetry.now_ns();
        // `frame.data` moves into the item — `Bytes` would make a clone
        // cheap, but the work item owns the payload from here on, so
        // even a refcount bump is gratuitous. (CIOD's double copy at
        // its proxy hop is deliberate paper fidelity; this is not that.)
        let pushed = queue.push(WorkItem::Sync {
            req: req.clone(),
            data: frame.data,
            reply: ReplyTo::Handler(tx),
            span,
        });
        if pushed.is_err() {
            // Queue closed: the daemon is shutting down. Reply with a
            // clean transient errno instead of killing the process
            // (the old behavior was an assert in push).
            span.ok = false;
            span.errno = Errno::Again.to_wire();
            span.disposition = Disposition::QueueRejected;
            finish_and_reply(
                conn.as_ref(),
                &telemetry,
                &mut span,
                frame.client_id,
                frame.seq,
                &Response::Err {
                    errno: Errno::Again,
                },
                Bytes::new(),
            );
            break;
        }
        match rx.recv() {
            Ok((resp, mut data, mut span)) => {
                session.track(&req, &resp);
                maybe_deep_copy_tx(engine.hotpath(), &telemetry, &mut data);
                finish_and_reply(
                    conn.as_ref(),
                    &telemetry,
                    &mut span,
                    frame.client_id,
                    frame.seq,
                    &resp,
                    data,
                );
            }
            Err(_) => break, // workers gone: daemon shutting down
        }
    }
    session.reclaim(&engine);
}

/// I/O scheduling + asynchronous data staging.
pub fn handle_staged(
    conn: Arc<dyn Conn>,
    engine: Arc<Engine>,
    queue: Arc<WorkQueue>,
    serializer: Arc<FdSerializer>,
) {
    let bml = engine.bml().expect("staged mode requires a BML").clone();
    let telemetry = engine.telemetry().clone();
    let mut session = Session::default();
    while let Ok(Some(mut frame)) = conn.recv() {
        maybe_deep_copy_rx(engine.hotpath(), &telemetry, &mut frame);
        let Some(req) = decode_or_reject(conn.as_ref(), &frame) else {
            continue;
        };
        if try_answer_stats(conn.as_ref(), &telemetry, &frame, &req) {
            continue;
        }
        let mut span = OpSpan::begin(
            op_kind(&req),
            u64::from(frame.client_id),
            frame.seq,
            telemetry.now_ns(),
        );
        span.bytes = frame.data.len() as u64;
        apply_trace(&mut span, &frame);
        match req {
            Request::Shutdown => {
                send_response(
                    conn.as_ref(),
                    frame.client_id,
                    frame.seq,
                    &Response::Ok { ret: 0 },
                    Bytes::new(),
                );
                break;
            }
            Request::Write { fd, len } | Request::Pwrite { fd, len, .. }
                if len as usize <= bml.max_request() =>
            {
                let offset = if let Request::Pwrite { offset, .. } = req {
                    Some(offset)
                } else {
                    None
                };
                if len != frame.data.len() as u64 {
                    span.ok = false;
                    span.errno = Errno::Inval.to_wire();
                    finish_and_reply(
                        conn.as_ref(),
                        &telemetry,
                        &mut span,
                        frame.client_id,
                        frame.seq,
                        &Response::Err {
                            errno: Errno::Inval,
                        },
                        Bytes::new(),
                    );
                    continue;
                }
                // When the write is handed off, the worker finishes the
                // span; on the synchronous error paths below this
                // handler finishes it itself.
                let mut handed_off = false;
                let resp = match engine.descriptor_db().begin_op(fd) {
                    Err(BeginError::Sync(errno)) => Response::Err { errno },
                    Err(BeginError::Deferred { op, errno }) => {
                        engine
                            .stats
                            .deferred_errors_reported
                            .fetch_add(1, Ordering::Relaxed);
                        Response::DeferredErr { op, errno }
                    }
                    Ok((op, _obj)) => {
                        // Blocking acquisition: "if there is insufficient
                        // memory to stage the data, the I/O operation is
                        // blocked until ... sufficient memory is
                        // available" (§IV). On the fast path the BML
                        // *adopts* the receive view — capacity is charged
                        // and blocked on identically, but no bytes move;
                        // the Seed arm stages through a copy as the
                        // original implementation did.
                        let staged_buf = match engine.hotpath() {
                            HotPath::Fast => bml.adopt_timeout(frame.data.clone(), None),
                            HotPath::Seed => {
                                bml.acquire_timeout(len as usize, None).map(|mut buf| {
                                    buf.fill_from(&frame.data);
                                    buf
                                })
                            }
                        };
                        match staged_buf {
                            None => {
                                // BML closed: daemon shutting down.
                                engine.descriptor_db().finish_op(
                                    fd,
                                    op,
                                    OpOutcome::Failed(Errno::NoMem),
                                );
                                Response::Err {
                                    errno: Errno::NoMem,
                                }
                            }
                            Some(buf) => {
                                engine.stats.requests.fetch_add(1, Ordering::Relaxed);
                                engine.stats.bytes_in.fetch_add(len, Ordering::Relaxed);
                                engine.stats.staged_ops.fetch_add(1, Ordering::Relaxed);
                                if telemetry.enabled() {
                                    telemetry.ops_staged.inc();
                                }
                                // The staging ack goes out right after the
                                // push; stamp the client-visible reply now
                                // (OpSpan is Copy — the worker's copy keeps
                                // these stamps and adds the backend ones).
                                span.enqueue_ns = telemetry.now_ns();
                                span.reply_ns = span.enqueue_ns;
                                handed_off = true;
                                let item = WorkItem::StagedWrite {
                                    fd,
                                    op,
                                    offset,
                                    buf,
                                    span,
                                };
                                if let Some(item) = serializer.admit(fd, item) {
                                    if let Err(closed) = queue.push(item) {
                                        // Queue closed under us: the
                                        // worker pool will never run
                                        // this write, so execute it
                                        // inline (plus any successors
                                        // the lane releases) to keep
                                        // the `Staged` ack truthful.
                                        run_staged_inline(
                                            &engine,
                                            &telemetry,
                                            *closed.0,
                                            Disposition::Completed,
                                        );
                                        while let Some(next) = serializer.complete(fd) {
                                            run_staged_inline(
                                                &engine,
                                                &telemetry,
                                                next,
                                                Disposition::Completed,
                                            );
                                        }
                                    }
                                }
                                Response::Staged { op }
                            }
                        }
                    }
                };
                if handed_off {
                    // Staged ack: echo the ack-time stages now (queue /
                    // backend are still zero — the ack precedes them);
                    // the worker completes the span after the backend
                    // write. reply_ns was stamped alongside enqueue_ns.
                    let mut ack = Frame::response(frame.client_id, frame.seq, &resp, Bytes::new());
                    if span.trace_id != 0 {
                        ack = ack.with_ext(TraceExt::Echo(stage_echo_of(&span)));
                    }
                    let _ = conn.send(ack);
                } else {
                    span.ok = false;
                    span.errno = response_errno(&resp);
                    finish_and_reply(
                        conn.as_ref(),
                        &telemetry,
                        &mut span,
                        frame.client_id,
                        frame.seq,
                        &resp,
                        Bytes::new(),
                    );
                }
            }
            Request::Read { fd, .. } | Request::Pread { fd, .. } => {
                // Reads barrier behind staged writes on the descriptor so
                // a read never observes pre-staging file contents.
                if let Err(errno) = engine.descriptor_db().wait_idle(fd) {
                    span.ok = false;
                    span.errno = errno.to_wire();
                    finish_and_reply(
                        conn.as_ref(),
                        &telemetry,
                        &mut span,
                        frame.client_id,
                        frame.seq,
                        &Response::Err { errno },
                        Bytes::new(),
                    );
                    continue;
                }
                let (tx, rx) = bounded(1);
                span.enqueue_ns = telemetry.now_ns();
                let pushed = queue.push(WorkItem::Sync {
                    req,
                    data: frame.data.clone(),
                    reply: ReplyTo::Handler(tx),
                    span,
                });
                if pushed.is_err() {
                    span.ok = false;
                    span.errno = Errno::Again.to_wire();
                    span.disposition = Disposition::QueueRejected;
                    finish_and_reply(
                        conn.as_ref(),
                        &telemetry,
                        &mut span,
                        frame.client_id,
                        frame.seq,
                        &Response::Err {
                            errno: Errno::Again,
                        },
                        Bytes::new(),
                    );
                    break;
                }
                match rx.recv() {
                    Ok((resp, mut data, mut span)) => {
                        maybe_deep_copy_tx(engine.hotpath(), &telemetry, &mut data);
                        finish_and_reply(
                            conn.as_ref(),
                            &telemetry,
                            &mut span,
                            frame.client_id,
                            frame.seq,
                            &resp,
                            data,
                        );
                    }
                    Err(_) => break,
                }
            }
            // Metadata operations (and oversized writes that exceed the
            // BML's largest class, falling through the guard above) run
            // synchronously in the handler, as the paper specifies for
            // open/close/attribute operations. `Stats` is consumed by
            // the interception above and never reaches this dispatch;
            // the engine rejects one anyway (routing bug, not data).
            other @ (Request::Open { .. }
            | Request::Connect { .. }
            | Request::Close { .. }
            | Request::Write { .. }
            | Request::Pwrite { .. }
            | Request::Lseek { .. }
            | Request::Fsync { .. }
            | Request::Stat { .. }
            | Request::Fstat { .. }
            | Request::Unlink { .. }
            | Request::Ftruncate { .. }
            | Request::Mkdir { .. }
            | Request::Stats { .. }
            | Request::Readdir { .. }) => {
                let now = telemetry.now_ns();
                span.enqueue_ns = now;
                span.dispatch_ns = now;
                let (resp, data) = engine.execute_timed(&other, &frame.data, &mut span);
                session.track(&other, &resp);
                finish_and_reply(
                    conn.as_ref(),
                    &telemetry,
                    &mut span,
                    frame.client_id,
                    frame.seq,
                    &resp,
                    data,
                );
            }
        }
    }
    // Reclaiming a descriptor barriers its staged writes (close waits
    // for the in-flight operations), so nothing is lost.
    session.reclaim(&engine);
}

/// Execute a staged write outside the worker pool (handler racing
/// shutdown, or the shutdown drain): filters, backend write, outcome
/// recording, span completion, and BML buffer return. `disposition`
/// records *why* it ran inline (handler race → `Completed`, shutdown
/// drain → `DrainExecuted`) for the flight recorder.
pub(crate) fn run_staged_inline(
    engine: &Engine,
    telemetry: &Telemetry,
    item: WorkItem,
    disposition: Disposition,
) {
    match item {
        WorkItem::StagedWrite {
            fd,
            op,
            offset,
            buf,
            mut span,
        } => {
            span.dispatch_ns = telemetry.now_ns();
            span.backend_start_ns = span.dispatch_ns;
            let outcome = engine.execute_staged_write(fd, op, offset, buf.as_slice());
            span.backend_done_ns = telemetry.now_ns();
            span.ok = matches!(outcome, OpOutcome::Ok);
            if let OpOutcome::Failed(errno) = outcome {
                span.errno = errno.to_wire();
            }
            span.disposition = disposition;
            drop(buf);
            telemetry.complete(&span);
        }
        // A coalesced batch racing shutdown (or left for the drain)
        // still fans completion out to every constituent op.
        item @ WorkItem::CoalescedWrite { .. } => {
            execute_coalesced(engine, telemetry, item, 0, disposition);
        }
        // Only staged writes are ever admitted to a serializer lane.
        WorkItem::Sync { .. } => {}
    }
}

/// Execute a coalesced batch of offset-contiguous staged writes as one
/// vectored backend call and fan the result back to every constituent
/// op: each part keeps its own `OpSpan` (dispatch/backend stamps are
/// shared, as the parts genuinely share the backend interval), its own
/// `finish_op` outcome in the DescDb, and its own BML buffer return.
/// A short vectored write credits full success to the parts it covered
/// and charges the error only to the parts (or tails) it did not.
pub(crate) fn execute_coalesced(
    engine: &Engine,
    telemetry: &Telemetry,
    item: WorkItem,
    worker: u32,
    disposition: Disposition,
) {
    let WorkItem::CoalescedWrite { fd, mut parts } = item else {
        return;
    };
    let Some(first) = parts.first() else {
        return;
    };
    let base = first.offset;
    let now = telemetry.now_ns();
    let total: u64 = parts.iter().map(|p| p.buf.len() as u64).sum();
    for part in parts.iter_mut() {
        part.span.dispatch_ns = now;
        part.span.backend_start_ns = now;
        part.span.worker = worker;
    }
    if telemetry.enabled() {
        telemetry.coalesced_batches.inc();
        telemetry.coalesced_ops.add(parts.len() as u64);
        telemetry.coalesced_bytes.add(total);
        telemetry.coalesce_width.record(parts.len() as u64);
    }
    let outcomes = {
        // Inner scope: the borrows of `parts` end before the move-out
        // fan-out below.
        let descr: Vec<(OpId, &[u8])> = parts.iter().map(|p| (p.op, p.buf.as_slice())).collect();
        engine.execute_coalesced_write(fd, base, &descr)
    };
    let done = telemetry.now_ns();
    for (part, outcome) in parts.into_iter().zip(outcomes) {
        let mut span = part.span;
        span.backend_done_ns = done;
        span.ok = matches!(outcome, OpOutcome::Ok);
        if let OpOutcome::Failed(errno) = outcome {
            span.errno = errno.to_wire();
        }
        span.disposition = disposition;
        drop(part.buf); // return staging memory per constituent
        telemetry.complete(&span);
    }
}

/// The positional-read sort key for "elevator" dispatch. `if let`
/// rather than a `match` over `Request` so the wire enum keeps exactly
/// one exhaustive dispatch site (lint R3).
fn pread_key(item: &WorkItem) -> Option<(iofwd_proto::Fd, u64)> {
    if let WorkItem::Sync {
        req: Request::Pread { fd, offset, .. },
        ..
    } = item
    {
        return Some((*fd, *offset));
    }
    None
}

/// "Elevator" read dispatch: within one popped batch, sort each maximal
/// run of *consecutive* positional reads on the same descriptor by file
/// offset. Only adjacent `Pread`s are reordered — they commute with
/// each other, while anything else (cursor reads, writes, metadata)
/// pins the run boundary so cross-op ordering is preserved exactly.
fn elevator_sort_reads(items: &mut [WorkItem]) {
    let mut i = 0;
    while i < items.len() {
        let Some((fd, _)) = pread_key(&items[i]) else {
            i += 1;
            continue;
        };
        let mut j = i + 1;
        while j < items.len() && matches!(pread_key(&items[j]), Some((f, _)) if f == fd) {
            j += 1;
        }
        if j - i > 1 {
            items[i..j].sort_by_key(|it| match pread_key(it) {
                Some((_, offset)) => offset,
                None => 0, // unreachable: the run is all Preads
            });
        }
        i = j;
    }
}

/// Worker-pool loop: batch-dequeue ("I/O multiplexing per thread") and
/// execute. With `coalesce` set, a dequeued staged write additionally
/// harvests the offset-contiguous prefix parked behind it on its
/// serializer lane and executes the whole chain as one vectored write.
pub fn worker_loop(
    worker: usize,
    batch: usize,
    queue: Arc<WorkQueue>,
    engine: Arc<Engine>,
    serializer: Arc<FdSerializer>,
    coalesce: Option<CoalesceConfig>,
) {
    let telemetry = engine.telemetry().clone();
    // Caller-owned batch buffer, reused across every scheduling pass so
    // the steady state allocates nothing per dequeue.
    let mut items: Vec<WorkItem> = Vec::new();
    loop {
        queue.pop_batch_into(worker, batch, &mut items);
        if items.is_empty() {
            return; // queue closed and drained
        }
        if coalesce.is_some() {
            elevator_sort_reads(&mut items);
        }
        // Utilization sampling: the gauge counts workers currently
        // executing a batch, and the per-worker busy-ns counter
        // accumulates the time between dequeue and batch completion —
        // idle fraction falls out against `uptime_ns` at snapshot time.
        let busy_from = telemetry.now_ns();
        if telemetry.enabled() {
            telemetry.workers_busy.add(1);
        }
        for item in items.drain(..) {
            match item {
                WorkItem::Sync {
                    req,
                    data,
                    reply,
                    mut span,
                } => {
                    span.dispatch_ns = telemetry.now_ns();
                    span.worker = worker as u32 + 1;
                    let (resp, out) = engine.execute_timed(&req, &data, &mut span);
                    // The handler stamps reply_ns and completes the span.
                    reply.deliver(resp, out, span);
                }
                WorkItem::StagedWrite {
                    fd,
                    op,
                    offset,
                    buf,
                    mut span,
                } => {
                    // Drop-safe lane release: when the guard goes out of
                    // scope — normal completion or an early exit — the
                    // lane is completed and the successor re-enqueued
                    // (or parked for the shutdown drain if the queue
                    // closed). The old explicit `complete` leaked the
                    // lane, and every parked successor's BML buffer, on
                    // any path that skipped it.
                    let _guard = serializer.completion_guard(fd, queue.clone());
                    // Coalescing: harvest the offset-contiguous prefix
                    // parked behind this write on its lane and execute
                    // the chain as one vectored backend call. Filters
                    // disable merging (they are defined per-op).
                    if let Some(cfg) = coalesce {
                        if engine.coalescible() {
                            let chain_end = offset.map(|o| o + buf.len() as u64);
                            let extra = serializer.harvest_contiguous(
                                fd,
                                chain_end,
                                cfg.max_ops.saturating_sub(1),
                                cfg.max_bytes.saturating_sub(buf.len()),
                            );
                            if !extra.is_empty() {
                                let mut parts = Vec::with_capacity(extra.len() + 1);
                                parts.push(StagedPart {
                                    op,
                                    offset,
                                    buf,
                                    span,
                                });
                                for harvested in extra {
                                    if let WorkItem::StagedWrite {
                                        op,
                                        offset,
                                        buf,
                                        span,
                                        ..
                                    } = harvested
                                    {
                                        parts.push(StagedPart {
                                            op,
                                            offset,
                                            buf,
                                            span,
                                        });
                                    }
                                }
                                execute_coalesced(
                                    &engine,
                                    &telemetry,
                                    WorkItem::CoalescedWrite { fd, parts },
                                    worker as u32 + 1,
                                    Disposition::Completed,
                                );
                                continue; // lane guard drops here
                            }
                        }
                    }
                    span.dispatch_ns = telemetry.now_ns();
                    span.backend_start_ns = span.dispatch_ns;
                    span.worker = worker as u32 + 1;
                    // Filters, backend write, and outcome recording all
                    // happen in the engine (shared with the sync path).
                    let outcome = engine.execute_staged_write(fd, op, offset, buf.as_slice());
                    span.backend_done_ns = telemetry.now_ns();
                    span.ok = matches!(outcome, OpOutcome::Ok);
                    if let OpOutcome::Failed(errno) = outcome {
                        span.errno = errno.to_wire();
                    }
                    drop(buf); // return staging memory before dispatching more
                    telemetry.complete(&span);
                }
                // Coalesced items are built worker-side and executed
                // immediately, so none is ever *enqueued*; if one shows
                // up anyway it owns no serializer lane — just complete
                // every constituent.
                item @ WorkItem::CoalescedWrite { .. } => {
                    execute_coalesced(
                        &engine,
                        &telemetry,
                        item,
                        worker as u32 + 1,
                        Disposition::Completed,
                    );
                }
            }
        }
        if telemetry.enabled() {
            telemetry.workers_busy.add(-1);
            telemetry
                .worker_busy_ns
                .add(worker, telemetry.now_ns().saturating_sub(busy_from));
        }
    }
}
