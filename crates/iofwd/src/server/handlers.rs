//! Per-client handler loops, one flavour per forwarding mode.
//!
//! * [`handle_zoid`] — the ZOID baseline (§II-B2): the handler thread for
//!   a compute node executes that node's I/O itself.
//! * [`handle_ciod`] — the CIOD architecture (§II-B1): the daemon-side
//!   thread copies each request into a "shared-memory region" (an honest
//!   extra copy) and hands it to a dedicated per-client *proxy*, which
//!   executes the I/O and replies.
//! * [`handle_sched`] — I/O scheduling (§IV): the handler enqueues the
//!   task on the shared work queue and sleeps until a worker finishes it.
//! * [`handle_staged`] — I/O scheduling + asynchronous data staging
//!   (§IV): data writes are copied into BML buffers, acknowledged
//!   immediately (`Response::Staged`), and executed by the worker pool;
//!   metadata operations stay synchronous, with `fsync`/`close`/reads
//!   acting as barriers.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded};
use iofwd_proto::{Errno, Frame, Request, Response, StageEcho, TraceContext, TraceExt};

use super::engine::{op_kind, response_errno, Engine};
use super::queue::{WorkItem, WorkQueue};
use super::staged::FdSerializer;
use crate::descdb::{BeginError, OpOutcome};
use crate::telemetry::{Disposition, OpKind, OpSpan, Telemetry};
use crate::transport::Conn;

/// Descriptors opened by one client connection, so a vanished client's
/// descriptors can be reclaimed (a compute node that dies mid-job must
/// not leak ION resources).
#[derive(Default)]
pub(crate) struct Session {
    fds: std::collections::HashSet<iofwd_proto::Fd>,
}

impl Session {
    /// Observe a request/response pair and update the descriptor set.
    fn track(&mut self, req: &Request, resp: &Response) {
        match req {
            Request::Open { .. } | Request::Connect { .. } => {
                if let Response::Ok { ret } = resp {
                    self.fds.insert(iofwd_proto::Fd(*ret as u32));
                }
            }
            Request::Close { fd } => {
                if matches!(resp, Response::Ok { .. } | Response::DeferredErr { .. }) {
                    self.fds.remove(fd);
                }
            }
            // No other operation creates or retires a descriptor.
            Request::Write { .. }
            | Request::Pwrite { .. }
            | Request::Read { .. }
            | Request::Pread { .. }
            | Request::Lseek { .. }
            | Request::Fsync { .. }
            | Request::Stat { .. }
            | Request::Fstat { .. }
            | Request::Unlink { .. }
            | Request::Shutdown
            | Request::Ftruncate { .. }
            | Request::Mkdir { .. }
            | Request::Readdir { .. } => {}
        }
    }

    /// Close everything the departed client left open.
    fn reclaim(self, engine: &Engine) {
        for fd in self.fds {
            let _ = engine.execute(&Request::Close { fd }, &Bytes::new());
        }
    }
}

fn send_response(conn: &dyn Conn, client: u32, seq: u64, resp: &Response, data: Bytes) {
    // A send failure means the client vanished; the handler loop will
    // observe the closed connection on its next recv.
    let _ = conn.send(Frame::response(client, seq, resp, data));
}

/// Adopt the client's trace context (if the frame carries one) onto the
/// op's lifecycle span, so the id survives queueing, staging, and the
/// worker pool, and shows up in the flight recorder and trace exporter.
fn apply_trace(span: &mut OpSpan, frame: &Frame) {
    if let Some(ctx) = frame.trace_ctx() {
        span.trace_id = ctx.trace_id;
        span.sampled = ctx.is_sampled();
    }
}

/// Server-side stage breakdown echoed back to a traced client. Built
/// from the same span `Telemetry::complete` folds into the histograms,
/// so a client summing echoes reproduces the daemon's own numbers.
fn stage_echo_of(span: &OpSpan) -> StageEcho {
    StageEcho {
        trace_id: span.trace_id,
        flags: if span.sampled {
            TraceContext::SAMPLED
        } else {
            0
        },
        queue_ns: span.queue_wait_ns(),
        dispatch_ns: span.dispatch_lag_ns(),
        backend_ns: span.service_ns(),
        // A staged ack goes out before the backend runs
        // (backend_done_ns == 0); its reply lag is not yet measurable.
        reply_ns: if span.backend_done_ns == 0 {
            0
        } else {
            span.reply_lag_ns()
        },
        total_ns: span.total_ns(),
    }
}

/// Stamp the reply, echo the stage breakdown to traced clients, send,
/// and complete the span — in that order, so the echoed durations are
/// exactly the ones the daemon's histograms record.
fn finish_and_reply(
    conn: &dyn Conn,
    telemetry: &Telemetry,
    span: &mut OpSpan,
    client: u32,
    seq: u64,
    resp: &Response,
    data: Bytes,
) {
    span.reply_ns = telemetry.now_ns();
    let mut frame = Frame::response(client, seq, resp, data);
    if span.trace_id != 0 {
        frame = frame.with_ext(TraceExt::Echo(stage_echo_of(span)));
    }
    // A send failure means the client vanished; the handler loop will
    // observe the closed connection on its next recv.
    let _ = conn.send(frame);
    telemetry.complete(span);
}

fn decode_or_reject(conn: &dyn Conn, frame: &Frame) -> Option<Request> {
    match frame.decode_request() {
        Ok(req) => Some(req),
        Err(_) => {
            send_response(
                conn,
                frame.client_id,
                frame.seq,
                &Response::Err {
                    errno: Errno::Inval,
                },
                Bytes::new(),
            );
            None
        }
    }
}

/// ZOID: thread-per-client, execute inline. There is no queue, so
/// arrival, enqueue, and dispatch collapse to the same instant.
pub fn handle_zoid(conn: Arc<dyn Conn>, engine: Arc<Engine>) {
    let telemetry = engine.telemetry().clone();
    let mut session = Session::default();
    while let Ok(Some(frame)) = conn.recv() {
        let Some(req) = decode_or_reject(conn.as_ref(), &frame) else {
            continue;
        };
        let now = telemetry.now_ns();
        let mut span = OpSpan::begin(op_kind(&req), u64::from(frame.client_id), frame.seq, now);
        span.enqueue_ns = now;
        span.dispatch_ns = now;
        span.bytes = frame.data.len() as u64;
        apply_trace(&mut span, &frame);
        let shutdown = matches!(req, Request::Shutdown);
        let (resp, data) = engine.execute_timed(&req, &frame.data, &mut span);
        session.track(&req, &resp);
        finish_and_reply(
            conn.as_ref(),
            &telemetry,
            &mut span,
            frame.client_id,
            frame.seq,
            &resp,
            data,
        );
        if shutdown {
            break;
        }
    }
    session.reclaim(&engine);
}

/// CIOD: daemon thread copies into "shared memory", a per-client proxy
/// executes. The copy is real — it is CIOD's architectural cost.
pub fn handle_ciod(conn: Arc<dyn Conn>, engine: Arc<Engine>) {
    let (shm_tx, shm_rx) = unbounded::<(Frame, OpSpan)>();
    let proxy_conn = conn.clone();
    let proxy_engine = engine.clone();
    let proxy = std::thread::Builder::new()
        .name("ciod-proxy".into())
        .spawn(move || {
            // The I/O proxy process: executes forwarded calls and returns
            // results directly to the compute node.
            let telemetry = proxy_engine.telemetry().clone();
            let mut session = Session::default();
            while let Ok((frame, mut span)) = shm_rx.recv() {
                // Queue wait = time the frame sat in the shm channel.
                span.dispatch_ns = telemetry.now_ns();
                let Some(req) = decode_or_reject(proxy_conn.as_ref(), &frame) else {
                    span.ok = false;
                    span.errno = Errno::Inval.to_wire();
                    span.reply_ns = telemetry.now_ns();
                    telemetry.complete(&span);
                    continue;
                };
                let shutdown = matches!(req, Request::Shutdown);
                let (resp, data) = proxy_engine.execute_timed(&req, &frame.data, &mut span);
                session.track(&req, &resp);
                finish_and_reply(
                    proxy_conn.as_ref(),
                    &telemetry,
                    &mut span,
                    frame.client_id,
                    frame.seq,
                    &resp,
                    data,
                );
                if shutdown {
                    break;
                }
            }
            session.reclaim(&proxy_engine);
        })
        .expect("spawn ciod proxy");

    let telemetry = engine.telemetry().clone();
    while let Ok(Some(frame)) = conn.recv() {
        let kind = match frame.decode_request() {
            Ok(ref req) => op_kind(req),
            Err(_) => OpKind::Control, // proxy will reject it
        };
        let mut span = OpSpan::begin(
            kind,
            u64::from(frame.client_id),
            frame.seq,
            telemetry.now_ns(),
        );
        span.bytes = frame.data.len() as u64;
        apply_trace(&mut span, &frame);
        // Copy the payload into the shared-memory region before the proxy
        // may touch it (CIOD's double copy, §II-B1).
        let copied = Bytes::from(frame.data.to_vec());
        let shutdown = matches!(frame.decode_request(), Ok(Request::Shutdown));
        let staged = Frame {
            data: copied,
            ..frame
        };
        span.enqueue_ns = telemetry.now_ns();
        if shm_tx.send((staged, span)).is_err() {
            break;
        }
        if shutdown {
            break;
        }
    }
    drop(shm_tx);
    let _ = proxy.join();
}

/// I/O scheduling: enqueue, wait for a worker, reply.
pub fn handle_sched(conn: Arc<dyn Conn>, engine: Arc<Engine>, queue: Arc<WorkQueue>) {
    let telemetry = engine.telemetry().clone();
    let mut session = Session::default();
    while let Ok(Some(frame)) = conn.recv() {
        let Some(req) = decode_or_reject(conn.as_ref(), &frame) else {
            continue;
        };
        let mut span = OpSpan::begin(
            op_kind(&req),
            u64::from(frame.client_id),
            frame.seq,
            telemetry.now_ns(),
        );
        span.bytes = frame.data.len() as u64;
        apply_trace(&mut span, &frame);
        if matches!(req, Request::Shutdown) {
            send_response(
                conn.as_ref(),
                frame.client_id,
                frame.seq,
                &Response::Ok { ret: 0 },
                Bytes::new(),
            );
            break;
        }
        let (tx, rx) = bounded(1);
        span.enqueue_ns = telemetry.now_ns();
        let pushed = queue.push(WorkItem::Sync {
            req: req.clone(),
            data: frame.data.clone(),
            reply: tx,
            span,
        });
        if pushed.is_err() {
            // Queue closed: the daemon is shutting down. Reply with a
            // clean transient errno instead of killing the process
            // (the old behavior was an assert in push).
            span.ok = false;
            span.errno = Errno::Again.to_wire();
            span.disposition = Disposition::QueueRejected;
            finish_and_reply(
                conn.as_ref(),
                &telemetry,
                &mut span,
                frame.client_id,
                frame.seq,
                &Response::Err {
                    errno: Errno::Again,
                },
                Bytes::new(),
            );
            break;
        }
        match rx.recv() {
            Ok((resp, data, mut span)) => {
                session.track(&req, &resp);
                finish_and_reply(
                    conn.as_ref(),
                    &telemetry,
                    &mut span,
                    frame.client_id,
                    frame.seq,
                    &resp,
                    data,
                );
            }
            Err(_) => break, // workers gone: daemon shutting down
        }
    }
    session.reclaim(&engine);
}

/// I/O scheduling + asynchronous data staging.
pub fn handle_staged(
    conn: Arc<dyn Conn>,
    engine: Arc<Engine>,
    queue: Arc<WorkQueue>,
    serializer: Arc<FdSerializer>,
) {
    let bml = engine.bml().expect("staged mode requires a BML").clone();
    let telemetry = engine.telemetry().clone();
    let mut session = Session::default();
    while let Ok(Some(frame)) = conn.recv() {
        let Some(req) = decode_or_reject(conn.as_ref(), &frame) else {
            continue;
        };
        let mut span = OpSpan::begin(
            op_kind(&req),
            u64::from(frame.client_id),
            frame.seq,
            telemetry.now_ns(),
        );
        span.bytes = frame.data.len() as u64;
        apply_trace(&mut span, &frame);
        match req {
            Request::Shutdown => {
                send_response(
                    conn.as_ref(),
                    frame.client_id,
                    frame.seq,
                    &Response::Ok { ret: 0 },
                    Bytes::new(),
                );
                break;
            }
            Request::Write { fd, len } | Request::Pwrite { fd, len, .. }
                if len as usize <= bml.max_request() =>
            {
                let offset = if let Request::Pwrite { offset, .. } = req {
                    Some(offset)
                } else {
                    None
                };
                if len != frame.data.len() as u64 {
                    span.ok = false;
                    span.errno = Errno::Inval.to_wire();
                    finish_and_reply(
                        conn.as_ref(),
                        &telemetry,
                        &mut span,
                        frame.client_id,
                        frame.seq,
                        &Response::Err {
                            errno: Errno::Inval,
                        },
                        Bytes::new(),
                    );
                    continue;
                }
                // When the write is handed off, the worker finishes the
                // span; on the synchronous error paths below this
                // handler finishes it itself.
                let mut handed_off = false;
                let resp = match engine.descriptor_db().begin_op(fd) {
                    Err(BeginError::Sync(errno)) => Response::Err { errno },
                    Err(BeginError::Deferred { op, errno }) => {
                        engine
                            .stats
                            .deferred_errors_reported
                            .fetch_add(1, Ordering::Relaxed);
                        Response::DeferredErr { op, errno }
                    }
                    Ok((op, _obj)) => {
                        // Blocking acquisition: "if there is insufficient
                        // memory to stage the data, the I/O operation is
                        // blocked until ... sufficient memory is
                        // available" (§IV).
                        match bml.acquire_timeout(len as usize, None) {
                            None => {
                                // BML closed: daemon shutting down.
                                engine.descriptor_db().finish_op(
                                    fd,
                                    op,
                                    OpOutcome::Failed(Errno::NoMem),
                                );
                                Response::Err {
                                    errno: Errno::NoMem,
                                }
                            }
                            Some(mut buf) => {
                                buf.fill_from(&frame.data);
                                engine.stats.requests.fetch_add(1, Ordering::Relaxed);
                                engine.stats.bytes_in.fetch_add(len, Ordering::Relaxed);
                                engine.stats.staged_ops.fetch_add(1, Ordering::Relaxed);
                                if telemetry.enabled() {
                                    telemetry.ops_staged.inc();
                                }
                                // The staging ack goes out right after the
                                // push; stamp the client-visible reply now
                                // (OpSpan is Copy — the worker's copy keeps
                                // these stamps and adds the backend ones).
                                span.enqueue_ns = telemetry.now_ns();
                                span.reply_ns = span.enqueue_ns;
                                handed_off = true;
                                let item = WorkItem::StagedWrite {
                                    fd,
                                    op,
                                    offset,
                                    buf,
                                    span,
                                };
                                if let Some(item) = serializer.admit(fd, item) {
                                    if let Err(closed) = queue.push(item) {
                                        // Queue closed under us: the
                                        // worker pool will never run
                                        // this write, so execute it
                                        // inline (plus any successors
                                        // the lane releases) to keep
                                        // the `Staged` ack truthful.
                                        run_staged_inline(
                                            &engine,
                                            &telemetry,
                                            *closed.0,
                                            Disposition::Completed,
                                        );
                                        while let Some(next) = serializer.complete(fd) {
                                            run_staged_inline(
                                                &engine,
                                                &telemetry,
                                                next,
                                                Disposition::Completed,
                                            );
                                        }
                                    }
                                }
                                Response::Staged { op }
                            }
                        }
                    }
                };
                if handed_off {
                    // Staged ack: echo the ack-time stages now (queue /
                    // backend are still zero — the ack precedes them);
                    // the worker completes the span after the backend
                    // write. reply_ns was stamped alongside enqueue_ns.
                    let mut ack = Frame::response(frame.client_id, frame.seq, &resp, Bytes::new());
                    if span.trace_id != 0 {
                        ack = ack.with_ext(TraceExt::Echo(stage_echo_of(&span)));
                    }
                    let _ = conn.send(ack);
                } else {
                    span.ok = false;
                    span.errno = response_errno(&resp);
                    finish_and_reply(
                        conn.as_ref(),
                        &telemetry,
                        &mut span,
                        frame.client_id,
                        frame.seq,
                        &resp,
                        Bytes::new(),
                    );
                }
            }
            Request::Read { fd, .. } | Request::Pread { fd, .. } => {
                // Reads barrier behind staged writes on the descriptor so
                // a read never observes pre-staging file contents.
                if let Err(errno) = engine.descriptor_db().wait_idle(fd) {
                    span.ok = false;
                    span.errno = errno.to_wire();
                    finish_and_reply(
                        conn.as_ref(),
                        &telemetry,
                        &mut span,
                        frame.client_id,
                        frame.seq,
                        &Response::Err { errno },
                        Bytes::new(),
                    );
                    continue;
                }
                let (tx, rx) = bounded(1);
                span.enqueue_ns = telemetry.now_ns();
                let pushed = queue.push(WorkItem::Sync {
                    req,
                    data: frame.data.clone(),
                    reply: tx,
                    span,
                });
                if pushed.is_err() {
                    span.ok = false;
                    span.errno = Errno::Again.to_wire();
                    span.disposition = Disposition::QueueRejected;
                    finish_and_reply(
                        conn.as_ref(),
                        &telemetry,
                        &mut span,
                        frame.client_id,
                        frame.seq,
                        &Response::Err {
                            errno: Errno::Again,
                        },
                        Bytes::new(),
                    );
                    break;
                }
                match rx.recv() {
                    Ok((resp, data, mut span)) => {
                        finish_and_reply(
                            conn.as_ref(),
                            &telemetry,
                            &mut span,
                            frame.client_id,
                            frame.seq,
                            &resp,
                            data,
                        );
                    }
                    Err(_) => break,
                }
            }
            // Metadata operations (and oversized writes that exceed the
            // BML's largest class, falling through the guard above) run
            // synchronously in the handler, as the paper specifies for
            // open/close/attribute operations.
            other @ (Request::Open { .. }
            | Request::Connect { .. }
            | Request::Close { .. }
            | Request::Write { .. }
            | Request::Pwrite { .. }
            | Request::Lseek { .. }
            | Request::Fsync { .. }
            | Request::Stat { .. }
            | Request::Fstat { .. }
            | Request::Unlink { .. }
            | Request::Ftruncate { .. }
            | Request::Mkdir { .. }
            | Request::Readdir { .. }) => {
                let now = telemetry.now_ns();
                span.enqueue_ns = now;
                span.dispatch_ns = now;
                let (resp, data) = engine.execute_timed(&other, &frame.data, &mut span);
                session.track(&other, &resp);
                finish_and_reply(
                    conn.as_ref(),
                    &telemetry,
                    &mut span,
                    frame.client_id,
                    frame.seq,
                    &resp,
                    data,
                );
            }
        }
    }
    // Reclaiming a descriptor barriers its staged writes (close waits
    // for the in-flight operations), so nothing is lost.
    session.reclaim(&engine);
}

/// Execute a staged write outside the worker pool (handler racing
/// shutdown, or the shutdown drain): filters, backend write, outcome
/// recording, span completion, and BML buffer return. `disposition`
/// records *why* it ran inline (handler race → `Completed`, shutdown
/// drain → `DrainExecuted`) for the flight recorder.
pub(crate) fn run_staged_inline(
    engine: &Engine,
    telemetry: &Telemetry,
    item: WorkItem,
    disposition: Disposition,
) {
    match item {
        WorkItem::StagedWrite {
            fd,
            op,
            offset,
            buf,
            mut span,
        } => {
            span.dispatch_ns = telemetry.now_ns();
            span.backend_start_ns = span.dispatch_ns;
            let outcome = engine.execute_staged_write(fd, op, offset, buf.as_slice());
            span.backend_done_ns = telemetry.now_ns();
            span.ok = matches!(outcome, OpOutcome::Ok);
            if let OpOutcome::Failed(errno) = outcome {
                span.errno = errno.to_wire();
            }
            span.disposition = disposition;
            drop(buf);
            telemetry.complete(&span);
        }
        // Only staged writes are ever admitted to a serializer lane.
        WorkItem::Sync { .. } => {}
    }
}

/// Worker-pool loop: batch-dequeue ("I/O multiplexing per thread") and
/// execute.
pub fn worker_loop(
    worker: usize,
    batch: usize,
    queue: Arc<WorkQueue>,
    engine: Arc<Engine>,
    serializer: Arc<FdSerializer>,
) {
    let telemetry = engine.telemetry().clone();
    loop {
        let items = queue.pop_batch(worker, batch);
        if items.is_empty() {
            return; // queue closed and drained
        }
        // Utilization sampling: the gauge counts workers currently
        // executing a batch, and the per-worker busy-ns counter
        // accumulates the time between dequeue and batch completion —
        // idle fraction falls out against `uptime_ns` at snapshot time.
        let busy_from = telemetry.now_ns();
        if telemetry.enabled() {
            telemetry.workers_busy.add(1);
        }
        for item in items {
            match item {
                WorkItem::Sync {
                    req,
                    data,
                    reply,
                    mut span,
                } => {
                    span.dispatch_ns = telemetry.now_ns();
                    span.worker = worker as u32 + 1;
                    let (resp, out) = engine.execute_timed(&req, &data, &mut span);
                    // The handler stamps reply_ns and completes the span.
                    let _ = reply.send((resp, out, span));
                }
                WorkItem::StagedWrite {
                    fd,
                    op,
                    offset,
                    buf,
                    mut span,
                } => {
                    // Drop-safe lane release: when the guard goes out of
                    // scope — normal completion or an early exit — the
                    // lane is completed and the successor re-enqueued
                    // (or parked for the shutdown drain if the queue
                    // closed). The old explicit `complete` leaked the
                    // lane, and every parked successor's BML buffer, on
                    // any path that skipped it.
                    let _guard = serializer.completion_guard(fd, queue.clone());
                    span.dispatch_ns = telemetry.now_ns();
                    span.backend_start_ns = span.dispatch_ns;
                    span.worker = worker as u32 + 1;
                    // Filters, backend write, and outcome recording all
                    // happen in the engine (shared with the sync path).
                    let outcome = engine.execute_staged_write(fd, op, offset, buf.as_slice());
                    span.backend_done_ns = telemetry.now_ns();
                    span.ok = matches!(outcome, OpOutcome::Ok);
                    if let OpOutcome::Failed(errno) = outcome {
                        span.errno = errno.to_wire();
                    }
                    drop(buf); // return staging memory before dispatching more
                    telemetry.complete(&span);
                }
            }
        }
        if telemetry.enabled() {
            telemetry.workers_busy.add(-1);
            telemetry
                .worker_busy_ns
                .add(worker, telemetry.now_ns().saturating_sub(busy_from));
        }
    }
}
