//! Per-descriptor serialization for staged operations.
//!
//! Staged writes on *one* descriptor must execute in the order the
//! application issued them (a byte stream to a DA node or a cursor write
//! sequence is order-sensitive), while operations on *different*
//! descriptors should spread freely across the worker pool. The
//! [`FdSerializer`] provides exactly that: each descriptor is a lane; at
//! most one staged operation per lane is in the work queue at a time, and
//! completing it releases the next. Lanes never block a worker — ordering
//! is enforced at dispatch, so the pool cannot deadlock on ordering.

use std::collections::{HashMap, VecDeque};

use iofwd_proto::Fd;
use parking_lot::Mutex;

use super::queue::WorkItem;

#[derive(Default)]
struct Lane {
    busy: bool,
    pending: VecDeque<WorkItem>,
}

/// Dispatch-order serializer keyed by descriptor.
#[derive(Default)]
pub struct FdSerializer {
    lanes: Mutex<HashMap<Fd, Lane>>,
}

impl FdSerializer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Offer an item for `fd`. Returns it back if the lane is free (the
    /// caller enqueues it on the work queue); otherwise the item is
    /// parked in the lane and `None` is returned.
    pub fn admit(&self, fd: Fd, item: WorkItem) -> Option<WorkItem> {
        let mut lanes = self.lanes.lock();
        let lane = lanes.entry(fd).or_default();
        if lane.busy {
            lane.pending.push_back(item);
            None
        } else {
            lane.busy = true;
            Some(item)
        }
    }

    /// Mark `fd`'s in-flight item complete. Returns the next parked item
    /// for that lane (the caller enqueues it), if any.
    pub fn complete(&self, fd: Fd) -> Option<WorkItem> {
        let mut lanes = self.lanes.lock();
        let lane = lanes.get_mut(&fd).expect("complete on unknown lane");
        debug_assert!(lane.busy, "complete on idle lane");
        match lane.pending.pop_front() {
            Some(next) => Some(next),
            None => {
                lane.busy = false;
                // Drop empty idle lanes so closed descriptors don't leak.
                lanes.remove(&fd);
                None
            }
        }
    }

    /// Items parked across all lanes (for stats/tests).
    pub fn parked(&self) -> usize {
        self.lanes.lock().values().map(|l| l.pending.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use crossbeam::channel::unbounded;
    use iofwd_proto::Request;

    fn item(tag: u32) -> WorkItem {
        let (tx, _rx) = unbounded();
        WorkItem::Sync {
            req: Request::Fsync { fd: Fd(tag) },
            data: Bytes::new(),
            reply: tx,
            span: crate::telemetry::OpSpan::default(),
        }
    }

    fn tag(i: &WorkItem) -> u32 {
        match i {
            WorkItem::Sync {
                req: Request::Fsync { fd },
                ..
            } => fd.0,
            _ => unreachable!(),
        }
    }

    #[test]
    fn first_item_passes_through() {
        let s = FdSerializer::new();
        assert!(s.admit(Fd(1), item(10)).is_some());
        assert_eq!(s.parked(), 0);
    }

    #[test]
    fn second_item_parks_until_complete() {
        let s = FdSerializer::new();
        assert!(s.admit(Fd(1), item(10)).is_some());
        assert!(s.admit(Fd(1), item(11)).is_none());
        assert!(s.admit(Fd(1), item(12)).is_none());
        assert_eq!(s.parked(), 2);
        // Completion releases in FIFO order.
        let next = s.complete(Fd(1)).unwrap();
        assert_eq!(tag(&next), 11);
        let next = s.complete(Fd(1)).unwrap();
        assert_eq!(tag(&next), 12);
        assert!(s.complete(Fd(1)).is_none());
        assert_eq!(s.parked(), 0);
    }

    #[test]
    fn lanes_are_independent() {
        let s = FdSerializer::new();
        assert!(s.admit(Fd(1), item(10)).is_some());
        assert!(
            s.admit(Fd(2), item(20)).is_some(),
            "other fd must not be blocked"
        );
    }

    #[test]
    fn lane_reusable_after_drain() {
        let s = FdSerializer::new();
        assert!(s.admit(Fd(1), item(1)).is_some());
        assert!(s.complete(Fd(1)).is_none());
        assert!(s.admit(Fd(1), item(2)).is_some());
    }
}
