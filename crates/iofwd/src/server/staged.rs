//! Per-descriptor serialization for staged operations.
//!
//! Staged writes on *one* descriptor must execute in the order the
//! application issued them (a byte stream to a DA node or a cursor write
//! sequence is order-sensitive), while operations on *different*
//! descriptors should spread freely across the worker pool. The
//! [`FdSerializer`] provides exactly that: each descriptor is a lane; at
//! most one staged operation per lane is in the work queue at a time, and
//! completing it releases the next. Lanes never block a worker — ordering
//! is enforced at dispatch, so the pool cannot deadlock on ordering.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use iofwd_proto::Fd;

use crate::sync::Mutex;

use super::queue::{WorkItem, WorkQueue};

#[derive(Default)]
struct Lane {
    busy: bool,
    pending: VecDeque<WorkItem>,
}

/// Dispatch-order serializer keyed by descriptor.
#[derive(Default)]
pub struct FdSerializer {
    lanes: Mutex<HashMap<Fd, Lane>>,
    /// Successors whose re-enqueue lost the race with queue close: they
    /// could not go back on the work queue, but they carry BML buffers
    /// and must not be dropped — the shutdown drain collects them via
    /// [`drain_all`](Self::drain_all).
    orphans: Mutex<Vec<WorkItem>>,
}

impl FdSerializer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Offer an item for `fd`. Returns it back if the lane is free (the
    /// caller enqueues it on the work queue); otherwise the item is
    /// parked in the lane and `None` is returned.
    pub fn admit(&self, fd: Fd, item: WorkItem) -> Option<WorkItem> {
        let mut lanes = self.lanes.lock();
        let lane = lanes.entry(fd).or_default();
        if lane.busy {
            lane.pending.push_back(item);
            None
        } else {
            lane.busy = true;
            Some(item)
        }
    }

    /// Mark `fd`'s in-flight item complete. Returns the next parked item
    /// for that lane (the caller enqueues it), if any. Total: completing
    /// an unknown or idle lane (a double-complete racing descriptor
    /// close, or a guard firing after `drain_all`) is a no-op, not a
    /// panic.
    pub fn complete(&self, fd: Fd) -> Option<WorkItem> {
        let mut lanes = self.lanes.lock();
        let lane = lanes.get_mut(&fd)?;
        match lane.pending.pop_front() {
            Some(next) => Some(next),
            None => {
                lane.busy = false;
                // Drop empty idle lanes so closed descriptors don't leak.
                lanes.remove(&fd);
                None
            }
        }
    }

    /// Drop-safe completion for `fd`: the returned guard completes the
    /// lane when it goes out of scope — normal return, `?`, or unwind —
    /// and re-enqueues the successor on `queue`, parking it as an
    /// orphan if the queue has closed. Holding the guard across
    /// execution makes it impossible to leak a lane (and with it every
    /// successor's BML buffer) on an error path.
    pub fn completion_guard(self: &Arc<Self>, fd: Fd, queue: Arc<WorkQueue>) -> CompletionGuard {
        CompletionGuard {
            serializer: self.clone(),
            queue,
            fd,
        }
    }

    /// Harvest parked staged writes from the front of `fd`'s lane while
    /// they extend a contiguous chain: the coalescing layer's feed.
    ///
    /// `chain_end` is where the worker's in-flight write ends —
    /// `Some(offset + len)` for a positional write, `None` for a cursor
    /// write. A parked `StagedWrite` joins the chain when it is the
    /// same shape (positional starting exactly at the chain end, or
    /// cursor following cursor) and fits `max_bytes`/`max_ops`. The
    /// first non-joining item stops the harvest and stays parked, so
    /// per-lane FIFO order is preserved: harvested items execute in
    /// the batch, ahead of everything still pending, exactly as they
    /// would have serially. The lane stays busy; the caller's
    /// completion releases whatever remains.
    pub fn harvest_contiguous(
        &self,
        fd: Fd,
        chain_end: Option<u64>,
        max_ops: usize,
        max_bytes: usize,
    ) -> Vec<WorkItem> {
        let mut out = Vec::new();
        let mut end = chain_end;
        let mut bytes = 0usize;
        let mut lanes = self.lanes.lock();
        let Some(lane) = lanes.get_mut(&fd) else {
            return out;
        };
        while out.len() < max_ops {
            let joins = match lane.pending.front() {
                Some(WorkItem::StagedWrite { offset, buf, .. }) => {
                    let contiguous = match (end, offset) {
                        // A cursor write extends a cursor chain...
                        (None, None) => true,
                        // ...a positional write extends a positional
                        // chain only from exactly the chain end.
                        (Some(e), Some(o)) => *o == e,
                        _ => false,
                    };
                    contiguous && bytes + buf.len() <= max_bytes
                }
                _ => false,
            };
            if !joins {
                break;
            }
            let Some(item) = lane.pending.pop_front() else {
                break;
            };
            if let WorkItem::StagedWrite {
                offset, ref buf, ..
            } = item
            {
                bytes += buf.len();
                end = offset.map(|o| o + buf.len() as u64);
            }
            out.push(item);
        }
        out
    }

    /// Park an item that could not be re-enqueued.
    fn orphan(&self, item: WorkItem) {
        self.orphans.lock().push(item);
    }

    /// Items parked across all lanes (for stats/tests).
    pub fn parked(&self) -> usize {
        self.lanes.lock().values().map(|l| l.pending.len()).sum()
    }

    /// Orphaned successors awaiting the shutdown drain (for stats/tests).
    pub fn orphaned(&self) -> usize {
        self.orphans.lock().len()
    }

    /// Take every parked item — lane successors and orphans — for the
    /// shutdown drain. After this, lanes are empty; `complete` on a
    /// drained lane is a no-op.
    pub fn drain_all(&self) -> Vec<WorkItem> {
        let mut out: Vec<WorkItem> = self.orphans.lock().drain(..).collect();
        let mut lanes = self.lanes.lock();
        for (_, lane) in lanes.drain() {
            out.extend(lane.pending);
        }
        out
    }
}

/// See [`FdSerializer::completion_guard`].
pub struct CompletionGuard {
    serializer: Arc<FdSerializer>,
    queue: Arc<WorkQueue>,
    fd: Fd,
}

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        if let Some(next) = self.serializer.complete(self.fd) {
            if let Err(closed) = self.queue.push(next) {
                self.serializer.orphan(*closed.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use crossbeam::channel::unbounded;
    use iofwd_proto::Request;

    fn item(tag: u32) -> WorkItem {
        let (tx, _rx) = unbounded();
        WorkItem::Sync {
            req: Request::Fsync { fd: Fd(tag) },
            data: Bytes::new(),
            reply: super::super::queue::ReplyTo::Handler(tx),
            span: crate::telemetry::OpSpan::default(),
        }
    }

    fn tag(i: &WorkItem) -> u32 {
        match i {
            WorkItem::Sync {
                req: Request::Fsync { fd },
                ..
            } => fd.0,
            _ => unreachable!(),
        }
    }

    fn staged(bml: &crate::bml::Bml, tag: u32, offset: Option<u64>, len: usize) -> WorkItem {
        let mut buf = bml.acquire(len).unwrap();
        buf.fill_from(&vec![tag as u8; len]);
        WorkItem::StagedWrite {
            fd: Fd(1),
            op: iofwd_proto::OpId(tag as u64),
            offset,
            buf,
            span: crate::telemetry::OpSpan::default(),
        }
    }

    fn staged_tag(i: &WorkItem) -> u32 {
        match i {
            WorkItem::StagedWrite { op, .. } => op.0 as u32,
            _ => unreachable!(),
        }
    }

    #[test]
    fn harvest_takes_contiguous_prefix_only() {
        let bml = crate::bml::Bml::new(1 << 20);
        let s = FdSerializer::new();
        // In-flight positional write covering [0, 100).
        assert!(s.admit(Fd(1), staged(&bml, 0, Some(0), 100)).is_some());
        // Parked: two contiguous successors, then a gap, then another.
        assert!(s.admit(Fd(1), staged(&bml, 1, Some(100), 50)).is_none());
        assert!(s.admit(Fd(1), staged(&bml, 2, Some(150), 50)).is_none());
        assert!(s.admit(Fd(1), staged(&bml, 3, Some(999), 50)).is_none());
        assert!(s.admit(Fd(1), staged(&bml, 4, Some(1049), 50)).is_none());
        let got = s.harvest_contiguous(Fd(1), Some(100), 16, 1 << 20);
        assert_eq!(got.iter().map(staged_tag).collect::<Vec<_>>(), vec![1, 2]);
        // The gap item (and its successor) stay parked, in order.
        assert_eq!(s.parked(), 2);
        let next = s.complete(Fd(1)).unwrap();
        assert_eq!(staged_tag(&next), 3);
    }

    #[test]
    fn harvest_respects_budgets_and_shape() {
        let bml = crate::bml::Bml::new(1 << 20);
        let s = FdSerializer::new();
        assert!(s.admit(Fd(1), staged(&bml, 0, None, 10)).is_some());
        for t in 1..=5 {
            assert!(s.admit(Fd(1), staged(&bml, t, None, 10)).is_none());
        }
        // A cursor chain harvests cursor writes, capped by max_ops...
        let got = s.harvest_contiguous(Fd(1), None, 2, 1 << 20);
        assert_eq!(got.iter().map(staged_tag).collect::<Vec<_>>(), vec![1, 2]);
        // ...and by max_bytes (3 fits alone; 4 would exceed 15 bytes).
        let got = s.harvest_contiguous(Fd(1), None, 16, 15);
        assert_eq!(got.iter().map(staged_tag).collect::<Vec<_>>(), vec![3]);
        // A positional chain never harvests cursor writes.
        assert!(s
            .harvest_contiguous(Fd(1), Some(40), 16, 1 << 20)
            .is_empty());
        assert_eq!(s.parked(), 2);
    }

    #[test]
    fn harvest_ignores_unknown_lane_and_sync_items() {
        let s = FdSerializer::new();
        assert!(s.harvest_contiguous(Fd(9), Some(0), 16, 1 << 20).is_empty());
        assert!(s.admit(Fd(1), item(10)).is_some());
        assert!(s.admit(Fd(1), item(11)).is_none());
        // A parked Sync item never joins a write chain.
        assert!(s.harvest_contiguous(Fd(1), None, 16, 1 << 20).is_empty());
        assert_eq!(s.parked(), 1);
    }

    #[test]
    fn first_item_passes_through() {
        let s = FdSerializer::new();
        assert!(s.admit(Fd(1), item(10)).is_some());
        assert_eq!(s.parked(), 0);
    }

    #[test]
    fn second_item_parks_until_complete() {
        let s = FdSerializer::new();
        assert!(s.admit(Fd(1), item(10)).is_some());
        assert!(s.admit(Fd(1), item(11)).is_none());
        assert!(s.admit(Fd(1), item(12)).is_none());
        assert_eq!(s.parked(), 2);
        // Completion releases in FIFO order.
        let next = s.complete(Fd(1)).unwrap();
        assert_eq!(tag(&next), 11);
        let next = s.complete(Fd(1)).unwrap();
        assert_eq!(tag(&next), 12);
        assert!(s.complete(Fd(1)).is_none());
        assert_eq!(s.parked(), 0);
    }

    #[test]
    fn lanes_are_independent() {
        let s = FdSerializer::new();
        assert!(s.admit(Fd(1), item(10)).is_some());
        assert!(
            s.admit(Fd(2), item(20)).is_some(),
            "other fd must not be blocked"
        );
    }

    #[test]
    fn lane_reusable_after_drain() {
        let s = FdSerializer::new();
        assert!(s.admit(Fd(1), item(1)).is_some());
        assert!(s.complete(Fd(1)).is_none());
        assert!(s.admit(Fd(1), item(2)).is_some());
    }

    #[test]
    fn complete_is_total_on_unknown_lane() {
        let s = FdSerializer::new();
        // Never admitted: no panic, no successor.
        assert!(s.complete(Fd(99)).is_none());
        // Double-complete after the lane was removed: same.
        assert!(s.admit(Fd(1), item(1)).is_some());
        assert!(s.complete(Fd(1)).is_none());
        assert!(s.complete(Fd(1)).is_none());
    }

    #[test]
    fn guard_completes_lane_on_drop_and_requeues_successor() {
        use super::super::queue::QueueDiscipline;
        let s = Arc::new(FdSerializer::new());
        let q = Arc::new(WorkQueue::new(QueueDiscipline::SharedFifo, 1));
        assert!(s.admit(Fd(1), item(10)).is_some());
        assert!(s.admit(Fd(1), item(11)).is_none());
        {
            // Worker "drops the StagedWrite on an error path" — the
            // guard still releases the lane and re-enqueues item 11.
            let _guard = s.completion_guard(Fd(1), q.clone());
        }
        assert_eq!(s.parked(), 0);
        let batch = q.pop_batch(0, 10);
        assert_eq!(batch.len(), 1);
        assert_eq!(tag(&batch[0]), 11);
    }

    #[test]
    fn guard_parks_orphan_when_queue_closed() {
        use super::super::queue::QueueDiscipline;
        let s = Arc::new(FdSerializer::new());
        let q = Arc::new(WorkQueue::new(QueueDiscipline::SharedFifo, 1));
        assert!(s.admit(Fd(1), item(10)).is_some());
        assert!(s.admit(Fd(1), item(11)).is_none());
        q.close();
        drop(s.completion_guard(Fd(1), q.clone()));
        // The successor lost the race with close but was not dropped.
        assert_eq!(s.orphaned(), 1);
        let drained = s.drain_all();
        assert_eq!(drained.len(), 1);
        assert_eq!(tag(&drained[0]), 11);
        assert_eq!(s.orphaned(), 0);
    }

    #[test]
    fn drain_all_collects_lane_successors() {
        let s = FdSerializer::new();
        assert!(s.admit(Fd(1), item(10)).is_some());
        assert!(s.admit(Fd(1), item(11)).is_none());
        assert!(s.admit(Fd(2), item(20)).is_some());
        assert!(s.admit(Fd(2), item(21)).is_none());
        let mut drained: Vec<u32> = s.drain_all().iter().map(tag).collect();
        drained.sort_unstable();
        assert_eq!(drained, vec![11, 21]);
        // Lanes are gone; stale completes are no-ops.
        assert!(s.complete(Fd(1)).is_none());
        assert!(s.complete(Fd(2)).is_none());
    }
}
