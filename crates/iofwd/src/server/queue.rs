//! The I/O work queue (§IV).
//!
//! > To enable I/O scheduling, we augmented ZOID's thread model with a
//! > work queue model using a shared first-in first-out (FIFO) work
//! > queue. [...] We use a pool of worker threads to handle the I/O tasks
//! > in the work queue. [...] To facilitate I/O multiplexing per thread,
//! > a worker thread dequeues multiple I/O requests and executes them in
//! > an event loop. [...] We use a simple load-balancing heuristic to
//! > balance the tasks among the work threads.
//!
//! The default discipline is the paper's single shared FIFO, where idle
//! workers pulling from one queue *is* the load balancer. A per-worker
//! variant (round-robin enqueue + work stealing when a worker's own queue
//! runs dry) is provided for the queue-discipline ablation bench.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::Sender;
use iofwd_proto::{Fd, OpId, Request, Response};

use crate::bml::BmlBuffer;
use crate::sync::{Condvar, Mutex};
use crate::telemetry::{OpSpan, Telemetry};

/// A finished unit of work routed back to a reactor event loop. The
/// `(token, gen)` pair addresses the originating connection slot; a
/// stale `gen` means the client disconnected while the op was in
/// flight, in which case the reactor still completes the span but has
/// nowhere to write the reply.
pub struct Completion {
    pub token: usize,
    pub gen: u64,
    pub client_id: u32,
    pub seq: u64,
    pub resp: Response,
    pub data: Bytes,
    pub span: OpSpan,
}

/// Where a reactor-origin reply goes once a worker finishes the op.
/// Implemented by the reactor's completion queue; lives here (not in
/// the reactor module) so `WorkItem` does not depend on the reactor.
pub trait CompletionSink: Send + Sync {
    fn complete(&self, completion: Completion);
}

/// How a finished [`WorkItem::Sync`] finds its way back to the client:
/// either a blocked handler thread waiting on a channel (threaded
/// transport) or a reactor completion queue (event-loop transport).
pub enum ReplyTo {
    /// A per-connection handler thread parked on the receiving end.
    Handler(Sender<(Response, Bytes, OpSpan)>),
    /// A reactor connection slot; the sink wakes the owning event loop.
    Reactor {
        sink: Arc<dyn CompletionSink>,
        token: usize,
        gen: u64,
        client_id: u32,
        seq: u64,
    },
}

impl ReplyTo {
    /// Route the outcome to whoever is waiting. The handler path stamps
    /// `reply_ns` and folds telemetry on its own thread; the reactor
    /// path does both when the event loop drains its completion queue.
    pub fn deliver(self, resp: Response, data: Bytes, span: OpSpan) {
        match self {
            // A gone handler (client disconnected mid-op) is not an
            // error; the outcome is simply unobservable.
            ReplyTo::Handler(tx) => {
                let _ = tx.send((resp, data, span));
            }
            ReplyTo::Reactor {
                sink,
                token,
                gen,
                client_id,
                seq,
            } => sink.complete(Completion {
                token,
                gen,
                client_id,
                seq,
                resp,
                data,
                span,
            }),
        }
    }
}

/// A unit of work for the worker pool. Every item carries its lifecycle
/// span; the worker stamps dispatch/backend stages into it.
pub enum WorkItem {
    /// Execute a request and send the outcome back to the waiting client
    /// handler (the synchronous-scheduling path).
    Sync {
        req: Request,
        data: Bytes,
        reply: ReplyTo,
        span: OpSpan,
    },
    /// A staged write: data already copied into BML memory, the client
    /// already released (the asynchronous-staging path). The buffer
    /// returns to the BML when the item is dropped after execution.
    StagedWrite {
        fd: Fd,
        op: OpId,
        /// `Some` for pwrite, `None` for a cursor write.
        offset: Option<u64>,
        buf: BmlBuffer,
        span: OpSpan,
    },
    /// Offset-contiguous staged writes on one descriptor, merged by the
    /// coalescing layer and issued to the backend as a single vectored
    /// write over the constituents' original BML buffers (no copy).
    /// Completion fans back out per constituent: every part keeps its
    /// own `OpId` (descdb outcome) and `OpSpan` (lifecycle), and every
    /// part's span must be completed on every exit path — success,
    /// short-write split, error, or shutdown drain (lint rule R7).
    CoalescedWrite {
        fd: Fd,
        /// In batch order; offsets ascend contiguously (or are all
        /// `None` for a cursor-write chain). Never empty.
        parts: Vec<StagedPart>,
    },
}

/// One constituent of a [`WorkItem::CoalescedWrite`]: exactly the
/// payload of the [`WorkItem::StagedWrite`] it was merged from, minus
/// the shared descriptor.
pub struct StagedPart {
    pub op: OpId,
    /// `Some` for pwrite, `None` for a cursor write.
    pub offset: Option<u64>,
    pub buf: BmlBuffer,
    pub span: OpSpan,
}

impl WorkItem {
    /// The client this work belongs to (from its span), for per-client
    /// admission accounting.
    pub fn client(&self) -> u64 {
        match self {
            WorkItem::Sync { span, .. } => span.client,
            WorkItem::StagedWrite { span, .. } => span.client,
            WorkItem::CoalescedWrite { parts, .. } => parts.first().map_or(0, |p| p.span.client),
        }
    }

    /// When this item entered the queue (its span's enqueue stamp; 0
    /// when telemetry is disabled), for head-of-line-age sampling.
    fn enqueue_ns(&self) -> u64 {
        match self {
            WorkItem::Sync { span, .. } => span.enqueue_ns,
            WorkItem::StagedWrite { span, .. } => span.enqueue_ns,
            WorkItem::CoalescedWrite { parts, .. } => {
                parts.first().map_or(0, |p| p.span.enqueue_ns)
            }
        }
    }
}

/// Queueing discipline, for the ablation in DESIGN.md §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// One shared FIFO; idle workers pull (the paper's design).
    SharedFifo,
    /// Per-worker FIFOs, round-robin placement, stealing on empty.
    PerWorker,
}

/// Returned by [`WorkQueue::push`] when the queue has been closed: the
/// daemon is shutting down and accepts no new work. The rejected item
/// is handed back so the caller can fail it cleanly (reply with an
/// errno, record a deferred error) instead of losing it — a staged
/// write carries a BML buffer that must not be stranded. Boxed so the
/// hot path's `Result` stays a word; the allocation only happens on
/// the cold shutdown race.
pub struct QueueClosed(pub Box<WorkItem>);

impl std::fmt::Debug for QueueClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("QueueClosed(..)")
    }
}

impl std::fmt::Display for QueueClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("work queue is closed")
    }
}

struct QueueState {
    shared: VecDeque<WorkItem>,
    per_worker: Vec<VecDeque<WorkItem>>,
    rr_next: usize,
    closed: bool,
    aborted: bool,
    /// Items currently queued per client — the fairness signal the
    /// reactor uses to park a chatty connection instead of letting it
    /// flood the queue. Entries are removed at zero so an idle client
    /// costs nothing.
    per_client: HashMap<u64, usize>,
}

impl QueueState {
    fn client_inc(&mut self, client: u64) {
        *self.per_client.entry(client).or_insert(0) += 1;
    }

    fn client_dec(&mut self, client: u64) {
        if let Some(n) = self.per_client.get_mut(&client) {
            if *n <= 1 {
                self.per_client.remove(&client);
            } else {
                *n -= 1;
            }
        }
    }
}

/// MPMC work queue with batch dequeue ("I/O multiplexing per thread").
pub struct WorkQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    discipline: QueueDiscipline,
    depth_high_water: AtomicU64,
    total_enqueued: AtomicU64,
    total_steals: AtomicU64,
    telemetry: Arc<Telemetry>,
}

impl WorkQueue {
    pub fn new(discipline: QueueDiscipline, workers: usize) -> Self {
        Self::with_telemetry(discipline, workers, Arc::new(Telemetry::disabled()))
    }

    pub fn with_telemetry(
        discipline: QueueDiscipline,
        workers: usize,
        telemetry: Arc<Telemetry>,
    ) -> Self {
        assert!(workers > 0, "worker pool must be non-empty");
        WorkQueue {
            state: Mutex::new(QueueState {
                shared: VecDeque::new(),
                per_worker: (0..workers).map(|_| VecDeque::new()).collect(),
                rr_next: 0,
                closed: false,
                aborted: false,
                per_client: HashMap::new(),
            }),
            cv: Condvar::new(),
            discipline,
            depth_high_water: AtomicU64::new(0),
            total_enqueued: AtomicU64::new(0),
            total_steals: AtomicU64::new(0),
            telemetry,
        }
    }

    pub fn discipline(&self) -> QueueDiscipline {
        self.discipline
    }

    /// Enqueue a task; wakes one worker. Fails with [`QueueClosed`]
    /// (returning the item) once [`close`](Self::close) has been
    /// called — a handler racing daemon shutdown gets its work back to
    /// fail cleanly rather than a panic.
    pub fn push(&self, item: WorkItem) -> Result<(), QueueClosed> {
        let mut s = self.state.lock();
        if s.closed {
            drop(s);
            return Err(QueueClosed(Box::new(item)));
        }
        s.client_inc(item.client());
        match self.discipline {
            QueueDiscipline::SharedFifo => s.shared.push_back(item),
            QueueDiscipline::PerWorker => {
                let w = s.rr_next;
                s.rr_next = (s.rr_next + 1) % s.per_worker.len();
                s.per_worker[w].push_back(item);
            }
        }
        // Fold the high-water mark while still holding the lock: after
        // `drop(s)` a racing pop could shrink the queue first and a
        // racing push could observe (and record) a stale, too-low peak.
        let depth = Self::depth_locked(&s) as u64;
        self.depth_high_water.fetch_max(depth, Ordering::Relaxed);
        self.total_enqueued.fetch_add(1, Ordering::Relaxed);
        drop(s);
        if self.telemetry.enabled() {
            self.telemetry.queue_depth.add(1);
        }
        self.cv.notify_one();
        Ok(())
    }

    /// Dequeue up to `batch` tasks for `worker`, blocking while empty.
    /// Returns an empty vec once the queue is closed and drained.
    ///
    /// Convenience wrapper over [`Self::pop_batch_into`]; the worker
    /// hot loop uses the `_into` form to reuse one buffer per thread
    /// instead of allocating a fresh `Vec` per drain.
    pub fn pop_batch(&self, worker: usize, batch: usize) -> Vec<WorkItem> {
        let mut out = Vec::new();
        self.pop_batch_into(worker, batch, &mut out);
        out
    }

    /// Dequeue up to `batch` tasks for `worker` into `out` (cleared
    /// first), blocking while empty. Leaves `out` empty once the queue
    /// is closed and drained. The caller owns — and reuses — the
    /// buffer, so a long-lived worker allocates its batch storage once.
    pub fn pop_batch_into(&self, worker: usize, batch: usize, out: &mut Vec<WorkItem>) {
        assert!(batch > 0);
        out.clear();
        let mut s = self.state.lock();
        loop {
            if s.aborted {
                // Degraded shutdown: remaining items belong to the
                // drain, not the workers.
                return;
            }
            match self.discipline {
                QueueDiscipline::SharedFifo => {
                    while out.len() < batch {
                        match s.shared.pop_front() {
                            Some(it) => out.push(it),
                            None => break,
                        }
                    }
                }
                QueueDiscipline::PerWorker => {
                    while out.len() < batch {
                        match s.per_worker[worker].pop_front() {
                            Some(it) => out.push(it),
                            None => break,
                        }
                    }
                    if out.is_empty() {
                        // Steal from the deepest other queue — the
                        // "simple load-balancing heuristic".
                        let victim = (0..s.per_worker.len())
                            .filter(|&w| w != worker)
                            .max_by_key(|&w| s.per_worker[w].len());
                        if let Some(v) = victim {
                            if let Some(it) = s.per_worker[v].pop_front() {
                                self.total_steals.fetch_add(1, Ordering::Relaxed);
                                out.push(it);
                            }
                        }
                    }
                }
            }
            if !out.is_empty() {
                for it in out.iter() {
                    s.client_dec(it.client());
                }
                drop(s);
                if self.telemetry.enabled() {
                    self.telemetry.queue_depth.add(-(out.len() as i64));
                    self.telemetry
                        .batch_size
                        .record_shard(worker, out.len() as u64);
                    self.telemetry.worker_dispatch.add(worker, out.len() as u64);
                }
                return;
            }
            if s.closed {
                return;
            }
            self.cv.wait(&mut s);
        }
    }

    /// Close the queue: workers drain remaining items, then exit.
    pub fn close(&self) {
        let mut s = self.state.lock();
        s.closed = true;
        drop(s);
        self.cv.notify_all();
    }

    /// Close *and* stop handing items to workers: subsequent
    /// `pop_batch` calls return empty even if items remain. Whatever
    /// is still parked belongs to [`drain_remaining`](Self::drain_remaining)
    /// — the deadline-bounded shutdown drain.
    pub fn abort(&self) {
        let mut s = self.state.lock();
        s.closed = true;
        s.aborted = true;
        drop(s);
        self.cv.notify_all();
    }

    /// Take every item still parked in the queue (all workers' queues
    /// and the shared FIFO), in FIFO order per queue. Used by shutdown
    /// after workers have exited to guarantee no staged write — and no
    /// BML buffer — is silently dropped.
    pub fn drain_remaining(&self) -> Vec<WorkItem> {
        let mut s = self.state.lock();
        let mut out: Vec<WorkItem> = s.shared.drain(..).collect();
        for q in s.per_worker.iter_mut() {
            out.extend(q.drain(..));
        }
        s.per_client.clear();
        drop(s);
        if self.telemetry.enabled() && !out.is_empty() {
            self.telemetry.queue_depth.add(-(out.len() as i64));
        }
        out
    }

    pub fn depth(&self) -> usize {
        Self::depth_locked(&self.state.lock())
    }

    /// How many items `client` has parked in the queue right now — the
    /// reactor's fair-admission signal (park the connection once this
    /// crosses its cap, resume as completions drain it).
    pub fn client_queued(&self, client: u64) -> usize {
        self.state
            .lock()
            .per_client
            .get(&client)
            .copied()
            .unwrap_or(0)
    }

    fn depth_locked(s: &QueueState) -> usize {
        s.shared.len() + s.per_worker.iter().map(|q| q.len()).sum::<usize>()
    }

    /// Enqueue stamp of the oldest item still parked (the front of the
    /// shared FIFO and of each per-worker queue — FIFO order makes the
    /// fronts the oldest candidates). `None` when the queue is empty or
    /// every front predates telemetry (stamp 0). This is the watchdog's
    /// head-of-line-age signal: one bounded scan under the queue lock,
    /// a few times per second, never on the data path.
    pub fn oldest_enqueue_ns(&self) -> Option<u64> {
        let s = self.state.lock();
        s.shared
            .front()
            .into_iter()
            .chain(s.per_worker.iter().filter_map(|q| q.front()))
            .map(|item| item.enqueue_ns())
            .filter(|&ns| ns > 0)
            .min()
    }

    /// Deepest the queue has ever been.
    pub fn depth_high_water(&self) -> u64 {
        self.depth_high_water.load(Ordering::Relaxed)
    }

    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued.load(Ordering::Relaxed)
    }

    pub fn total_steals(&self) -> u64 {
        self.total_steals.load(Ordering::Relaxed)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use std::sync::Arc;

    fn sync_item(tag: u64) -> WorkItem {
        sync_item_for_client(tag, 0)
    }

    fn sync_item_for_client(tag: u64, client: u64) -> WorkItem {
        let (tx, _rx) = unbounded();
        let span = OpSpan {
            client,
            ..OpSpan::default()
        };
        WorkItem::Sync {
            req: Request::Fsync { fd: Fd(tag as u32) },
            data: Bytes::new(),
            reply: ReplyTo::Handler(tx),
            span,
        }
    }

    fn tag_of(item: &WorkItem) -> u64 {
        match item {
            WorkItem::Sync {
                req: Request::Fsync { fd },
                ..
            } => fd.0 as u64,
            _ => panic!("unexpected item"),
        }
    }

    #[test]
    fn shared_fifo_preserves_order() {
        let q = WorkQueue::new(QueueDiscipline::SharedFifo, 2);
        let mut high_water = Vec::new();
        for i in 0..5 {
            q.push(sync_item(i)).unwrap();
            high_water.push(q.depth_high_water());
        }
        // The high-water mark is folded under the queue lock, so it is
        // monotone and exact: after the i-th push it is exactly i+1.
        assert_eq!(high_water, vec![1, 2, 3, 4, 5]);
        let batch = q.pop_batch(0, 3);
        assert_eq!(batch.iter().map(tag_of).collect::<Vec<_>>(), vec![0, 1, 2]);
        let rest = q.pop_batch(1, 10);
        assert_eq!(rest.iter().map(tag_of).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(q.total_enqueued(), 5);
        assert_eq!(q.depth_high_water(), 5);
        // Pops never lower the high-water mark.
        q.push(sync_item(9)).unwrap();
        assert_eq!(q.depth_high_water(), 5);
    }

    #[test]
    fn pop_batch_into_reuses_and_clears_caller_buffer() {
        let q = WorkQueue::new(QueueDiscipline::SharedFifo, 1);
        for i in 0..4 {
            q.push(sync_item(i)).unwrap();
        }
        let mut buf = Vec::new();
        q.pop_batch_into(0, 3, &mut buf);
        assert_eq!(buf.iter().map(tag_of).collect::<Vec<_>>(), vec![0, 1, 2]);
        let cap = buf.capacity();
        // Stale contents from the previous drain must not leak through.
        q.pop_batch_into(0, 3, &mut buf);
        assert_eq!(buf.iter().map(tag_of).collect::<Vec<_>>(), vec![3]);
        assert_eq!(buf.capacity(), cap, "reused allocation, no regrow");
        q.close();
        q.pop_batch_into(0, 3, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn close_drains_then_returns_empty() {
        let q = WorkQueue::new(QueueDiscipline::SharedFifo, 1);
        q.push(sync_item(1)).unwrap();
        q.close();
        assert_eq!(q.pop_batch(0, 10).len(), 1);
        assert!(q.pop_batch(0, 10).is_empty());
    }

    #[test]
    fn push_after_close_returns_queue_closed_with_item() {
        let q = WorkQueue::new(QueueDiscipline::SharedFifo, 1);
        q.push(sync_item(1)).unwrap();
        q.close();
        // A handler racing shutdown gets its item back, not a panic.
        let err = q.push(sync_item(2)).unwrap_err();
        assert_eq!(tag_of(&err.0), 2);
        // The rejected push left no trace in the accounting.
        assert_eq!(q.total_enqueued(), 1);
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        let q = Arc::new(WorkQueue::new(QueueDiscipline::SharedFifo, 1));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop_batch(0, 1));
        std::thread::sleep(std::time::Duration::from_millis(30));
        q.push(sync_item(7)).unwrap();
        let got = t.join().unwrap();
        assert_eq!(tag_of(&got[0]), 7);
    }

    #[test]
    fn per_worker_round_robin_and_steal() {
        let q = WorkQueue::new(QueueDiscipline::PerWorker, 2);
        for i in 0..4 {
            q.push(sync_item(i)).unwrap(); // 0,2 -> worker 0; 1,3 -> worker 1
        }
        let own = q.pop_batch(0, 10);
        assert_eq!(own.iter().map(tag_of).collect::<Vec<_>>(), vec![0, 2]);
        // Worker 0's queue is now empty; it steals from worker 1.
        let stolen = q.pop_batch(0, 10);
        assert_eq!(stolen.len(), 1);
        assert_eq!(tag_of(&stolen[0]), 1);
        assert_eq!(q.total_steals(), 1);
    }

    #[test]
    fn per_worker_steal_drains_other_queues_after_close() {
        // Satellite: under close(), a worker whose own queue is empty
        // must still drain the *other* workers' parked items (one steal
        // per pass) before pop_batch returns empty.
        let q = WorkQueue::new(QueueDiscipline::PerWorker, 3);
        for i in 0..6 {
            q.push(sync_item(i)).unwrap(); // rr: two items per worker
        }
        q.close();
        // Worker 0 empties its own queue...
        assert_eq!(q.pop_batch(0, 10).len(), 2);
        // ...then steals everything parked for workers 1 and 2.
        let mut stolen = Vec::new();
        loop {
            let batch = q.pop_batch(0, 10);
            if batch.is_empty() {
                break;
            }
            stolen.extend(batch.iter().map(tag_of));
        }
        stolen.sort_unstable();
        assert_eq!(stolen, vec![1, 2, 4, 5]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn abort_parks_items_for_drain() {
        let q = WorkQueue::new(QueueDiscipline::PerWorker, 2);
        for i in 0..4 {
            q.push(sync_item(i)).unwrap();
        }
        q.abort();
        // Workers get nothing after an abort, even with items parked.
        assert!(q.pop_batch(0, 10).is_empty());
        assert!(q.pop_batch(1, 10).is_empty());
        // The drain recovers every item exactly once.
        let mut drained: Vec<u64> = q.drain_remaining().iter().map(tag_of).collect();
        drained.sort_unstable();
        assert_eq!(drained, vec![0, 1, 2, 3]);
        assert!(q.drain_remaining().is_empty());
    }

    #[test]
    fn per_client_counts_track_push_pop_and_drain() {
        let q = WorkQueue::new(QueueDiscipline::SharedFifo, 1);
        for i in 0..3 {
            q.push(sync_item_for_client(i, 7)).unwrap();
        }
        q.push(sync_item_for_client(9, 8)).unwrap();
        assert_eq!(q.client_queued(7), 3);
        assert_eq!(q.client_queued(8), 1);
        assert_eq!(q.client_queued(99), 0);
        // Pops release the pusher's budget item by item.
        assert_eq!(q.pop_batch(0, 2).len(), 2);
        assert_eq!(q.client_queued(7), 1);
        assert_eq!(q.client_queued(8), 1);
        // The shutdown drain forgets all per-client accounting.
        q.abort();
        assert_eq!(q.drain_remaining().len(), 2);
        assert_eq!(q.client_queued(7), 0);
        assert_eq!(q.client_queued(8), 0);
    }

    #[test]
    fn oldest_enqueue_ns_follows_the_queue_fronts() {
        let q = WorkQueue::new(QueueDiscipline::PerWorker, 2);
        assert_eq!(q.oldest_enqueue_ns(), None);
        let stamped = |tag: u64, ns: u64| {
            let (tx, _rx) = unbounded();
            let span = OpSpan {
                enqueue_ns: ns,
                ..OpSpan::default()
            };
            WorkItem::Sync {
                req: Request::Fsync { fd: Fd(tag as u32) },
                data: Bytes::new(),
                reply: ReplyTo::Handler(tx),
                span,
            }
        };
        q.push(stamped(0, 900)).unwrap(); // rr -> worker 0
        q.push(stamped(1, 500)).unwrap(); // rr -> worker 1
                                          // The probe scans every queue front, not just one FIFO.
        assert_eq!(q.oldest_enqueue_ns(), Some(500));
        assert_eq!(q.pop_batch(1, 1).len(), 1);
        assert_eq!(q.oldest_enqueue_ns(), Some(900));
        assert_eq!(q.pop_batch(0, 1).len(), 1);
        assert_eq!(q.oldest_enqueue_ns(), None);
        // Unstamped items (telemetry disabled) never report an age.
        q.push(stamped(2, 0)).unwrap();
        assert_eq!(q.oldest_enqueue_ns(), None);
    }

    #[test]
    fn blocked_workers_all_released_by_close() {
        let q = Arc::new(WorkQueue::new(QueueDiscipline::SharedFifo, 4));
        let mut handles = Vec::new();
        for w in 0..4 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || q.pop_batch(w, 1).len()));
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), 0);
        }
    }
}
