//! The I/O work queue (§IV).
//!
//! > To enable I/O scheduling, we augmented ZOID's thread model with a
//! > work queue model using a shared first-in first-out (FIFO) work
//! > queue. [...] We use a pool of worker threads to handle the I/O tasks
//! > in the work queue. [...] To facilitate I/O multiplexing per thread,
//! > a worker thread dequeues multiple I/O requests and executes them in
//! > an event loop. [...] We use a simple load-balancing heuristic to
//! > balance the tasks among the work threads.
//!
//! The default discipline is the paper's single shared FIFO, where idle
//! workers pulling from one queue *is* the load balancer. A per-worker
//! variant (client-affinity enqueue + work stealing when a worker's own
//! queue runs dry) is provided for the queue-discipline ablation bench.
//!
//! Both disciplines sit on one sharded implementation: a `SharedFifo`
//! queue is a single shard, a `PerWorker` queue is one shard per
//! worker. Each shard has its own lock, so under `PerWorker` a push
//! and `n` pops proceed without contending on a global queue mutex;
//! each shard also has its own sleep/wake eventcount (version +
//! condvar) that a push bumps after publishing an item, so the wakeup
//! goes to the shard's home worker — not an arbitrary sleeper that
//! would have to steal.
//!
//! Placement is by *client affinity* (a multiplicative hash of the
//! item's client id), not round-robin: one client's ops stay FIFO in
//! one shard, so an fsync barrier is dequeued only after that client's
//! earlier staged writes, and offset-adjacent writes arrive in the
//! same drained batch where the coalescer can still merge them.
//! Round-robin placement scatters a client's stream across every
//! shard, which reorders barriers against their writes and destroys
//! coalescing adjacency — measurably worse on few-core hosts. Idle
//! workers steal *half* the deepest other shard (min one item), so a
//! steal amortizes its lock round-trip the same way a batch drain
//! does; a push that finds its home shard already `HELP_DEPTH` deep
//! also wakes a sleeper on another shard to come steal. The steal path
//! is model-checked by `work_stealing_delivers_exactly_once` in the
//! loom suite.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::Sender;
use iofwd_proto::{Fd, OpId, Request, Response};

use crate::bml::BmlBuffer;
use crate::sync::{Condvar, Mutex};
use crate::telemetry::{OpSpan, Telemetry};

/// A finished unit of work routed back to a reactor event loop. The
/// `(token, gen)` pair addresses the originating connection slot; a
/// stale `gen` means the client disconnected while the op was in
/// flight, in which case the reactor still completes the span but has
/// nowhere to write the reply.
pub struct Completion {
    pub token: usize,
    pub gen: u64,
    pub client_id: u32,
    pub seq: u64,
    pub resp: Response,
    pub data: Bytes,
    pub span: OpSpan,
}

/// Where a reactor-origin reply goes once a worker finishes the op.
/// Implemented by the reactor's completion queue; lives here (not in
/// the reactor module) so `WorkItem` does not depend on the reactor.
pub trait CompletionSink: Send + Sync {
    fn complete(&self, completion: Completion);
}

/// How a finished [`WorkItem::Sync`] finds its way back to the client:
/// either a blocked handler thread waiting on a channel (threaded
/// transport) or a reactor completion queue (event-loop transport).
pub enum ReplyTo {
    /// A per-connection handler thread parked on the receiving end.
    Handler(Sender<(Response, Bytes, OpSpan)>),
    /// A reactor connection slot; the sink wakes the owning event loop.
    Reactor {
        sink: Arc<dyn CompletionSink>,
        token: usize,
        gen: u64,
        client_id: u32,
        seq: u64,
    },
}

impl ReplyTo {
    /// Route the outcome to whoever is waiting. The handler path stamps
    /// `reply_ns` and folds telemetry on its own thread; the reactor
    /// path does both when the event loop drains its completion queue.
    pub fn deliver(self, resp: Response, data: Bytes, span: OpSpan) {
        match self {
            // A gone handler (client disconnected mid-op) is not an
            // error; the outcome is simply unobservable.
            ReplyTo::Handler(tx) => {
                let _ = tx.send((resp, data, span));
            }
            ReplyTo::Reactor {
                sink,
                token,
                gen,
                client_id,
                seq,
            } => sink.complete(Completion {
                token,
                gen,
                client_id,
                seq,
                resp,
                data,
                span,
            }),
        }
    }
}

/// A unit of work for the worker pool. Every item carries its lifecycle
/// span; the worker stamps dispatch/backend stages into it.
pub enum WorkItem {
    /// Execute a request and send the outcome back to the waiting client
    /// handler (the synchronous-scheduling path).
    Sync {
        req: Request,
        data: Bytes,
        reply: ReplyTo,
        span: OpSpan,
    },
    /// A staged write: data already copied into BML memory, the client
    /// already released (the asynchronous-staging path). The buffer
    /// returns to the BML when the item is dropped after execution.
    StagedWrite {
        fd: Fd,
        op: OpId,
        /// `Some` for pwrite, `None` for a cursor write.
        offset: Option<u64>,
        buf: BmlBuffer,
        span: OpSpan,
    },
    /// Offset-contiguous staged writes on one descriptor, merged by the
    /// coalescing layer and issued to the backend as a single vectored
    /// write over the constituents' original BML buffers (no copy).
    /// Completion fans back out per constituent: every part keeps its
    /// own `OpId` (descdb outcome) and `OpSpan` (lifecycle), and every
    /// part's span must be completed on every exit path — success,
    /// short-write split, error, or shutdown drain (lint rule R7).
    CoalescedWrite {
        fd: Fd,
        /// In batch order; offsets ascend contiguously (or are all
        /// `None` for a cursor-write chain). Never empty.
        parts: Vec<StagedPart>,
    },
}

/// One constituent of a [`WorkItem::CoalescedWrite`]: exactly the
/// payload of the [`WorkItem::StagedWrite`] it was merged from, minus
/// the shared descriptor.
pub struct StagedPart {
    pub op: OpId,
    /// `Some` for pwrite, `None` for a cursor write.
    pub offset: Option<u64>,
    pub buf: BmlBuffer,
    pub span: OpSpan,
}

impl WorkItem {
    /// The client this work belongs to (from its span), for per-client
    /// admission accounting.
    pub fn client(&self) -> u64 {
        match self {
            WorkItem::Sync { span, .. } => span.client,
            WorkItem::StagedWrite { span, .. } => span.client,
            WorkItem::CoalescedWrite { parts, .. } => parts.first().map_or(0, |p| p.span.client),
        }
    }

    /// When this item entered the queue (its span's enqueue stamp; 0
    /// when telemetry is disabled), for head-of-line-age sampling.
    fn enqueue_ns(&self) -> u64 {
        match self {
            WorkItem::Sync { span, .. } => span.enqueue_ns,
            WorkItem::StagedWrite { span, .. } => span.enqueue_ns,
            WorkItem::CoalescedWrite { parts, .. } => {
                parts.first().map_or(0, |p| p.span.enqueue_ns)
            }
        }
    }
}

/// Queueing discipline, for the ablation in DESIGN.md §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// One shared FIFO; idle workers pull (the paper's design).
    SharedFifo,
    /// Per-worker FIFOs, client-affinity placement, stealing on empty.
    PerWorker,
}

/// Returned by [`WorkQueue::push`] when the queue has been closed: the
/// daemon is shutting down and accepts no new work. The rejected item
/// is handed back so the caller can fail it cleanly (reply with an
/// errno, record a deferred error) instead of losing it — a staged
/// write carries a BML buffer that must not be stranded. Boxed so the
/// hot path's `Result` stays a word; the allocation only happens on
/// the cold shutdown race.
pub struct QueueClosed(pub Box<WorkItem>);

impl std::fmt::Debug for QueueClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("QueueClosed(..)")
    }
}

impl std::fmt::Display for QueueClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("work queue is closed")
    }
}

/// One work-queue shard: a FIFO deque behind its own lock, so pushers
/// and poppers touching different shards never contend.
struct Shard {
    state: Mutex<ShardState>,
    /// Depth cache maintained under the shard lock; read lock-free by
    /// the steal heuristic, the termination check, and `depth()`.
    depth: AtomicUsize,
    /// This shard's sleep/wake eventcount. Per-shard, not global, so a
    /// push wakes the shard's *home* worker — a global `notify_one`
    /// wakes an arbitrary sleeper, which on a sparse queue turns
    /// nearly every dispatch into a cross-shard steal plus an extra
    /// context switch.
    sleep: Sleep,
}

struct ShardState {
    items: VecDeque<WorkItem>,
    /// Set under this shard's lock by `close`/`abort`, so a push can
    /// never race past shutdown into a shard workers have abandoned.
    closed: bool,
}

/// Sleep/wake eventcount. A sleeper samples its shard's version,
/// re-scans, and blocks only if no push has bumped the version since
/// the sample — a push landing between scan and sleep is therefore
/// never a lost wakeup, without pushers and sleepers sharing the shard
/// locks.
struct Sleep {
    version: Mutex<u64>,
    cv: Condvar,
}

impl Sleep {
    fn wake_one(&self) {
        *self.version.lock() += 1;
        self.cv.notify_one();
    }

    fn wake_all(&self) {
        *self.version.lock() += 1;
        self.cv.notify_all();
    }
}

/// Home-shard depth at which a push also wakes a sleeper on another
/// shard to come steal. Below this, waking only the home worker keeps
/// one client's stream on one core with no cross-shard traffic; at or
/// above it, the backlog is worth a thief's context switch. The helper
/// choice rotates with the depth so a sustained backlog recruits every
/// other shard in turn.
const HELP_DEPTH: usize = 4;

/// MPMC work queue with batch dequeue ("I/O multiplexing per thread").
///
/// Internally sharded: [`QueueDiscipline::SharedFifo`] is one shard
/// (the paper's strict FIFO), [`QueueDiscipline::PerWorker`] is one
/// shard per worker with client-affinity placement and
/// steal-half-from-deepest when a worker's own shard runs dry. All
/// cross-shard coordination
/// (sleeping, fairness accounting) lives outside the shard locks, so
/// the hot push/pop path takes exactly one uncontended mutex.
pub struct WorkQueue {
    shards: Vec<Shard>,
    /// Items currently queued per client — the fairness signal the
    /// reactor uses to park a chatty connection instead of letting it
    /// flood the queue. Entries are removed at zero so an idle client
    /// costs nothing. Charged *before* an item becomes visible in a
    /// shard, so `client_queued` never under-counts a pushed item.
    per_client: Mutex<HashMap<u64, usize>>,
    discipline: QueueDiscipline,
    closed: AtomicBool,
    aborted: AtomicBool,
    depth_high_water: AtomicU64,
    total_enqueued: AtomicU64,
    total_steals: AtomicU64,
    telemetry: Arc<Telemetry>,
}

impl WorkQueue {
    pub fn new(discipline: QueueDiscipline, workers: usize) -> Self {
        Self::with_telemetry(discipline, workers, Arc::new(Telemetry::disabled()))
    }

    pub fn with_telemetry(
        discipline: QueueDiscipline,
        workers: usize,
        telemetry: Arc<Telemetry>,
    ) -> Self {
        assert!(workers > 0, "worker pool must be non-empty");
        let nshards = match discipline {
            QueueDiscipline::SharedFifo => 1,
            QueueDiscipline::PerWorker => workers,
        };
        WorkQueue {
            shards: (0..nshards)
                .map(|_| Shard {
                    state: Mutex::new(ShardState {
                        items: VecDeque::new(),
                        closed: false,
                    }),
                    depth: AtomicUsize::new(0),
                    sleep: Sleep {
                        version: Mutex::new(0),
                        cv: Condvar::new(),
                    },
                })
                .collect(),
            per_client: Mutex::new(HashMap::new()),
            discipline,
            closed: AtomicBool::new(false),
            aborted: AtomicBool::new(false),
            depth_high_water: AtomicU64::new(0),
            total_enqueued: AtomicU64::new(0),
            total_steals: AtomicU64::new(0),
            telemetry,
        }
    }

    pub fn discipline(&self) -> QueueDiscipline {
        self.discipline
    }

    /// Home shard for a client: a Fibonacci multiplicative hash of the
    /// client id. Affinity — not round-robin — keeps one client's ops
    /// FIFO within a shard, so its fsync barriers sort behind its
    /// staged writes and adjacent writes stay coalescible; imbalance
    /// across clients is corrected by stealing, not placement.
    fn shard_of(&self, client: u64) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        (client.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.shards.len()
    }

    /// Enqueue a task; wakes one worker. Fails with [`QueueClosed`]
    /// (returning the item) once [`close`](Self::close) has been
    /// called — a handler racing daemon shutdown gets its work back to
    /// fail cleanly rather than a panic.
    pub fn push(&self, item: WorkItem) -> Result<(), QueueClosed> {
        let client = item.client();
        // Pre-charge the fairness budget before the item is visible in
        // any shard; un-charge if the shard turns out to be closed.
        self.client_inc(client);
        let shard_ix = self.shard_of(client);
        let shard = &self.shards[shard_ix];
        let mut s = shard.state.lock();
        if s.closed {
            drop(s);
            self.client_dec(client);
            return Err(QueueClosed(Box::new(item)));
        }
        s.items.push_back(item);
        let shard_depth = s.items.len();
        shard.depth.store(shard_depth, Ordering::Release);
        // Fold the high-water mark while still holding this shard's
        // lock: exact for the single-shard FIFO (pushes serialize), a
        // tight approximation across sharded queues.
        let depth = self.depth() as u64;
        self.depth_high_water.fetch_max(depth, Ordering::Relaxed);
        drop(s);
        self.total_enqueued.fetch_add(1, Ordering::Relaxed);
        if self.telemetry.enabled() {
            self.telemetry.queue_depth.add(1);
            self.telemetry.shard_depth.add(shard_ix, 1);
        }
        // Bump the home shard's eventcount after the item is visible so
        // a scanning worker that missed it re-checks instead of
        // sleeping.
        shard.sleep.wake_one();
        // A deep home shard is worth a thief: recruit a sleeper from
        // another shard, rotating the choice with the depth so a
        // sustained backlog reaches every potential helper.
        let nshards = self.shards.len();
        if shard_depth >= HELP_DEPTH && nshards > 1 {
            // The offset is in [1, nshards-1], so the helper is never
            // the home shard itself.
            let helper = (shard_ix + 1 + shard_depth % (nshards - 1)) % nshards;
            self.shards[helper].sleep.wake_one();
        }
        Ok(())
    }

    /// Dequeue up to `batch` tasks for `worker`, blocking while empty.
    /// Returns an empty vec once the queue is closed and drained.
    ///
    /// Convenience wrapper over [`Self::pop_batch_into`]; the worker
    /// hot loop uses the `_into` form to reuse one buffer per thread
    /// instead of allocating a fresh `Vec` per drain.
    pub fn pop_batch(&self, worker: usize, batch: usize) -> Vec<WorkItem> {
        let mut out = Vec::new();
        self.pop_batch_into(worker, batch, &mut out);
        out
    }

    /// Dequeue up to `batch` tasks for `worker` into `out` (cleared
    /// first), blocking while empty. Leaves `out` empty once the queue
    /// is closed and drained. The caller owns — and reuses — the
    /// buffer, so a long-lived worker allocates its batch storage once.
    pub fn pop_batch_into(&self, worker: usize, batch: usize, out: &mut Vec<WorkItem>) {
        assert!(batch > 0);
        out.clear();
        let nshards = self.shards.len();
        let own_ix = worker % nshards;
        loop {
            if self.aborted.load(Ordering::Acquire) {
                // Degraded shutdown: remaining items belong to the
                // drain, not the workers.
                return;
            }
            // Sample the home shard's eventcount before scanning: a
            // push landing after this sample bumps the version and
            // defeats the sleep at the bottom of the loop. Pushes to
            // *other* shards wake their own home workers (or recruit a
            // helper once deep), so missing them here strands nothing.
            let sampled = *self.shards[own_ix].sleep.version.lock();
            let from_own;
            {
                let shard = &self.shards[own_ix];
                let mut s = shard.state.lock();
                while out.len() < batch {
                    match s.items.pop_front() {
                        Some(it) => out.push(it),
                        None => break,
                    }
                }
                from_own = out.len();
                shard.depth.store(s.items.len(), Ordering::Release);
            }
            let mut stolen_from = None;
            if out.is_empty() && nshards > 1 {
                // Steal HALF the deepest other shard (capped at the
                // batch size) — the "simple load-balancing heuristic".
                // Half, not one: a steal then costs the same lock
                // round-trip as a batch drain but feeds a whole event
                // loop, instead of waking the thief once per item.
                // Depth caches are read lock-free; only the chosen
                // victim is locked.
                let victim = (0..nshards)
                    .filter(|&s| s != own_ix)
                    .max_by_key(|&s| self.shards[s].depth.load(Ordering::Acquire));
                if let Some(v) = victim {
                    let shard = &self.shards[v];
                    let mut s = shard.state.lock();
                    let take = s.items.len().div_ceil(2).min(batch);
                    for _ in 0..take {
                        match s.items.pop_front() {
                            Some(it) => out.push(it),
                            None => break,
                        }
                    }
                    if !out.is_empty() {
                        shard.depth.store(s.items.len(), Ordering::Release);
                        stolen_from = Some((v, out.len()));
                        self.total_steals.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            if !out.is_empty() {
                {
                    let mut clients = self.per_client.lock();
                    for it in out.iter() {
                        Self::client_dec_locked(&mut clients, it.client());
                    }
                }
                if self.telemetry.enabled() {
                    self.telemetry.queue_depth.add(-(out.len() as i64));
                    if from_own > 0 {
                        self.telemetry.shard_depth.add(own_ix, -(from_own as i64));
                    }
                    if let Some((v, n)) = stolen_from {
                        self.telemetry.steal_ops.inc();
                        self.telemetry.shard_depth.add(v, -(n as i64));
                    }
                    self.telemetry
                        .batch_size
                        .record_shard(worker, out.len() as u64);
                    self.telemetry.worker_dispatch.add(worker, out.len() as u64);
                }
                return;
            }
            if self.closed.load(Ordering::Acquire) && self.depth() == 0 {
                // After close no push can land, so shard depths only
                // shrink: once the sum reads zero the queue is drained
                // for good and every worker can exit.
                return;
            }
            let sleep = &self.shards[own_ix].sleep;
            let mut ver = sleep.version.lock();
            if *ver == sampled {
                sleep.cv.wait(&mut ver);
            }
        }
    }

    /// Close the queue: workers drain remaining items, then exit.
    pub fn close(&self) {
        for shard in &self.shards {
            shard.state.lock().closed = true;
        }
        self.closed.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.sleep.wake_all();
        }
    }

    /// Close *and* stop handing items to workers: subsequent
    /// `pop_batch` calls return empty even if items remain. Whatever
    /// is still parked belongs to [`drain_remaining`](Self::drain_remaining)
    /// — the deadline-bounded shutdown drain.
    pub fn abort(&self) {
        for shard in &self.shards {
            shard.state.lock().closed = true;
        }
        self.closed.store(true, Ordering::Release);
        self.aborted.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.sleep.wake_all();
        }
    }

    /// Take every item still parked in the queue (every shard, in
    /// shard order), in FIFO order per shard. Used by shutdown after
    /// workers have exited to guarantee no staged write — and no BML
    /// buffer — is silently dropped.
    pub fn drain_remaining(&self) -> Vec<WorkItem> {
        let mut out = Vec::new();
        for (ix, shard) in self.shards.iter().enumerate() {
            let mut s = shard.state.lock();
            let n = s.items.len();
            out.extend(s.items.drain(..));
            shard.depth.store(0, Ordering::Release);
            drop(s);
            if self.telemetry.enabled() && n > 0 {
                self.telemetry.shard_depth.add(ix, -(n as i64));
            }
        }
        self.per_client.lock().clear();
        if self.telemetry.enabled() && !out.is_empty() {
            self.telemetry.queue_depth.add(-(out.len() as i64));
        }
        out
    }

    pub fn depth(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.depth.load(Ordering::Acquire))
            .sum()
    }

    /// How many items `client` has parked in the queue right now — the
    /// reactor's fair-admission signal (park the connection once this
    /// crosses its cap, resume as completions drain it).
    pub fn client_queued(&self, client: u64) -> usize {
        self.per_client.lock().get(&client).copied().unwrap_or(0)
    }

    fn client_inc(&self, client: u64) {
        *self.per_client.lock().entry(client).or_insert(0) += 1;
    }

    fn client_dec(&self, client: u64) {
        Self::client_dec_locked(&mut self.per_client.lock(), client);
    }

    fn client_dec_locked(map: &mut HashMap<u64, usize>, client: u64) {
        if let Some(n) = map.get_mut(&client) {
            if *n <= 1 {
                map.remove(&client);
            } else {
                *n -= 1;
            }
        }
    }

    /// Enqueue stamp of the oldest item still parked (the front of
    /// each shard — FIFO order makes the fronts the oldest
    /// candidates). `None` when the queue is empty or every front
    /// predates telemetry (stamp 0). This is the watchdog's
    /// head-of-line-age signal: one bounded scan over the shard locks,
    /// a few times per second, never on the data path.
    pub fn oldest_enqueue_ns(&self) -> Option<u64> {
        self.shards
            .iter()
            .filter_map(|shard| shard.state.lock().items.front().map(WorkItem::enqueue_ns))
            .filter(|&ns| ns > 0)
            .min()
    }

    /// Deepest the queue has ever been.
    pub fn depth_high_water(&self) -> u64 {
        self.depth_high_water.load(Ordering::Relaxed)
    }

    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued.load(Ordering::Relaxed)
    }

    pub fn total_steals(&self) -> u64 {
        self.total_steals.load(Ordering::Relaxed)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use std::sync::Arc;

    fn sync_item(tag: u64) -> WorkItem {
        sync_item_for_client(tag, 0)
    }

    fn sync_item_for_client(tag: u64, client: u64) -> WorkItem {
        let (tx, _rx) = unbounded();
        let span = OpSpan {
            client,
            ..OpSpan::default()
        };
        WorkItem::Sync {
            req: Request::Fsync { fd: Fd(tag as u32) },
            data: Bytes::new(),
            reply: ReplyTo::Handler(tx),
            span,
        }
    }

    fn tag_of(item: &WorkItem) -> u64 {
        match item {
            WorkItem::Sync {
                req: Request::Fsync { fd },
                ..
            } => fd.0 as u64,
            _ => panic!("unexpected item"),
        }
    }

    #[test]
    fn shared_fifo_preserves_order() {
        let q = WorkQueue::new(QueueDiscipline::SharedFifo, 2);
        let mut high_water = Vec::new();
        for i in 0..5 {
            q.push(sync_item(i)).unwrap();
            high_water.push(q.depth_high_water());
        }
        // The high-water mark is folded under the queue lock, so it is
        // monotone and exact: after the i-th push it is exactly i+1.
        assert_eq!(high_water, vec![1, 2, 3, 4, 5]);
        let batch = q.pop_batch(0, 3);
        assert_eq!(batch.iter().map(tag_of).collect::<Vec<_>>(), vec![0, 1, 2]);
        let rest = q.pop_batch(1, 10);
        assert_eq!(rest.iter().map(tag_of).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(q.total_enqueued(), 5);
        assert_eq!(q.depth_high_water(), 5);
        // Pops never lower the high-water mark.
        q.push(sync_item(9)).unwrap();
        assert_eq!(q.depth_high_water(), 5);
    }

    #[test]
    fn pop_batch_into_reuses_and_clears_caller_buffer() {
        let q = WorkQueue::new(QueueDiscipline::SharedFifo, 1);
        for i in 0..4 {
            q.push(sync_item(i)).unwrap();
        }
        let mut buf = Vec::new();
        q.pop_batch_into(0, 3, &mut buf);
        assert_eq!(buf.iter().map(tag_of).collect::<Vec<_>>(), vec![0, 1, 2]);
        let cap = buf.capacity();
        // Stale contents from the previous drain must not leak through.
        q.pop_batch_into(0, 3, &mut buf);
        assert_eq!(buf.iter().map(tag_of).collect::<Vec<_>>(), vec![3]);
        assert_eq!(buf.capacity(), cap, "reused allocation, no regrow");
        q.close();
        q.pop_batch_into(0, 3, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn close_drains_then_returns_empty() {
        let q = WorkQueue::new(QueueDiscipline::SharedFifo, 1);
        q.push(sync_item(1)).unwrap();
        q.close();
        assert_eq!(q.pop_batch(0, 10).len(), 1);
        assert!(q.pop_batch(0, 10).is_empty());
    }

    #[test]
    fn push_after_close_returns_queue_closed_with_item() {
        let q = WorkQueue::new(QueueDiscipline::SharedFifo, 1);
        q.push(sync_item(1)).unwrap();
        q.close();
        // A handler racing shutdown gets its item back, not a panic.
        let err = q.push(sync_item(2)).unwrap_err();
        assert_eq!(tag_of(&err.0), 2);
        // The rejected push left no trace in the accounting.
        assert_eq!(q.total_enqueued(), 1);
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        let q = Arc::new(WorkQueue::new(QueueDiscipline::SharedFifo, 1));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop_batch(0, 1));
        std::thread::sleep(std::time::Duration::from_millis(30));
        q.push(sync_item(7)).unwrap();
        let got = t.join().unwrap();
        assert_eq!(tag_of(&got[0]), 7);
    }

    #[test]
    fn per_worker_affinity_placement_and_steal() {
        let q = WorkQueue::new(QueueDiscipline::PerWorker, 2);
        // Clients 0 and 1 hash to different shards with two workers.
        assert_ne!(q.shard_of(0), q.shard_of(1));
        q.push(sync_item_for_client(0, 0)).unwrap();
        q.push(sync_item_for_client(1, 1)).unwrap();
        q.push(sync_item_for_client(2, 0)).unwrap();
        q.push(sync_item_for_client(3, 1)).unwrap();
        // Client 0's items land together, in order, on its home shard.
        let own = q.pop_batch(q.shard_of(0), 10);
        assert_eq!(own.iter().map(tag_of).collect::<Vec<_>>(), vec![0, 2]);
        // That shard is now dry; the worker steals half of client 1's
        // shard (two items -> one).
        let stolen = q.pop_batch(q.shard_of(0), 10);
        assert_eq!(stolen.iter().map(tag_of).collect::<Vec<_>>(), vec![1]);
        assert_eq!(q.total_steals(), 1);
    }

    #[test]
    fn per_worker_affinity_keeps_one_client_fifo_on_one_shard() {
        let q = WorkQueue::new(QueueDiscipline::PerWorker, 4);
        for i in 0..6 {
            q.push(sync_item_for_client(i, 42)).unwrap();
        }
        // One client never spreads: its home worker drains everything
        // in push order, and no steal was needed to get there.
        let batch = q.pop_batch(q.shard_of(42), 10);
        assert_eq!(
            batch.iter().map(tag_of).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5]
        );
        assert_eq!(q.total_steals(), 0);
    }

    #[test]
    fn per_worker_steal_drains_other_queues_after_close() {
        // Satellite: under close(), a worker whose own queue is empty
        // must still drain the *other* workers' parked items (stealing
        // half the deepest victim per pass) before pop_batch returns
        // empty.
        let q = WorkQueue::new(QueueDiscipline::PerWorker, 3);
        for i in 0..6 {
            q.push(sync_item_for_client(i, i)).unwrap(); // affinity spreads clients
        }
        // The spread must actually cross shards for the steal path to
        // be exercised.
        assert!((0..6).any(|c| q.shard_of(c) != q.shard_of(0)));
        q.close();
        // Worker 0 drains its own shard, then steals the rest.
        let mut got = Vec::new();
        loop {
            let batch = q.pop_batch(q.shard_of(0), 10);
            if batch.is_empty() {
                break;
            }
            got.extend(batch.iter().map(tag_of));
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(q.depth(), 0);
        assert!(q.total_steals() >= 1);
    }

    #[test]
    fn abort_parks_items_for_drain() {
        let q = WorkQueue::new(QueueDiscipline::PerWorker, 2);
        for i in 0..4 {
            q.push(sync_item(i)).unwrap();
        }
        q.abort();
        // Workers get nothing after an abort, even with items parked.
        assert!(q.pop_batch(0, 10).is_empty());
        assert!(q.pop_batch(1, 10).is_empty());
        // The drain recovers every item exactly once.
        let mut drained: Vec<u64> = q.drain_remaining().iter().map(tag_of).collect();
        drained.sort_unstable();
        assert_eq!(drained, vec![0, 1, 2, 3]);
        assert!(q.drain_remaining().is_empty());
    }

    #[test]
    fn per_client_counts_track_push_pop_and_drain() {
        let q = WorkQueue::new(QueueDiscipline::SharedFifo, 1);
        for i in 0..3 {
            q.push(sync_item_for_client(i, 7)).unwrap();
        }
        q.push(sync_item_for_client(9, 8)).unwrap();
        assert_eq!(q.client_queued(7), 3);
        assert_eq!(q.client_queued(8), 1);
        assert_eq!(q.client_queued(99), 0);
        // Pops release the pusher's budget item by item.
        assert_eq!(q.pop_batch(0, 2).len(), 2);
        assert_eq!(q.client_queued(7), 1);
        assert_eq!(q.client_queued(8), 1);
        // The shutdown drain forgets all per-client accounting.
        q.abort();
        assert_eq!(q.drain_remaining().len(), 2);
        assert_eq!(q.client_queued(7), 0);
        assert_eq!(q.client_queued(8), 0);
    }

    #[test]
    fn oldest_enqueue_ns_follows_the_queue_fronts() {
        let q = WorkQueue::new(QueueDiscipline::PerWorker, 2);
        assert_eq!(q.oldest_enqueue_ns(), None);
        let stamped = |tag: u64, ns: u64, client: u64| {
            let (tx, _rx) = unbounded();
            let span = OpSpan {
                client,
                enqueue_ns: ns,
                ..OpSpan::default()
            };
            WorkItem::Sync {
                req: Request::Fsync { fd: Fd(tag as u32) },
                data: Bytes::new(),
                reply: ReplyTo::Handler(tx),
                span,
            }
        };
        // Clients 0 and 1 hash to different shards with two workers.
        assert_ne!(q.shard_of(0), q.shard_of(1));
        q.push(stamped(0, 900, 0)).unwrap();
        q.push(stamped(1, 500, 1)).unwrap();
        // The probe scans every queue front, not just one FIFO.
        assert_eq!(q.oldest_enqueue_ns(), Some(500));
        assert_eq!(q.pop_batch(q.shard_of(1), 1).len(), 1);
        assert_eq!(q.oldest_enqueue_ns(), Some(900));
        assert_eq!(q.pop_batch(q.shard_of(0), 1).len(), 1);
        assert_eq!(q.oldest_enqueue_ns(), None);
        // Unstamped items (telemetry disabled) never report an age.
        q.push(stamped(2, 0, 0)).unwrap();
        assert_eq!(q.oldest_enqueue_ns(), None);
    }

    #[test]
    fn blocked_workers_all_released_by_close() {
        let q = Arc::new(WorkQueue::new(QueueDiscipline::SharedFifo, 4));
        let mut handles = Vec::new();
        for w in 0..4 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || q.pop_batch(w, 1).len()));
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), 0);
        }
    }
}
