//! The I/O work queue (§IV).
//!
//! > To enable I/O scheduling, we augmented ZOID's thread model with a
//! > work queue model using a shared first-in first-out (FIFO) work
//! > queue. [...] We use a pool of worker threads to handle the I/O tasks
//! > in the work queue. [...] To facilitate I/O multiplexing per thread,
//! > a worker thread dequeues multiple I/O requests and executes them in
//! > an event loop. [...] We use a simple load-balancing heuristic to
//! > balance the tasks among the work threads.
//!
//! The default discipline is the paper's single shared FIFO, where idle
//! workers pulling from one queue *is* the load balancer. A per-worker
//! variant (round-robin enqueue + work stealing when a worker's own queue
//! runs dry) is provided for the queue-discipline ablation bench.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::Sender;
use iofwd_proto::{Fd, OpId, Request, Response};

use crate::bml::BmlBuffer;
use crate::sync::{Condvar, Mutex};
use crate::telemetry::{OpSpan, Telemetry};

/// A unit of work for the worker pool. Every item carries its lifecycle
/// span; the worker stamps dispatch/backend stages into it.
pub enum WorkItem {
    /// Execute a request and send the outcome back to the waiting client
    /// handler (the synchronous-scheduling path).
    Sync {
        req: Request,
        data: Bytes,
        reply: Sender<(Response, Bytes, OpSpan)>,
        span: OpSpan,
    },
    /// A staged write: data already copied into BML memory, the client
    /// already released (the asynchronous-staging path). The buffer
    /// returns to the BML when the item is dropped after execution.
    StagedWrite {
        fd: Fd,
        op: OpId,
        /// `Some` for pwrite, `None` for a cursor write.
        offset: Option<u64>,
        buf: BmlBuffer,
        span: OpSpan,
    },
}

/// Queueing discipline, for the ablation in DESIGN.md §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// One shared FIFO; idle workers pull (the paper's design).
    SharedFifo,
    /// Per-worker FIFOs, round-robin placement, stealing on empty.
    PerWorker,
}

struct QueueState {
    shared: VecDeque<WorkItem>,
    per_worker: Vec<VecDeque<WorkItem>>,
    rr_next: usize,
    closed: bool,
}

/// MPMC work queue with batch dequeue ("I/O multiplexing per thread").
pub struct WorkQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    discipline: QueueDiscipline,
    depth_high_water: AtomicU64,
    total_enqueued: AtomicU64,
    total_steals: AtomicU64,
    telemetry: Arc<Telemetry>,
}

impl WorkQueue {
    pub fn new(discipline: QueueDiscipline, workers: usize) -> Self {
        Self::with_telemetry(discipline, workers, Arc::new(Telemetry::disabled()))
    }

    pub fn with_telemetry(
        discipline: QueueDiscipline,
        workers: usize,
        telemetry: Arc<Telemetry>,
    ) -> Self {
        assert!(workers > 0, "worker pool must be non-empty");
        WorkQueue {
            state: Mutex::new(QueueState {
                shared: VecDeque::new(),
                per_worker: (0..workers).map(|_| VecDeque::new()).collect(),
                rr_next: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            discipline,
            depth_high_water: AtomicU64::new(0),
            total_enqueued: AtomicU64::new(0),
            total_steals: AtomicU64::new(0),
            telemetry,
        }
    }

    pub fn discipline(&self) -> QueueDiscipline {
        self.discipline
    }

    /// Enqueue a task; wakes one worker.
    pub fn push(&self, item: WorkItem) {
        let mut s = self.state.lock();
        assert!(!s.closed, "push on closed work queue");
        match self.discipline {
            QueueDiscipline::SharedFifo => s.shared.push_back(item),
            QueueDiscipline::PerWorker => {
                let w = s.rr_next;
                s.rr_next = (s.rr_next + 1) % s.per_worker.len();
                s.per_worker[w].push_back(item);
            }
        }
        let depth = Self::depth_locked(&s) as u64;
        drop(s);
        self.depth_high_water.fetch_max(depth, Ordering::Relaxed);
        self.total_enqueued.fetch_add(1, Ordering::Relaxed);
        if self.telemetry.enabled() {
            self.telemetry.queue_depth.add(1);
        }
        self.cv.notify_one();
    }

    /// Dequeue up to `batch` tasks for `worker`, blocking while empty.
    /// Returns an empty vec once the queue is closed and drained.
    pub fn pop_batch(&self, worker: usize, batch: usize) -> Vec<WorkItem> {
        assert!(batch > 0);
        let mut s = self.state.lock();
        loop {
            let mut out = Vec::new();
            match self.discipline {
                QueueDiscipline::SharedFifo => {
                    while out.len() < batch {
                        match s.shared.pop_front() {
                            Some(it) => out.push(it),
                            None => break,
                        }
                    }
                }
                QueueDiscipline::PerWorker => {
                    while out.len() < batch {
                        match s.per_worker[worker].pop_front() {
                            Some(it) => out.push(it),
                            None => break,
                        }
                    }
                    if out.is_empty() {
                        // Steal from the deepest other queue — the
                        // "simple load-balancing heuristic".
                        let victim = (0..s.per_worker.len())
                            .filter(|&w| w != worker)
                            .max_by_key(|&w| s.per_worker[w].len());
                        if let Some(v) = victim {
                            if let Some(it) = s.per_worker[v].pop_front() {
                                self.total_steals.fetch_add(1, Ordering::Relaxed);
                                out.push(it);
                            }
                        }
                    }
                }
            }
            if !out.is_empty() {
                drop(s);
                if self.telemetry.enabled() {
                    self.telemetry.queue_depth.add(-(out.len() as i64));
                    self.telemetry
                        .batch_size
                        .record_shard(worker, out.len() as u64);
                    self.telemetry.worker_dispatch.add(worker, out.len() as u64);
                }
                return out;
            }
            if s.closed {
                return Vec::new();
            }
            self.cv.wait(&mut s);
        }
    }

    /// Close the queue: workers drain remaining items, then exit.
    pub fn close(&self) {
        let mut s = self.state.lock();
        s.closed = true;
        drop(s);
        self.cv.notify_all();
    }

    pub fn depth(&self) -> usize {
        Self::depth_locked(&self.state.lock())
    }

    fn depth_locked(s: &QueueState) -> usize {
        s.shared.len() + s.per_worker.iter().map(|q| q.len()).sum::<usize>()
    }

    /// Deepest the queue has ever been.
    pub fn depth_high_water(&self) -> u64 {
        self.depth_high_water.load(Ordering::Relaxed)
    }

    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued.load(Ordering::Relaxed)
    }

    pub fn total_steals(&self) -> u64 {
        self.total_steals.load(Ordering::Relaxed)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use std::sync::Arc;

    fn sync_item(tag: u64) -> WorkItem {
        let (tx, _rx) = unbounded();
        WorkItem::Sync {
            req: Request::Fsync { fd: Fd(tag as u32) },
            data: Bytes::new(),
            reply: tx,
            span: OpSpan::default(),
        }
    }

    fn tag_of(item: &WorkItem) -> u64 {
        match item {
            WorkItem::Sync {
                req: Request::Fsync { fd },
                ..
            } => fd.0 as u64,
            _ => panic!("unexpected item"),
        }
    }

    #[test]
    fn shared_fifo_preserves_order() {
        let q = WorkQueue::new(QueueDiscipline::SharedFifo, 2);
        for i in 0..5 {
            q.push(sync_item(i));
        }
        let batch = q.pop_batch(0, 3);
        assert_eq!(batch.iter().map(tag_of).collect::<Vec<_>>(), vec![0, 1, 2]);
        let rest = q.pop_batch(1, 10);
        assert_eq!(rest.iter().map(tag_of).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(q.total_enqueued(), 5);
        assert_eq!(q.depth_high_water(), 5);
    }

    #[test]
    fn close_drains_then_returns_empty() {
        let q = WorkQueue::new(QueueDiscipline::SharedFifo, 1);
        q.push(sync_item(1));
        q.close();
        assert_eq!(q.pop_batch(0, 10).len(), 1);
        assert!(q.pop_batch(0, 10).is_empty());
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        let q = Arc::new(WorkQueue::new(QueueDiscipline::SharedFifo, 1));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop_batch(0, 1));
        std::thread::sleep(std::time::Duration::from_millis(30));
        q.push(sync_item(7));
        let got = t.join().unwrap();
        assert_eq!(tag_of(&got[0]), 7);
    }

    #[test]
    fn per_worker_round_robin_and_steal() {
        let q = WorkQueue::new(QueueDiscipline::PerWorker, 2);
        for i in 0..4 {
            q.push(sync_item(i)); // 0,2 -> worker 0; 1,3 -> worker 1
        }
        let own = q.pop_batch(0, 10);
        assert_eq!(own.iter().map(tag_of).collect::<Vec<_>>(), vec![0, 2]);
        // Worker 0's queue is now empty; it steals from worker 1.
        let stolen = q.pop_batch(0, 10);
        assert_eq!(stolen.len(), 1);
        assert_eq!(tag_of(&stolen[0]), 1);
        assert_eq!(q.total_steals(), 1);
    }

    #[test]
    fn blocked_workers_all_released_by_close() {
        let q = Arc::new(WorkQueue::new(QueueDiscipline::SharedFifo, 4));
        let mut handles = Vec::new();
        for w in 0..4 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || q.pop_batch(w, 1).len()));
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), 0);
        }
    }
}
