//! The compute-node side: a POSIX-like client whose every call is
//! forwarded to the ION daemon.
//!
//! On BG/P this role is played by the Compute Node Kernel, which "ships
//! all I/O operations to a dedicated I/O node" (§I). [`Client`] exposes
//! the familiar open/read/write/close veneer; each method builds a
//! request frame, sends it over the connection's transport, and waits for
//! the matching response.
//!
//! With an `AsyncStaged` daemon, writes may return
//! [`WriteOutcome::Staged`]: the data has been copied into ION staging
//! memory and the application may continue computing — the overlap the
//! paper measures. Failures of staged operations surface on a later call
//! on the same descriptor as [`ClientError::Deferred`] (§IV).

use std::io;
use std::time::Instant;

use bytes::Bytes;
use iofwd_proto::{
    DecodeError, Errno, Fd, FileStat, Frame, OpId, OpenFlags, Request, Response, TraceContext,
    TraceExt, Whence,
};

use crate::transport::Conn;

/// Errors surfaced to the application.
#[derive(Debug)]
pub enum ClientError {
    /// The daemon rejected or failed the operation synchronously.
    Remote(Errno),
    /// A *previous* staged operation on this descriptor failed; the
    /// current operation did not run (§IV deferred-error semantics).
    Deferred { op: OpId, errno: Errno },
    /// Transport failure.
    Io(io::Error),
    /// The daemon replied with something unparseable or mismatched.
    Protocol(String),
    /// The connection closed mid-conversation.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Remote(e) => write!(f, "remote error: {e}"),
            ClientError::Deferred { op, errno } => {
                write!(f, "deferred error from staged {op}: {errno}")
            }
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(s) => write!(f, "protocol error: {s}"),
            ClientError::Closed => f.write_str("connection closed"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Protocol(e.to_string())
    }
}

/// How a write completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Executed synchronously; `n` bytes written.
    Completed(u64),
    /// Copied into ION staging memory; executing in the background.
    Staged(OpId),
}

impl WriteOutcome {
    /// Bytes the application may consider written (staged counts in
    /// full — errors, if any, arrive deferred).
    pub fn bytes(&self, requested: u64) -> u64 {
        match self {
            WriteOutcome::Completed(n) => *n,
            WriteOutcome::Staged(_) => requested,
        }
    }
}

/// Client-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    pub requests: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub staged_writes: u64,
}

/// Client-side latency decomposition, accumulated over traced calls
/// whose replies carried a server stage echo. All durations are
/// nanoseconds; server stages come from the daemon's clock, while
/// `client_ns` is this process's wall clock around send→receive — the
/// difference is network + marshalling time, no clock sync needed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Traced calls whose reply carried a stage echo.
    pub calls: u64,
    /// Wall-clock time across those calls (send → reply received).
    pub client_ns: u64,
    /// Sum of the daemon's reported total residency.
    pub server_total_ns: u64,
    /// Per-stage sums as reported by the daemon.
    pub queue_ns: u64,
    pub dispatch_ns: u64,
    pub backend_ns: u64,
    pub reply_ns: u64,
}

impl TraceStats {
    /// Client-observed time not accounted to the server: network and
    /// client-side marshalling.
    pub fn network_ns(&self) -> u64 {
        self.client_ns.saturating_sub(self.server_total_ns)
    }

    /// Server time not attributed to a named stage.
    pub fn other_server_ns(&self) -> u64 {
        self.server_total_ns
            .saturating_sub(self.queue_ns + self.dispatch_ns + self.backend_ns + self.reply_ns)
    }

    /// `(component, share of client-observed time)` over network plus
    /// the server stages, fixed order.
    pub fn shares(&self) -> [(&'static str, f64); 6] {
        let total = self.client_ns.max(1) as f64;
        [
            ("network+client", self.network_ns() as f64 / total),
            ("queue-wait", self.queue_ns as f64 / total),
            ("dispatch", self.dispatch_ns as f64 / total),
            ("backend", self.backend_ns as f64 / total),
            ("reply", self.reply_ns as f64 / total),
            ("server-other", self.other_server_ns() as f64 / total),
        ]
    }

    /// The dominant *server* stage and its share of server residency
    /// (the bottleneck-attribution verdict, excluding network time).
    pub fn dominant_server_stage(&self) -> (&'static str, f64) {
        let total = self.server_total_ns.max(1) as f64;
        let stages = [
            ("queue-wait", self.queue_ns),
            ("dispatch", self.dispatch_ns),
            ("backend", self.backend_ns),
            ("reply", self.reply_ns),
            ("server-other", self.other_server_ns()),
        ];
        let mut best = ("server-other", 0.0);
        for (name, ns) in stages {
            let share = ns as f64 / total;
            if share > best.1 {
                best = (name, share);
            }
        }
        best
    }
}

/// A forwarded-I/O client over any [`Conn`].
pub struct Client {
    conn: Box<dyn Conn>,
    client_id: u32,
    seq: u64,
    stats: ClientStats,
    max_chunk: usize,
    tracing: bool,
    trace: TraceStats,
}

impl Client {
    /// Wrap an established connection.
    pub fn connect(conn: Box<dyn Conn>) -> Client {
        Self::with_id(conn, 0)
    }

    /// Wrap with an explicit client id (e.g. the compute-node rank).
    pub fn with_id(conn: Box<dyn Conn>, client_id: u32) -> Client {
        Client {
            conn,
            client_id,
            seq: 0,
            stats: ClientStats::default(),
            max_chunk: iofwd_proto::MAX_DATA_LEN as usize,
            tracing: false,
            trace: TraceStats::default(),
        }
    }

    /// Attach a sampled trace context to every subsequent request and
    /// accumulate the daemon's echoed stage breakdowns into
    /// [`Client::trace_stats`]. Trace ids are deterministic:
    /// `(client_id + 1) << 32 | seq`.
    pub fn enable_tracing(&mut self) {
        self.tracing = true;
    }

    /// The accumulated latency decomposition (empty unless
    /// [`Client::enable_tracing`] was called and the daemon echoes
    /// stage breakdowns).
    pub fn trace_stats(&self) -> TraceStats {
        self.trace
    }

    /// Cap the per-frame payload; larger application writes are split
    /// into sequential forwarded operations, exactly as CIOD/ZOID
    /// segment transfers that exceed ION memory (§IV: "For large
    /// transfers, both CIOD and ZOID block the I/O operation till
    /// sufficient memory is present"). Defaults to the protocol's frame
    /// limit.
    pub fn set_max_chunk(&mut self, bytes: usize) {
        assert!(bytes > 0 && bytes as u64 <= iofwd_proto::MAX_DATA_LEN);
        self.max_chunk = bytes;
    }

    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    fn call(&mut self, req: &Request, data: Bytes) -> Result<(Response, Bytes), ClientError> {
        self.seq += 1;
        let seq = self.seq;
        self.stats.requests += 1;
        self.stats.bytes_sent += data.len() as u64;
        let mut frame = Frame::request(self.client_id, seq, req, data);
        let started = if self.tracing {
            let trace_id = (u64::from(self.client_id) + 1) << 32 | (seq & 0xffff_ffff);
            frame = frame.with_ext(TraceExt::Ctx(TraceContext::sampled(trace_id)));
            Some(Instant::now())
        } else {
            None
        };
        self.conn.send(frame)?;
        let frame = self.conn.recv()?.ok_or(ClientError::Closed)?;
        if frame.seq != seq {
            return Err(ClientError::Protocol(format!(
                "response out of order: expected seq {seq}, got {}",
                frame.seq
            )));
        }
        if let (Some(started), Some(echo)) = (started, frame.stage_echo()) {
            self.trace.calls += 1;
            self.trace.client_ns += started.elapsed().as_nanos() as u64;
            self.trace.server_total_ns += echo.total_ns;
            self.trace.queue_ns += echo.queue_ns;
            self.trace.dispatch_ns += echo.dispatch_ns;
            self.trace.backend_ns += echo.backend_ns;
            self.trace.reply_ns += echo.reply_ns;
        }
        let resp = frame.decode_response()?;
        self.stats.bytes_received += frame.data.len() as u64;
        Ok((resp, frame.data))
    }

    fn expect_ret(&mut self, req: &Request, data: Bytes) -> Result<i64, ClientError> {
        match self.call(req, data)? {
            (Response::Ok { ret }, _) => Ok(ret),
            (Response::Err { errno }, _) => Err(ClientError::Remote(errno)),
            (Response::DeferredErr { op, errno }, _) => Err(ClientError::Deferred { op, errno }),
            (other @ (Response::Staged { .. } | Response::StatOk { .. }), _) => Err(
                ClientError::Protocol(format!("unexpected response {other:?}")),
            ),
        }
    }

    /// Open (or create) a file on the ION's backend.
    pub fn open(&mut self, path: &str, flags: OpenFlags, mode: u32) -> Result<Fd, ClientError> {
        let ret = self.expect_ret(
            &Request::Open {
                path: path.into(),
                flags,
                mode,
            },
            Bytes::new(),
        )?;
        Ok(Fd(ret as u32))
    }

    /// Open a streaming connection to a remote sink through the ION.
    pub fn connect_socket(&mut self, host: &str, port: u16) -> Result<Fd, ClientError> {
        let ret = self.expect_ret(
            &Request::Connect {
                host: host.into(),
                port,
            },
            Bytes::new(),
        )?;
        Ok(Fd(ret as u32))
    }

    /// Write at the cursor. Staged outcomes count as full writes; call
    /// [`Client::write_detailed`] to distinguish.
    pub fn write(&mut self, fd: Fd, data: &[u8]) -> Result<u64, ClientError> {
        let len = data.len() as u64;
        Ok(self.write_detailed(fd, data)?.bytes(len))
    }

    /// Write, reporting whether the daemon staged it asynchronously.
    /// Writes beyond the chunk limit are split; the reported outcome is
    /// the LAST chunk's (all-or-error semantics still hold: any chunk
    /// failure aborts the remainder).
    pub fn write_detailed(&mut self, fd: Fd, data: &[u8]) -> Result<WriteOutcome, ClientError> {
        let mut outcome = WriteOutcome::Completed(0);
        let mut sent = 0u64;
        for chunk in data.chunks(self.max_chunk.max(1)) {
            let req = Request::Write {
                fd,
                len: chunk.len() as u64,
            };
            outcome = match self.write_impl(req, chunk)? {
                WriteOutcome::Completed(n) => WriteOutcome::Completed(sent + n),
                staged => staged,
            };
            sent += chunk.len() as u64;
        }
        if data.is_empty() {
            let req = Request::Write { fd, len: 0 };
            outcome = self.write_impl(req, data)?;
        }
        Ok(outcome)
    }

    /// Positioned write (split into chunks beyond the frame limit).
    pub fn pwrite(&mut self, fd: Fd, offset: u64, data: &[u8]) -> Result<u64, ClientError> {
        let len = data.len() as u64;
        Ok(self.pwrite_detailed(fd, offset, data)?.bytes(len))
    }

    /// Positioned write, reporting staging.
    pub fn pwrite_detailed(
        &mut self,
        fd: Fd,
        offset: u64,
        data: &[u8],
    ) -> Result<WriteOutcome, ClientError> {
        let mut outcome = WriteOutcome::Completed(0);
        let mut sent = 0u64;
        for chunk in data.chunks(self.max_chunk.max(1)) {
            let req = Request::Pwrite {
                fd,
                offset: offset + sent,
                len: chunk.len() as u64,
            };
            outcome = match self.write_impl(req, chunk)? {
                WriteOutcome::Completed(n) => WriteOutcome::Completed(sent + n),
                staged => staged,
            };
            sent += chunk.len() as u64;
        }
        if data.is_empty() {
            let req = Request::Pwrite { fd, offset, len: 0 };
            outcome = self.write_impl(req, data)?;
        }
        Ok(outcome)
    }

    fn write_impl(&mut self, req: Request, data: &[u8]) -> Result<WriteOutcome, ClientError> {
        match self.call(&req, Bytes::copy_from_slice(data))? {
            (Response::Ok { ret }, _) => Ok(WriteOutcome::Completed(ret as u64)),
            (Response::Staged { op }, _) => {
                self.stats.staged_writes += 1;
                Ok(WriteOutcome::Staged(op))
            }
            (Response::Err { errno }, _) => Err(ClientError::Remote(errno)),
            (Response::DeferredErr { op, errno }, _) => Err(ClientError::Deferred { op, errno }),
            (other @ Response::StatOk { .. }, _) => Err(ClientError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Read from the cursor.
    pub fn read(&mut self, fd: Fd, len: u64) -> Result<Vec<u8>, ClientError> {
        self.read_impl(Request::Read { fd, len })
    }

    /// Positioned read.
    pub fn pread(&mut self, fd: Fd, offset: u64, len: u64) -> Result<Vec<u8>, ClientError> {
        self.read_impl(Request::Pread { fd, offset, len })
    }

    fn read_impl(&mut self, req: Request) -> Result<Vec<u8>, ClientError> {
        match self.call(&req, Bytes::new())? {
            (Response::Ok { ret }, data) => {
                if ret as usize != data.len() {
                    return Err(ClientError::Protocol(format!(
                        "read returned {ret} but carried {} bytes",
                        data.len()
                    )));
                }
                Ok(data.to_vec())
            }
            (Response::Err { errno }, _) => Err(ClientError::Remote(errno)),
            (Response::DeferredErr { op, errno }, _) => Err(ClientError::Deferred { op, errno }),
            (other @ (Response::Staged { .. } | Response::StatOk { .. }), _) => Err(
                ClientError::Protocol(format!("unexpected response {other:?}")),
            ),
        }
    }

    /// Reposition the descriptor; returns the new offset.
    pub fn lseek(&mut self, fd: Fd, offset: i64, whence: Whence) -> Result<u64, ClientError> {
        let ret = self.expect_ret(&Request::Lseek { fd, offset, whence }, Bytes::new())?;
        Ok(ret as u64)
    }

    /// Flush the descriptor. In staged mode this is a barrier: all staged
    /// writes complete (or their first error is reported) before it
    /// returns.
    pub fn fsync(&mut self, fd: Fd) -> Result<(), ClientError> {
        self.expect_ret(&Request::Fsync { fd }, Bytes::new())?;
        Ok(())
    }

    /// Close the descriptor (barriers staged writes, reports deferred
    /// errors).
    pub fn close(&mut self, fd: Fd) -> Result<(), ClientError> {
        self.expect_ret(&Request::Close { fd }, Bytes::new())?;
        Ok(())
    }

    pub fn stat(&mut self, path: &str) -> Result<FileStat, ClientError> {
        match self.call(&Request::Stat { path: path.into() }, Bytes::new())? {
            (Response::StatOk { st }, _) => Ok(st),
            (Response::Err { errno }, _) => Err(ClientError::Remote(errno)),
            (Response::DeferredErr { op, errno }, _) => Err(ClientError::Deferred { op, errno }),
            (other @ (Response::Ok { .. } | Response::Staged { .. }), _) => Err(
                ClientError::Protocol(format!("unexpected response {other:?}")),
            ),
        }
    }

    pub fn fstat(&mut self, fd: Fd) -> Result<FileStat, ClientError> {
        match self.call(&Request::Fstat { fd }, Bytes::new())? {
            (Response::StatOk { st }, _) => Ok(st),
            (Response::Err { errno }, _) => Err(ClientError::Remote(errno)),
            (Response::DeferredErr { op, errno }, _) => Err(ClientError::Deferred { op, errno }),
            (other @ (Response::Ok { .. } | Response::Staged { .. }), _) => Err(
                ClientError::Protocol(format!("unexpected response {other:?}")),
            ),
        }
    }

    pub fn unlink(&mut self, path: &str) -> Result<(), ClientError> {
        self.expect_ret(&Request::Unlink { path: path.into() }, Bytes::new())?;
        Ok(())
    }

    /// Truncate (or zero-extend) an open descriptor. In staged mode this
    /// is ordered after all in-flight staged writes.
    pub fn ftruncate(&mut self, fd: Fd, len: u64) -> Result<(), ClientError> {
        self.expect_ret(&Request::Ftruncate { fd, len }, Bytes::new())?;
        Ok(())
    }

    /// Create a directory on the daemon's backend.
    pub fn mkdir(&mut self, path: &str, mode: u32) -> Result<(), ClientError> {
        self.expect_ret(
            &Request::Mkdir {
                path: path.into(),
                mode,
            },
            Bytes::new(),
        )?;
        Ok(())
    }

    /// List the entries directly under `path`.
    pub fn readdir(&mut self, path: &str) -> Result<Vec<String>, ClientError> {
        match self.call(&Request::Readdir { path: path.into() }, Bytes::new())? {
            (Response::Ok { .. }, data) => {
                iofwd_proto::decode_dirents(&data).map_err(ClientError::from)
            }
            (Response::Err { errno }, _) => Err(ClientError::Remote(errno)),
            (Response::DeferredErr { op, errno }, _) => Err(ClientError::Deferred { op, errno }),
            (other @ (Response::Staged { .. } | Response::StatOk { .. }), _) => Err(
                ClientError::Protocol(format!("unexpected response {other:?}")),
            ),
        }
    }

    /// Query the daemon's live introspection plane. The reply payload is
    /// the rendered document (JSON snapshot, JSON rates, or Prometheus
    /// text, by [`StatsQuery`]); the daemon answers from telemetry
    /// memory without entering the work queue, so this works even while
    /// the data path is saturated or wedged.
    pub fn query_stats(&mut self, query: iofwd_proto::StatsQuery) -> Result<Bytes, ClientError> {
        match self.call(&Request::Stats { query }, Bytes::new())? {
            (Response::Ok { .. }, data) => Ok(data),
            (Response::Err { errno }, _) => Err(ClientError::Remote(errno)),
            (Response::DeferredErr { op, errno }, _) => Err(ClientError::Deferred { op, errno }),
            (other @ (Response::Staged { .. } | Response::StatOk { .. }), _) => Err(
                ClientError::Protocol(format!("unexpected response {other:?}")),
            ),
        }
    }

    /// Orderly disconnect: tells the daemon this client is done.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.expect_ret(&Request::Shutdown, Bytes::new())?;
        Ok(())
    }
}
