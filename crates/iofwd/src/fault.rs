//! Fault injection and retry policy — the robustness subsystem.
//!
//! The ION is a shared chokepoint: when its backend (GPFS through the
//! file-server nodes, or a DA-node socket) hiccups, every compute node
//! behind the daemon feels it. This module gives the daemon a *story*
//! for those hiccups:
//!
//! * [`FaultPlan`] — a deterministic, seeded description of backend
//!   misbehaviour (errnos, short transfers, latency spikes, open-time
//!   failures), consumed by [`crate::backend::FaultBackend`]. The same
//!   plan text + seed always produces the same fault sequence, so a
//!   chaos run is exactly reproducible.
//! * [`RetryPolicy`] — bounded retry with exponential backoff and
//!   deterministic jitter (drawn from `simcore::rng::SimRng`), applied
//!   by the [`crate::server::Engine`] to *transient* errnos only;
//!   permanent errors keep flowing into the descriptor database's
//!   deferred-error channel (§IV's error model).
//!
//! The split between transient and permanent errors is the module's
//! load-bearing decision; see [`is_transient`].

use std::time::Duration;

use iofwd_proto::Errno;
use simcore::rng::SimRng;

/// Errors worth re-attempting: the backend may succeed if asked again.
/// Everything else (no space, no entry, bad descriptor, ...) describes
/// a state that a retry cannot change and must surface to the client —
/// immediately on the sync path, via the descdb deferred-error channel
/// on the staged path.
pub fn is_transient(e: Errno) -> bool {
    matches!(e, Errno::Again | Errno::Io | Errno::ConnReset)
}

// ---------------------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------------------

/// Bounded-retry policy for transient backend errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 disables retrying.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Backoff never exceeds this, jitter included.
    pub max_backoff: Duration,
    /// Give up retrying once an operation has spent this long in the
    /// retry loop, even with attempts left (per-op deadline).
    pub op_deadline: Duration,
}

impl RetryPolicy {
    /// No retrying: every backend error surfaces on the first attempt.
    /// The engine default, so embedders opt in explicitly.
    pub fn disabled() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            op_deadline: Duration::ZERO,
        }
    }

    /// The daemon's default when retrying is enabled: a few quick
    /// attempts, capped well below client RPC patience.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(50),
            op_deadline: Duration::from_secs(2),
        }
    }

    /// `standard()` scaled to `attempts` total attempts (0 and 1 both
    /// mean disabled).
    pub fn with_attempts(attempts: u32) -> RetryPolicy {
        if attempts <= 1 {
            return RetryPolicy::disabled();
        }
        RetryPolicy {
            max_attempts: attempts,
            ..RetryPolicy::standard()
        }
    }

    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Backoff before retry number `retry` (1-based), with multiplicative
    /// jitter in `[0.5, 1.5)` drawn from the caller's deterministic rng.
    pub fn backoff(&self, retry: u32, rng: &mut SimRng) -> Duration {
        let exp = retry.saturating_sub(1).min(20);
        let base = self.base_backoff.saturating_mul(1u32 << exp);
        let jittered = base.mul_f64(rng.uniform(0.5, 1.5));
        jittered.min(self.max_backoff)
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::disabled()
    }
}

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

/// Which backend operations a fault rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    Write,
    Read,
    Open,
    Sync,
    /// Any data-plane or open operation.
    Any,
}

impl OpClass {
    fn parse(s: &str) -> Option<OpClass> {
        Some(match s {
            "write" => OpClass::Write,
            "read" => OpClass::Read,
            "open" => OpClass::Open,
            "sync" => OpClass::Sync,
            "any" => OpClass::Any,
            _ => return None,
        })
    }

    fn matches(self, op: OpClass) -> bool {
        self == OpClass::Any || self == op
    }
}

/// What an armed rule does to the operation it hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail with an errno; the operation does not reach the backend.
    Errno(Errno),
    /// Truncate the transfer: only `numerator/256` of the requested
    /// length goes through (at least one byte). Writes stay POSIX-legal
    /// short writes; reads become short reads.
    Short { numerator: u8 },
    /// Latency spike: stall the operation, then execute it normally.
    DelayUs(u32),
}

/// One trigger: op-class selector, optional path glob, and either a
/// probability (fires on a seeded coin flip) or an nth-op trigger
/// (fires on exactly the nth matching operation, 1-based).
#[derive(Debug, Clone)]
pub struct FaultRule {
    pub class: OpClass,
    /// Glob over the path (or `host:port`) the object was opened with;
    /// `*` matches any run, `?` one byte. `None` matches everything.
    pub path_glob: Option<String>,
    /// Probability in `[0, 1]` that a matching op trips this rule.
    /// Ignored when `nth` is set.
    pub probability: f64,
    /// Fire on exactly the nth op this rule has seen (1-based).
    pub nth: Option<u64>,
    /// Only match *vectored* (coalesced) writes — batches the daemon
    /// merged from several forwarded ops and issued as one
    /// `write_vectored_at`. Lets a plan aim at the coalescing path
    /// specifically; plain rules match both shapes.
    pub vectored: bool,
    pub action: FaultAction,
}

impl FaultRule {
    /// A rule matching every op of `class`, with probability 1 and no
    /// path filter; refine with the builder methods below.
    pub fn on(class: OpClass) -> FaultRule {
        FaultRule {
            class,
            path_glob: None,
            probability: 1.0,
            nth: None,
            vectored: false,
            action: FaultAction::Errno(Errno::Io),
        }
    }

    pub fn path(mut self, glob: &str) -> FaultRule {
        self.path_glob = Some(glob.to_owned());
        self
    }

    /// Restrict the rule to vectored (coalesced) writes.
    pub fn vectored(mut self) -> FaultRule {
        self.vectored = true;
        self
    }

    pub fn probability(mut self, p: f64) -> FaultRule {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    pub fn nth(mut self, n: u64) -> FaultRule {
        self.nth = Some(n);
        self
    }

    pub fn errno(mut self, e: Errno) -> FaultRule {
        self.action = FaultAction::Errno(e);
        self
    }

    /// Short transfer passing roughly `fraction` of each request.
    pub fn short(mut self, fraction: f64) -> FaultRule {
        let num = (fraction.clamp(0.0, 1.0) * 256.0) as u16;
        self.action = FaultAction::Short {
            numerator: num.min(255) as u8,
        };
        self
    }

    pub fn delay_us(mut self, us: u32) -> FaultRule {
        self.action = FaultAction::DelayUs(us);
        self
    }
}

/// A seeded set of fault rules. First matching armed rule wins.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    pub seed: u64,
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    pub fn rule(mut self, r: FaultRule) -> FaultPlan {
        self.rules.push(r);
        self
    }

    /// Parse the `--fault-plan` file format. Line-oriented; `#` starts
    /// a comment. One `seed N` line (optional, default 0) and any
    /// number of rule lines:
    ///
    /// ```text
    /// seed 42
    /// on write p=0.05 errno=EAGAIN
    /// on write nth=7 errno=ENOSPC
    /// on read p=0.1 short=0.5
    /// on open path=/scratch/* errno=EIO
    /// on any p=0.01 delay_us=500
    /// on write vectored p=0.5 short=0.25   # coalesced batches only
    /// ```
    ///
    /// The bare `vectored` token restricts a rule to coalesced
    /// (vectored) writes; without it a `write` rule hits both single
    /// and coalesced writes, each batch counting as one op.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut tokens = line.split_whitespace();
            match tokens.next() {
                Some("seed") => {
                    let v = tokens
                        .next()
                        .ok_or_else(|| format!("line {line_no}: seed needs a value"))?;
                    plan.seed = v
                        .parse()
                        .map_err(|_| format!("line {line_no}: bad seed '{v}'"))?;
                }
                Some("on") => {
                    let class = tokens.next().and_then(OpClass::parse).ok_or_else(|| {
                        format!("line {line_no}: expected write|read|open|sync|any")
                    })?;
                    let mut rule = FaultRule::on(class);
                    let mut action = None;
                    for tok in tokens {
                        if tok == "vectored" {
                            if class != OpClass::Write {
                                return Err(format!(
                                    "line {line_no}: 'vectored' only applies to write rules"
                                ));
                            }
                            rule.vectored = true;
                            continue;
                        }
                        let (key, val) = tok.split_once('=').ok_or_else(|| {
                            format!("line {line_no}: expected key=value, got '{tok}'")
                        })?;
                        match key {
                            "path" => rule.path_glob = Some(val.to_owned()),
                            "p" => {
                                let p: f64 = val.parse().map_err(|_| {
                                    format!("line {line_no}: bad probability '{val}'")
                                })?;
                                if !(0.0..=1.0).contains(&p) {
                                    return Err(format!(
                                        "line {line_no}: probability {p} outside [0,1]"
                                    ));
                                }
                                rule.probability = p;
                            }
                            "nth" => {
                                let n: u64 = val
                                    .parse()
                                    .map_err(|_| format!("line {line_no}: bad nth '{val}'"))?;
                                if n == 0 {
                                    return Err(format!("line {line_no}: nth is 1-based"));
                                }
                                rule.nth = Some(n);
                            }
                            "errno" => {
                                let e = parse_errno(val).ok_or_else(|| {
                                    format!("line {line_no}: unknown errno '{val}'")
                                })?;
                                action = Some(FaultAction::Errno(e));
                            }
                            "short" => {
                                let f: f64 = val.parse().map_err(|_| {
                                    format!("line {line_no}: bad short fraction '{val}'")
                                })?;
                                let num = (f.clamp(0.0, 1.0) * 256.0) as u16;
                                action = Some(FaultAction::Short {
                                    numerator: num.min(255) as u8,
                                });
                            }
                            "delay_us" => {
                                let us: u32 = val
                                    .parse()
                                    .map_err(|_| format!("line {line_no}: bad delay_us '{val}'"))?;
                                action = Some(FaultAction::DelayUs(us));
                            }
                            other => {
                                return Err(format!("line {line_no}: unknown key '{other}'"));
                            }
                        }
                    }
                    rule.action = action.ok_or_else(|| {
                        format!("line {line_no}: rule needs errno=|short=|delay_us=")
                    })?;
                    plan.rules.push(rule);
                }
                Some(other) => {
                    return Err(format!(
                        "line {line_no}: expected 'seed' or 'on', got '{other}'"
                    ));
                }
                None => {}
            }
        }
        Ok(plan)
    }

    /// Decide what (if anything) happens to the `seq`-th op (1-based,
    /// per class) of `class` on `path`. First matching armed rule wins.
    pub fn decide(
        &self,
        class: OpClass,
        path: &str,
        seq: u64,
        rng: &mut SimRng,
    ) -> Option<FaultAction> {
        self.decide_vectored(class, path, seq, rng, false)
    }

    /// [`FaultPlan::decide`] with the op's *vectored* shape made
    /// explicit, so `vectored`-flagged rules can single out coalesced
    /// batches. A coalesced batch consumes exactly one draw per rule,
    /// like any other op.
    pub fn decide_vectored(
        &self,
        class: OpClass,
        path: &str,
        seq: u64,
        rng: &mut SimRng,
        vectored: bool,
    ) -> Option<FaultAction> {
        for rule in &self.rules {
            if !rule.class.matches(class) {
                continue;
            }
            if rule.vectored && !vectored {
                continue;
            }
            if let Some(glob) = &rule.path_glob {
                if !glob_match(glob, path) {
                    continue;
                }
            }
            let armed = match rule.nth {
                Some(n) => seq == n,
                // Every candidate op consumes a draw, so the fault
                // sequence depends only on the op sequence, not on
                // which rules happen to fire.
                None => rng.chance(rule.probability),
            };
            if armed {
                return Some(rule.action);
            }
        }
        None
    }
}

/// Errno spellings accepted in plan files (the injectable subset).
fn parse_errno(s: &str) -> Option<Errno> {
    Some(match s {
        "EIO" => Errno::Io,
        "ENOSPC" => Errno::NoSpc,
        "EAGAIN" => Errno::Again,
        "ECONNRESET" => Errno::ConnReset,
        "ENOENT" => Errno::NoEnt,
        "EACCES" => Errno::Access,
        "ENOMEM" => Errno::NoMem,
        "EPIPE" => Errno::Pipe,
        _ => return None,
    })
}

/// Minimal glob: `*` matches any (possibly empty) run, `?` any single
/// byte, everything else literal. Classic two-pointer backtracking.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p = pattern.as_bytes();
    let t = text.as_bytes();
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == b'?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = pi;
            mark = ti;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            mark += 1;
            ti = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_basics() {
        assert!(glob_match("*", "/anything/at/all"));
        assert!(glob_match("/a/*", "/a/b/c"));
        assert!(glob_match("*.bin", "/data/x.bin"));
        assert!(!glob_match("*.bin", "/data/x.txt"));
        assert!(glob_match("/d?ta", "/data"));
        assert!(!glob_match("/d?ta", "/dta"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
    }

    #[test]
    fn parse_full_plan() {
        let plan = FaultPlan::parse(
            "# chaos\nseed 42\non write p=0.05 errno=EAGAIN\n\
             on write nth=7 errno=ENOSPC\non read p=0.1 short=0.5\n\
             on open path=/scratch/* errno=EIO\non any p=0.01 delay_us=500\n",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 5);
        assert_eq!(plan.rules[0].action, FaultAction::Errno(Errno::Again));
        assert_eq!(plan.rules[1].nth, Some(7));
        assert!(matches!(plan.rules[2].action, FaultAction::Short { .. }));
        assert_eq!(plan.rules[3].path_glob.as_deref(), Some("/scratch/*"));
        assert_eq!(plan.rules[4].action, FaultAction::DelayUs(500));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(FaultPlan::parse("on write").is_err()); // no action
        assert!(FaultPlan::parse("on write errno=EWHAT").is_err());
        assert!(FaultPlan::parse("on frobnicate errno=EIO").is_err());
        assert!(FaultPlan::parse("on write p=1.5 errno=EIO").is_err());
        assert!(FaultPlan::parse("on write nth=0 errno=EIO").is_err());
        assert!(FaultPlan::parse("bogus line").is_err());
        assert!(FaultPlan::parse("# only comments\n\n").is_ok());
        // `vectored` is a write-rule refinement, not a general key.
        assert!(FaultPlan::parse("on read vectored errno=EIO").is_err());
        assert!(FaultPlan::parse("on write vectored errno=EIO").is_ok());
    }

    #[test]
    fn vectored_rules_target_coalesced_writes_only() {
        let plan = FaultPlan::parse("on write vectored errno=ENOSPC\n").unwrap();
        assert!(plan.rules[0].vectored);
        let mut rng = SimRng::new(0);
        // Plain writes slip past a vectored-only rule...
        assert!(plan
            .decide_vectored(OpClass::Write, "/f", 1, &mut rng, false)
            .is_none());
        assert!(plan.decide(OpClass::Write, "/f", 2, &mut rng).is_none());
        // ...coalesced batches are hit.
        assert_eq!(
            plan.decide_vectored(OpClass::Write, "/f", 3, &mut rng, true),
            Some(FaultAction::Errno(Errno::NoSpc))
        );
        // An unflagged rule hits both shapes.
        let both = FaultPlan::new(0).rule(FaultRule::on(OpClass::Write).errno(Errno::Io));
        assert!(both
            .decide_vectored(OpClass::Write, "/f", 1, &mut rng, true)
            .is_some());
        assert!(both.decide(OpClass::Write, "/f", 2, &mut rng).is_some());
    }

    #[test]
    fn decide_is_deterministic() {
        let plan = FaultPlan::new(7).rule(
            FaultRule::on(OpClass::Write)
                .probability(0.3)
                .errno(Errno::Again),
        );
        let run = |seed| {
            let mut rng = SimRng::new(seed);
            (1..=64)
                .map(|seq| plan.decide(OpClass::Write, "/f", seq, &mut rng).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same fault sequence");
        assert_ne!(run(7), run(8), "different seed, different sequence");
        assert!(run(7).iter().any(|&b| b), "p=0.3 over 64 ops fires");
        assert!(!run(7).iter().all(|&b| b), "p=0.3 over 64 ops also misses");
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let plan = FaultPlan::new(0).rule(FaultRule::on(OpClass::Read).nth(3).errno(Errno::Io));
        let mut rng = SimRng::new(0);
        let hits: Vec<u64> = (1..=10)
            .filter(|&seq| plan.decide(OpClass::Read, "/f", seq, &mut rng).is_some())
            .collect();
        assert_eq!(hits, vec![3]);
    }

    #[test]
    fn class_and_path_select() {
        let plan = FaultPlan::new(0).rule(
            FaultRule::on(OpClass::Write)
                .path("/hot/*")
                .errno(Errno::NoSpc),
        );
        let mut rng = SimRng::new(0);
        assert!(plan.decide(OpClass::Write, "/hot/a", 1, &mut rng).is_some());
        assert!(plan
            .decide(OpClass::Write, "/cold/a", 1, &mut rng)
            .is_none());
        assert!(plan.decide(OpClass::Read, "/hot/a", 1, &mut rng).is_none());
    }

    #[test]
    fn transient_taxonomy() {
        for e in [Errno::Again, Errno::Io, Errno::ConnReset] {
            assert!(is_transient(e), "{e} should be transient");
        }
        for e in [
            Errno::NoSpc,
            Errno::NoEnt,
            Errno::BadF,
            Errno::Access,
            Errno::Inval,
            Errno::NoMem,
            Errno::Pipe,
        ] {
            assert!(!is_transient(e), "{e} should be permanent");
        }
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy::standard();
        let mut rng = SimRng::new(1);
        let b1 = p.backoff(1, &mut rng);
        assert!(b1 <= p.max_backoff);
        // With jitter in [0.5, 1.5), retry 10's base (500us << 9) far
        // exceeds the 50ms cap.
        let b10 = p.backoff(10, &mut rng);
        assert_eq!(b10, p.max_backoff);
        assert!(!RetryPolicy::disabled().enabled());
        assert!(RetryPolicy::with_attempts(3).enabled());
        assert!(!RetryPolicy::with_attempts(1).enabled());
        assert!(!RetryPolicy::with_attempts(0).enabled());
    }
}
