//! Property-based tests of the descriptor database's deferred-error
//! protocol (§IV): a staged failure is passed to the application on the
//! NEXT operation on the descriptor — exactly once — and when several
//! operations fail before the client comes back, the FIRST failure is
//! the one reported.

use iofwd::backend::{Backend, MemSinkBackend};
use iofwd::descdb::{BeginError, DescDb, OpOutcome};
use iofwd_proto::{Errno, Fd, OpId, OpenFlags};
use proptest::prelude::*;

fn open_one(db: &DescDb) -> Fd {
    let be = MemSinkBackend::new();
    let obj = be
        .open("/x", OpenFlags::RDWR | OpenFlags::CREATE, 0)
        .expect("mem sink open");
    db.insert(obj, "/x").expect("fd space")
}

fn errno_for(code: u8) -> Errno {
    match code % 3 {
        0 => Errno::Io,
        1 => Errno::NoSpc,
        _ => Errno::Pipe,
    }
}

/// Begin an op, collecting any deferred report into `reports`. A second
/// begin_op immediately after a deferred report must succeed (the error
/// was cleared by being reported).
fn begin_reporting(db: &DescDb, fd: Fd, reports: &mut Vec<(OpId, Errno)>) -> OpId {
    match db.begin_op(fd) {
        Ok((op, _)) => op,
        Err(BeginError::Deferred { op, errno }) => {
            reports.push((op, errno));
            match db.begin_op(fd) {
                Ok((op, _)) => op,
                Err(e) => panic!("begin_op after a deferred report must succeed, got {e:?}"),
            }
        }
        Err(BeginError::Sync(e)) => panic!("unexpected sync error {e:?}"),
    }
}

proptest! {
    /// Drive a random sequence of staged operations, some failing, and
    /// compare the deferred reports against a reference model of §IV:
    /// keep the first unreported failure, surface it on the next
    /// begin_op, clear it — so every report happens exactly once and in
    /// first-failure order.
    #[test]
    fn deferred_errors_reported_exactly_once(outcomes in proptest::collection::vec(0u8..8, 1..60)) {
        let db = DescDb::new();
        let fd = open_one(&db);

        let mut reports = Vec::new();
        let mut model_pending: Option<(OpId, Errno)> = None;
        let mut model_reports = Vec::new();

        for &code in &outcomes {
            // Model: begin_op surfaces (and clears) the pending error.
            if let Some(r) = model_pending.take() {
                model_reports.push(r);
            }
            let op = begin_reporting(&db, fd, &mut reports);
            // Codes 0..=2 fail with a rotating errno; the rest succeed.
            let outcome = if code <= 2 {
                let errno = errno_for(code);
                if model_pending.is_none() {
                    model_pending = Some((op, errno));
                }
                OpOutcome::Failed(errno)
            } else {
                OpOutcome::Ok
            };
            db.finish_op(fd, op, outcome);
        }

        // Drain: one more begin_op surfaces a trailing failure, and the
        // one after that must be clean — the report is never repeated.
        if let Some(r) = model_pending.take() {
            model_reports.push(r);
        }
        let op = begin_reporting(&db, fd, &mut reports);
        db.finish_op(fd, op, OpOutcome::Ok);
        let (op, _) = db.begin_op(fd).expect("no error may be reported twice");
        db.finish_op(fd, op, OpOutcome::Ok);

        prop_assert_eq!(&reports, &model_reports);
        // Exactly-once, globally: number of reports == number of
        // distinct first-failures, and no duplicates by op id.
        let mut ids: Vec<OpId> = reports.iter().map(|&(op, _)| op).collect();
        ids.dedup();
        prop_assert_eq!(ids.len(), reports.len(), "an op's error was reported twice");
        prop_assert!(!db.status(fd).expect("fd open").has_pending_error);
    }

    /// Failures racing in from worker threads: whatever the completion
    /// order, the client sees exactly one deferred report per
    /// begin/finish round, and it is one of the errors actually staged
    /// in that round.
    #[test]
    fn concurrent_failures_yield_single_report(fail_mask in 1u8..16) {
        let db = std::sync::Arc::new(DescDb::new());
        let fd = open_one(&db);

        // Stage four concurrent ops, a non-empty subset failing.
        let ops: Vec<OpId> = (0..4)
            .map(|_| db.begin_op(fd).expect("clean descriptor").0)
            .collect();
        let failing: Vec<OpId> = ops
            .iter()
            .enumerate()
            .filter(|&(i, _)| fail_mask & (1 << i) != 0)
            .map(|(_, &op)| op)
            .collect();
        std::thread::scope(|s| {
            for &op in &ops {
                let db = db.clone();
                let failed = failing.contains(&op);
                s.spawn(move || {
                    let outcome =
                        if failed { OpOutcome::Failed(Errno::Io) } else { OpOutcome::Ok };
                    db.finish_op(fd, op, outcome);
                });
            }
        });
        db.wait_idle(fd).expect("all finished");

        match db.begin_op(fd) {
            Err(BeginError::Deferred { op, errno }) => {
                prop_assert!(failing.contains(&op), "reported op {op} never failed");
                prop_assert_eq!(errno, Errno::Io);
            }
            _ => prop_assert!(false, "staged failure was never reported"),
        }
        // ... and exactly once.
        let (op, _) = db.begin_op(fd).expect("error already reported");
        db.finish_op(fd, op, OpOutcome::Ok);
        prop_assert!(!db.status(fd).expect("fd open").has_pending_error);
    }
}
