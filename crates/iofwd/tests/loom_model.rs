//! Model-checked concurrency tests for the BML, the work queue, the
//! coalescing lane serializer, and the telemetry flight recorder — the
//! protocols whose blocking/hand-off or lock-free publication logic
//! cannot be trusted to a handful of wall-clock interleavings.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p iofwd --test loom_model --release
//! ```
//!
//! (or `cargo xtask loom`). Under `--cfg loom` the crate's sync shim
//! (`iofwd::sync`) swaps parking_lot for `loomlite`, whose cooperative
//! scheduler exhaustively enumerates every thread interleaving at
//! lock/condvar granularity. An assertion failing in ANY schedule, or a
//! schedule with no runnable thread (lost wakeup / deadlock), fails the
//! test with a panic naming the schedule.
//!
//! Each model stays at 2–3 threads with short critical-section chains;
//! state-space growth is exponential.

#![cfg(loom)]

use std::sync::atomic::{AtomicUsize, Ordering};

use bytes::Bytes;
use iofwd::bml::Bml;
use iofwd::server::{FdSerializer, QueueDiscipline, WorkItem, WorkQueue};
use iofwd_proto::{Fd, OpId, Request};
use loomlite::sync::Arc;
use loomlite::thread;

const BLOCK: usize = 4096; // smallest BML class

/// §IV: "the I/O operation is blocked until ... sufficient memory is
/// available". Three competing acquirers against a two-block budget:
/// in EVERY interleaving the cap holds, nobody is lost (all three
/// acquisitions complete — a lost wakeup would surface as a deadlock),
/// and all memory returns.
#[test]
fn bml_capacity_never_exceeded() {
    loomlite::model(|| {
        let bml = Bml::new(2 * BLOCK as u64);
        let mut handles = Vec::new();
        for _ in 0..2 {
            let bml = bml.clone();
            handles.push(thread::spawn(move || {
                let buf = bml.acquire(BLOCK).expect("BML never closes in this model");
                assert!(bml.outstanding() <= 2 * BLOCK as u64, "capacity exceeded");
                drop(buf);
            }));
        }
        let buf = bml.acquire(BLOCK).expect("BML never closes in this model");
        assert!(bml.outstanding() <= 2 * BLOCK as u64, "capacity exceeded");
        drop(buf);
        for h in handles {
            h.join().expect("acquirer panicked");
        }
        assert_eq!(bml.outstanding(), 0, "memory leaked");
        let stats = bml.stats();
        assert_eq!(stats.acquires, 3);
        assert!(stats.high_water <= 2 * BLOCK as u64);
    });
}

/// FIFO hand-off, no barging: when a release finds a blocked waiter,
/// the freed capacity is reserved for that waiter *inside the release*
/// — a `try_acquire` racing in afterwards may only succeed once the
/// waiter has been fully served (acquired AND released). An
/// implementation that merely notifies without reserving lets
/// `try_acquire` win while the waiter is still blocked, which this
/// model catches. The cross-schedule counters prove both the
/// reservation path and the waiter-finished-first path are exercised.
#[test]
fn bml_release_hands_off_to_queued_waiter_fifo() {
    static TRY_LOST: AtomicUsize = AtomicUsize::new(0);
    static TRY_WON_AFTER_DONE: AtomicUsize = AtomicUsize::new(0);
    TRY_LOST.store(0, Ordering::SeqCst);
    TRY_WON_AFTER_DONE.store(0, Ordering::SeqCst);
    loomlite::model(|| {
        let bml = Bml::new(BLOCK as u64); // room for exactly one block
        let hold = bml.acquire(BLOCK).expect("open");
        // Set to true by the waiter BEFORE it releases its buffer, so
        // `done == false` while the waiter is queued, granted, or still
        // holding memory — in all those states try_acquire must fail.
        let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let waiter = {
            let bml = bml.clone();
            let done = done.clone();
            thread::spawn(move || {
                let buf = bml.acquire(BLOCK).expect("open");
                done.store(true, Ordering::SeqCst);
                drop(buf);
            })
        };
        // Whether the waiter has queued yet is schedule-dependent; once
        // it HAS queued it can only leave by being granted, so observing
        // `queued` here is stable across the release below.
        let queued = bml.waiter_count() == 1;
        drop(hold); // release: must reserve the block for the waiter
        if queued {
            match bml.try_acquire(BLOCK) {
                Some(_) => {
                    assert!(
                        done.load(Ordering::SeqCst),
                        "try_acquire barged past a still-waiting queued acquirer"
                    );
                    TRY_WON_AFTER_DONE.fetch_add(1, Ordering::SeqCst);
                }
                None => {
                    TRY_LOST.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        waiter.join().expect("waiter panicked");
        assert_eq!(bml.outstanding(), 0);
    });
    assert!(
        TRY_LOST.load(Ordering::SeqCst) > 0,
        "no schedule exercised the reservation (try_acquire-fails) branch"
    );
    assert!(
        TRY_WON_AFTER_DONE.load(Ordering::SeqCst) > 0,
        "no schedule exercised the waiter-finished-first branch"
    );
}

/// Daemon shutdown: close() must wake every blocked acquisition (which
/// then fails with NoMem) and refuse new ones — a waiter sleeping
/// through close would deadlock the model.
#[test]
fn bml_close_wakes_all_blocked_waiters() {
    loomlite::model(|| {
        let bml = Bml::new(BLOCK as u64);
        let hold = bml.acquire(BLOCK).expect("open");
        let mut handles = Vec::new();
        for _ in 0..2 {
            let bml = bml.clone();
            handles.push(thread::spawn(move || bml.acquire(BLOCK).is_err()));
        }
        bml.close();
        for h in handles {
            assert!(
                h.join().expect("waiter panicked"),
                "acquire returned a buffer after close"
            );
        }
        drop(hold);
        assert_eq!(bml.outstanding(), 0);
        assert!(bml.try_acquire(BLOCK).is_none(), "try_acquire after close");
    });
}

/// A span whose every field carries the same tag, so any torn slot —
/// words from two different writers — is detectable field-by-field.
fn tag_span(tag: u64) -> iofwd::telemetry::OpSpan {
    let mut s = iofwd::telemetry::OpSpan::begin(iofwd::telemetry::OpKind::Write, tag, tag, tag);
    s.bytes = tag;
    s.enqueue_ns = tag;
    s.dispatch_ns = tag;
    s.backend_start_ns = tag;
    s.backend_done_ns = tag;
    s.reply_ns = tag;
    s
}

/// Assert every record visible in a snapshot is whole (un-torn).
fn assert_snapshot_whole(ring: &iofwd::telemetry::FlightRecorder) -> usize {
    let snap = ring.snapshot();
    for rec in &snap {
        let tag = rec.client;
        assert!(
            rec.seq == tag
                && rec.bytes == tag
                && rec.arrival_ns == tag
                && rec.enqueue_ns == tag
                && rec.dispatch_ns == tag
                && rec.backend_start_ns == tag
                && rec.backend_done_ns == tag
                && rec.reply_ns == tag,
            "torn flight-recorder slot: {rec:?}"
        );
    }
    snap.len()
}

/// The telemetry flight recorder's seqlock slots: two writers race for a
/// one-slot ring while a reader snapshots mid-protocol. In every
/// explored interleaving the snapshot observes only fully-written
/// records (each record's ten words all carry one writer's tag), no
/// writer blocks, and every submission is either published or counted
/// as dropped. `chaos()` yield points inside `record`/`read_slot` (see
/// iofwd-telemetry's ring.rs) give the model scheduler its preemption
/// hooks mid-write and mid-read.
#[test]
fn flight_recorder_snapshot_never_tears() {
    loomlite::model(|| {
        let ring = Arc::new(iofwd::telemetry::FlightRecorder::new(1));
        let writers: Vec<_> = [1_111u64, 2_222]
            .into_iter()
            .map(|tag| {
                let ring = ring.clone();
                thread::spawn(move || ring.record(&tag_span(tag)))
            })
            .collect();
        // Concurrent reader: runs interleaved with the writers.
        assert_snapshot_whole(&ring);
        for w in writers {
            w.join().expect("writer panicked");
        }
        // Quiescent: submissions are conserved across published + dropped.
        let published = assert_snapshot_whole(&ring);
        assert_eq!(ring.recorded(), 2);
        assert!(
            published as u64 + ring.dropped() >= 1,
            "both submissions vanished without a drop count"
        );
    });
}

fn tagged(tag: u32) -> WorkItem {
    // The reply receiver is dropped immediately: nothing executes these
    // items, so nothing ever sends on the channel.
    let (reply, _) = crossbeam::channel::unbounded();
    WorkItem::Sync {
        req: Request::Fsync { fd: Fd(tag) },
        data: Bytes::new(),
        reply: iofwd::server::ReplyTo::Handler(reply),
        span: iofwd::telemetry::OpSpan::default(),
    }
}

fn tag_of(item: &WorkItem) -> u32 {
    match item {
        WorkItem::Sync {
            req: Request::Fsync { fd },
            ..
        } => fd.0,
        _ => u32::MAX,
    }
}

/// The paper's shared FIFO: two producers racing to enqueue; whatever
/// the interleaving, each producer's items drain in its program order
/// and nothing is lost or duplicated.
#[test]
fn queue_preserves_per_producer_fifo_order() {
    loomlite::model(|| {
        let q = Arc::new(WorkQueue::new(QueueDiscipline::SharedFifo, 1));
        let producers: Vec<_> = [(1u32, 2u32), (3, 4)]
            .into_iter()
            .map(|(a, b)| {
                let q = q.clone();
                thread::spawn(move || {
                    q.push(tagged(a)).expect("queue is open");
                    q.push(tagged(b)).expect("queue is open");
                })
            })
            .collect();
        for p in producers {
            p.join().expect("producer panicked");
        }
        let tags: Vec<u32> = q.pop_batch(0, 8).iter().map(tag_of).collect();
        assert_eq!(tags.len(), 4, "items lost or duplicated: {tags:?}");
        let pos = |t: u32| tags.iter().position(|&x| x == t).expect("missing item");
        assert!(pos(1) < pos(2), "producer A reordered: {tags:?}");
        assert!(pos(3) < pos(4), "producer B reordered: {tags:?}");
        assert_eq!(q.depth(), 0);
    });
}

/// Worker-pool shutdown: with workers blocked in `pop_batch`, a racing
/// push + close must deliver the item to exactly one worker and release
/// the other with an empty batch — never strand either (the classic
/// notify_one lost-wakeup shape).
#[test]
fn queue_close_releases_blocked_workers_exactly_once() {
    loomlite::model(|| {
        let q = Arc::new(WorkQueue::new(QueueDiscipline::SharedFifo, 2));
        let workers: Vec<_> = (0..2)
            .map(|w| {
                let q = q.clone();
                thread::spawn(move || {
                    let mut got = 0usize;
                    loop {
                        let batch = q.pop_batch(w, 4);
                        if batch.is_empty() {
                            return got; // closed and drained
                        }
                        got += batch.len();
                    }
                })
            })
            .collect();
        q.push(tagged(7)).expect("queue is open");
        q.close();
        let delivered: usize = workers
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .sum();
        assert_eq!(delivered, 1, "item lost or double-delivered");
        assert_eq!(q.depth(), 0);
    });
}

/// A push racing close: whichever order the model explores, the push
/// either lands (and the item drains) or comes back as `QueueClosed`
/// with the item intact — it must never panic and never leak the item.
/// Before this contract, `push` asserted `!closed`, so a handler racing
/// daemon shutdown took the whole process down. The cross-schedule
/// counters prove both outcomes are actually explored.
#[test]
fn queue_push_racing_close_returns_queue_closed() {
    static ACCEPTED: AtomicUsize = AtomicUsize::new(0);
    static REJECTED: AtomicUsize = AtomicUsize::new(0);
    ACCEPTED.store(0, Ordering::SeqCst);
    REJECTED.store(0, Ordering::SeqCst);
    loomlite::model(|| {
        let q = Arc::new(WorkQueue::new(QueueDiscipline::SharedFifo, 1));
        let pusher = {
            let q = q.clone();
            thread::spawn(move || match q.push(tagged(9)) {
                Ok(()) => true,
                Err(closed) => {
                    assert_eq!(tag_of(&closed.0), 9, "rejected item mangled");
                    false
                }
            })
        };
        q.close();
        let accepted = pusher.join().expect("pusher panicked");
        let drained = q.pop_batch(0, 4).len();
        if accepted {
            ACCEPTED.fetch_add(1, Ordering::SeqCst);
            assert_eq!(drained, 1, "accepted item lost");
        } else {
            REJECTED.fetch_add(1, Ordering::SeqCst);
            assert_eq!(drained, 0, "rejected item still reached the queue");
        }
    });
    assert!(
        ACCEPTED.load(Ordering::SeqCst) > 0,
        "no schedule explored push-before-close"
    );
    assert!(
        REJECTED.load(Ordering::SeqCst) > 0,
        "no schedule explored push-after-close"
    );
}

fn staged_item(bml: &Bml, tag: u64, offset: Option<u64>, len: usize) -> WorkItem {
    let mut buf = bml.acquire(len).expect("BML open and under budget");
    buf.fill_from(&vec![tag as u8; len]);
    WorkItem::StagedWrite {
        fd: Fd(1),
        op: OpId(tag),
        offset,
        buf,
        span: iofwd::telemetry::OpSpan::default(),
    }
}

fn staged_tag(item: &WorkItem) -> u64 {
    match item {
        WorkItem::StagedWrite { op, .. } => op.0,
        _ => u64::MAX,
    }
}

/// The PR 5 coalescing path racing shutdown: a worker holds fd 1's lane
/// (op 0 in flight), harvests the contiguous parked successor (op 1)
/// into its batch, and lets its drop-safe `CompletionGuard` re-enqueue
/// the non-contiguous remainder (op 2) — while another thread closes
/// the work queue. Depending on the schedule the re-enqueue either
/// lands on the queue (drained at shutdown) or loses to close and is
/// parked as an orphan (collected by `drain_all`). In EVERY
/// interleaving each constituent op is *either* executed *or* deferred
/// to the shutdown drain — never both, never neither — and no BML
/// buffer is stranded. The cross-schedule counters prove both race
/// outcomes are actually explored.
#[test]
fn coalesce_harvest_racing_close_never_splits_or_strands_ops() {
    static ENQUEUED: AtomicUsize = AtomicUsize::new(0);
    static ORPHANED: AtomicUsize = AtomicUsize::new(0);
    ENQUEUED.store(0, Ordering::SeqCst);
    ORPHANED.store(0, Ordering::SeqCst);
    loomlite::model(|| {
        let bml = Bml::new(1 << 20);
        let queue = Arc::new(WorkQueue::new(QueueDiscipline::SharedFifo, 1));
        let serializer = Arc::new(FdSerializer::new());
        // Op 0 in flight on the lane; op 1 parked contiguous with it;
        // op 2 parked behind a gap (stays after the harvest, so the
        // completion guard has a successor to re-enqueue).
        let inflight = serializer
            .admit(Fd(1), staged_item(&bml, 0, Some(0), 100))
            .expect("fresh lane admits the first item");
        assert!(serializer
            .admit(Fd(1), staged_item(&bml, 1, Some(100), 50))
            .is_none());
        assert!(serializer
            .admit(Fd(1), staged_item(&bml, 2, Some(999), 50))
            .is_none());

        let worker = {
            let serializer = serializer.clone();
            let queue = queue.clone();
            thread::spawn(move || {
                let guard = serializer.completion_guard(Fd(1), queue);
                let batch = serializer.harvest_contiguous(Fd(1), Some(100), 16, 1 << 20);
                let mut executed: Vec<u64> = vec![staged_tag(&inflight)];
                executed.extend(batch.iter().map(staged_tag));
                // "Execute": buffers return to the BML as items drop.
                drop(inflight);
                drop(batch);
                drop(guard); // completes the lane, re-enqueues op 2
                executed
            })
        };
        queue.close();
        let executed = worker.join().expect("worker panicked");

        // Shutdown drain: whatever landed on the queue before close
        // lost the race into it, plus every parked/orphaned item.
        let mut deferred: Vec<u64> = queue.pop_batch(0, 16).iter().map(staged_tag).collect();
        if !deferred.is_empty() {
            ENQUEUED.fetch_add(1, Ordering::SeqCst);
        }
        let drained = serializer.drain_all();
        if !drained.is_empty() {
            ORPHANED.fetch_add(1, Ordering::SeqCst);
        }
        deferred.extend(drained.iter().map(staged_tag));
        drop(drained);

        assert_eq!(
            executed,
            vec![0, 1],
            "harvest must take exactly the contiguous prefix"
        );
        assert_eq!(
            deferred,
            vec![2],
            "op 2 deferred exactly once: {deferred:?}"
        );
        for op in &executed {
            assert!(!deferred.contains(op), "op {op} both executed and deferred");
        }
        assert_eq!(serializer.parked(), 0);
        assert_eq!(serializer.orphaned(), 0);
        assert_eq!(bml.outstanding(), 0, "BML buffer stranded at shutdown");
    });
    assert!(
        ENQUEUED.load(Ordering::SeqCst) > 0,
        "no schedule explored re-enqueue-before-close"
    );
    assert!(
        ORPHANED.load(Ordering::SeqCst) > 0,
        "no schedule explored the orphan (close-won) path"
    );
}

/// The PR 10 sharded queue: two same-client items affinity-placed on
/// one shard, two workers racing pop-vs-steal-vs-close. In EVERY
/// interleaving each item is delivered to exactly one worker — a steal
/// that left the item on the victim shard would double-deliver, a
/// steal racing close that dropped it would lose it, and a worker
/// sleeping through the final wakeup would deadlock the model. The
/// cross-schedule counter proves the stealing path itself is explored,
/// not just same-shard pops.
#[test]
fn work_stealing_delivers_exactly_once() {
    static STOLEN: AtomicUsize = AtomicUsize::new(0);
    STOLEN.store(0, Ordering::SeqCst);
    loomlite::model(|| {
        let q = Arc::new(WorkQueue::new(QueueDiscipline::PerWorker, 2));
        // Affinity placement: both default-span items are client 0,
        // so both land on one home shard; the other worker can only
        // ever reach them by stealing.
        q.push(tagged(1)).expect("queue is open");
        q.push(tagged(2)).expect("queue is open");
        let workers: Vec<_> = (0..2)
            .map(|w| {
                let q = q.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        let batch = q.pop_batch(w, 4);
                        if batch.is_empty() {
                            return got; // closed and drained
                        }
                        got.extend(batch.iter().map(tag_of));
                    }
                })
            })
            .collect();
        q.close();
        let mut all: Vec<u32> = Vec::new();
        for h in workers {
            all.extend(h.join().expect("worker panicked"));
        }
        all.sort_unstable();
        assert_eq!(all, vec![1, 2], "item lost or double-delivered: {all:?}");
        assert_eq!(q.depth(), 0);
        if q.total_steals() > 0 {
            STOLEN.fetch_add(1, Ordering::SeqCst);
        }
    });
    assert!(
        STOLEN.load(Ordering::SeqCst) > 0,
        "no schedule exercised the cross-shard steal path"
    );
}

/// The PR 10 slab: one recycled block sits on the class free list while
/// two acquirers race for it. Exactly one may pop it; the other must
/// get fresh memory. A double handout aliases two live buffers onto one
/// block, which the fill-then-verify pattern catches (the `outstanding`
/// call between them is a lock-granularity yield point, so the model
/// interleaves the two owners mid-hold).
#[test]
fn slab_recycle_vs_acquire_never_hands_block_twice() {
    loomlite::model(|| {
        let bml = Bml::new(2 * BLOCK as u64);
        // Prime the free list: acquire + drop recycles one block.
        drop(bml.acquire(BLOCK).expect("BML never closes in this model"));
        assert_eq!(bml.stats().recycled_bytes, BLOCK as u64);
        let worker = {
            let bml = bml.clone();
            thread::spawn(move || {
                let mut buf = bml.acquire(BLOCK).expect("open");
                buf.fill_from(&[0xAA; 64]);
                let _ = bml.outstanding(); // yield point while holding
                assert!(
                    buf.as_slice()[..64].iter().all(|&b| b == 0xAA),
                    "another owner scribbled on a live slab block"
                );
            })
        };
        let mut buf = bml.acquire(BLOCK).expect("open");
        buf.fill_from(&[0xBB; 64]);
        let _ = bml.outstanding(); // yield point while holding
        assert!(
            buf.as_slice()[..64].iter().all(|&b| b == 0xBB),
            "another owner scribbled on a live slab block"
        );
        drop(buf);
        worker.join().expect("acquirer panicked");
        assert_eq!(bml.outstanding(), 0, "memory leaked");
        // Concurrent acquirers: one hit, one fresh miss. Serialized
        // schedules legally re-pop the block the first owner recycled
        // (two hits) — but the free list must always serve *some* of
        // the three acquisitions.
        let hits = bml.stats().freelist_hits;
        assert!(
            (1..=2).contains(&hits),
            "free list served {hits} of 2 racing acquires (expected 1 or 2)"
        );
    });
}
