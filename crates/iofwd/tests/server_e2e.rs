//! End-to-end tests of the four forwarding modes over the in-memory and
//! TCP transports: correctness of data movement, staging semantics,
//! deferred errors, barriers, and concurrency.

use std::sync::Arc;
use std::time::{Duration, Instant};

use iofwd::backend::{
    Backend, FaultInjectionBackend, MemSinkBackend, NullBackend, ThrottledBackend,
};
use iofwd::client::{Client, ClientError, WriteOutcome};
use iofwd::server::{ForwardingMode, IonServer, QueueDiscipline, ServerConfig};
use iofwd::transport::mem::MemHub;
use iofwd::transport::tcp::{TcpAcceptor, TcpConn};
use iofwd_proto::{Errno, OpenFlags, Whence};

const ALL_MODES: [ForwardingMode; 4] = [
    ForwardingMode::Ciod,
    ForwardingMode::Zoid,
    ForwardingMode::Sched { workers: 4 },
    ForwardingMode::AsyncStaged {
        workers: 4,
        bml_capacity: 8 << 20,
    },
];

fn start(mode: ForwardingMode, backend: Arc<dyn Backend>) -> (IonServer, MemHub) {
    let hub = MemHub::new();
    let server = IonServer::spawn(Box::new(hub.listener()), backend, ServerConfig::new(mode));
    (server, hub)
}

#[test]
fn write_read_roundtrip_all_modes() {
    for mode in ALL_MODES {
        let backend = Arc::new(MemSinkBackend::new());
        let (server, hub) = start(mode, backend.clone());
        let mut c = Client::connect(Box::new(hub.connect()));

        let fd = c
            .open("/data", OpenFlags::RDWR | OpenFlags::CREATE, 0o644)
            .unwrap();
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(
            c.write(fd, &payload).unwrap(),
            payload.len() as u64,
            "{}",
            mode.name()
        );
        c.fsync(fd).unwrap();
        let got = c.pread(fd, 0, payload.len() as u64).unwrap();
        assert_eq!(got, payload, "mode {}", mode.name());
        c.close(fd).unwrap();
        c.shutdown().unwrap();
        server.shutdown();
        assert_eq!(
            backend.contents("/data").unwrap(),
            payload,
            "mode {}",
            mode.name()
        );
    }
}

#[test]
fn sequential_writes_preserve_order_all_modes() {
    for mode in ALL_MODES {
        let backend = Arc::new(MemSinkBackend::new());
        let (server, hub) = start(mode, backend.clone());
        let mut c = Client::connect(Box::new(hub.connect()));
        let fd = c
            .open("/seq", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
            .unwrap();
        let mut expect = Vec::new();
        for i in 0..64u8 {
            let chunk = vec![i; 1000];
            c.write(fd, &chunk).unwrap();
            expect.extend_from_slice(&chunk);
        }
        c.close(fd).unwrap();
        c.shutdown().unwrap();
        server.shutdown();
        assert_eq!(
            backend.contents("/seq").unwrap(),
            expect,
            "mode {}",
            mode.name()
        );
    }
}

#[test]
fn staged_mode_returns_staged_writes() {
    let backend = Arc::new(MemSinkBackend::new());
    let (server, hub) = start(
        ForwardingMode::AsyncStaged {
            workers: 2,
            bml_capacity: 4 << 20,
        },
        backend.clone(),
    );
    let mut c = Client::connect(Box::new(hub.connect()));
    let fd = c
        .open("/s", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
        .unwrap();
    match c.write_detailed(fd, &[1u8; 4096]).unwrap() {
        WriteOutcome::Staged(op) => assert_eq!(op, iofwd_proto::OpId(1)),
        other => panic!("expected staged outcome, got {other:?}"),
    }
    // fsync barriers: afterwards, the data must be durably in the backend.
    c.fsync(fd).unwrap();
    assert_eq!(backend.contents("/s").unwrap().len(), 4096);
    assert_eq!(c.stats().staged_writes, 1);
    c.close(fd).unwrap();
    c.shutdown().unwrap();
    let stats = server.stats();
    assert_eq!(stats.staged_ops, 1);
    server.shutdown();
}

#[test]
fn non_staged_modes_never_stage() {
    for mode in [
        ForwardingMode::Ciod,
        ForwardingMode::Zoid,
        ForwardingMode::Sched { workers: 2 },
    ] {
        let backend = Arc::new(MemSinkBackend::new());
        let (server, hub) = start(mode, backend);
        let mut c = Client::connect(Box::new(hub.connect()));
        let fd = c
            .open("/n", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
            .unwrap();
        match c.write_detailed(fd, b"x").unwrap() {
            WriteOutcome::Completed(1) => {}
            other => panic!("mode {}: unexpected {other:?}", mode.name()),
        }
        c.shutdown().unwrap();
        server.shutdown();
    }
}

#[test]
fn deferred_error_reported_on_next_operation() {
    let inner = Arc::new(MemSinkBackend::new());
    // First data op succeeds, everything after fails with ENOSPC.
    let backend = Arc::new(FaultInjectionBackend::new(inner, 1, Errno::NoSpc));
    let (server, hub) = start(
        ForwardingMode::AsyncStaged {
            workers: 2,
            bml_capacity: 4 << 20,
        },
        backend,
    );
    let mut c = Client::connect(Box::new(hub.connect()));
    let fd = c
        .open("/d", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
        .unwrap();
    // Both writes are accepted (staged) — the failure is asynchronous.
    assert!(matches!(
        c.write_detailed(fd, &[0u8; 4096]).unwrap(),
        WriteOutcome::Staged(_)
    ));
    assert!(matches!(
        c.write_detailed(fd, &[0u8; 4096]).unwrap(),
        WriteOutcome::Staged(_)
    ));
    // The barrier surfaces the second write's failure.
    match c.fsync(fd) {
        Err(ClientError::Deferred { op, errno }) => {
            assert_eq!(op, iofwd_proto::OpId(2));
            assert_eq!(errno, Errno::NoSpc);
        }
        other => panic!("expected deferred ENOSPC, got {other:?}"),
    }
    // The error was consumed; close now succeeds.
    c.close(fd).unwrap();
    c.shutdown().unwrap();
    server.shutdown();
}

#[test]
fn deferred_error_reported_on_close() {
    let inner = Arc::new(MemSinkBackend::new());
    let backend = Arc::new(FaultInjectionBackend::new(inner, 0, Errno::Io));
    let (server, hub) = start(
        ForwardingMode::AsyncStaged {
            workers: 1,
            bml_capacity: 1 << 20,
        },
        backend,
    );
    let mut c = Client::connect(Box::new(hub.connect()));
    let fd = c
        .open("/e", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
        .unwrap();
    assert!(matches!(
        c.write_detailed(fd, &[9u8; 100]).unwrap(),
        WriteOutcome::Staged(_)
    ));
    match c.close(fd) {
        Err(ClientError::Deferred { errno, .. }) => assert_eq!(errno, Errno::Io),
        other => panic!("expected deferred EIO on close, got {other:?}"),
    }
    c.shutdown().unwrap();
    server.shutdown();
}

#[test]
fn sync_modes_report_errors_immediately() {
    let inner = Arc::new(MemSinkBackend::new());
    let backend = Arc::new(FaultInjectionBackend::new(inner, 0, Errno::NoSpc));
    for mode in [
        ForwardingMode::Ciod,
        ForwardingMode::Zoid,
        ForwardingMode::Sched { workers: 2 },
    ] {
        let (server, hub) = start(mode, backend.clone());
        let mut c = Client::connect(Box::new(hub.connect()));
        let fd = c
            .open("/x", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
            .unwrap();
        match c.write(fd, b"data") {
            Err(ClientError::Remote(Errno::NoSpc)) => {}
            other => panic!(
                "mode {}: expected immediate ENOSPC, got {other:?}",
                mode.name()
            ),
        }
        c.shutdown().unwrap();
        server.shutdown();
    }
}

#[test]
fn bml_capacity_blocks_but_completes() {
    // Tiny BML (64 KiB) with a slow backend: staging must block when the
    // cap is hit, yet all data lands correctly.
    let sink = Arc::new(MemSinkBackend::new());
    let slow = Arc::new(ThrottledBackend::new(
        sink.clone(),
        8.0 * 1024.0 * 1024.0, // 8 MiB/s
        Duration::ZERO,
    ));
    let (server, hub) = start(
        ForwardingMode::AsyncStaged {
            workers: 2,
            bml_capacity: 64 * 1024,
        },
        slow,
    );
    let mut c = Client::connect(Box::new(hub.connect()));
    let fd = c
        .open("/b", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
        .unwrap();
    let mut expect = Vec::new();
    for i in 0..32u8 {
        let chunk = vec![i; 16 * 1024];
        c.write(fd, &chunk).unwrap();
        expect.extend_from_slice(&chunk);
    }
    c.close(fd).unwrap();
    c.shutdown().unwrap();
    let bml = server.bml_stats().unwrap();
    assert!(
        bml.blocked_acquires > 0,
        "64 KiB BML must block under 512 KiB of writes"
    );
    assert!(bml.high_water <= 64 * 1024);
    server.shutdown();
    assert_eq!(sink.contents("/b").unwrap(), expect);
}

#[test]
fn staging_overlaps_slow_backend() {
    // With a throttled backend, staged writes should return much faster
    // than the backend can absorb them — the paper's overlap win.
    let sink = Arc::new(MemSinkBackend::new());
    let slow = Arc::new(ThrottledBackend::new(
        sink.clone(),
        4.0 * 1024.0 * 1024.0,
        Duration::ZERO,
    ));
    let (server, hub) = start(
        ForwardingMode::AsyncStaged {
            workers: 2,
            bml_capacity: 16 << 20,
        },
        slow,
    );
    let mut c = Client::connect(Box::new(hub.connect()));
    let fd = c
        .open("/ov", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
        .unwrap();
    let chunk = vec![7u8; 1 << 20];
    let t0 = Instant::now();
    for _ in 0..4 {
        c.write(fd, &chunk).unwrap(); // 4 MiB total, backend needs ~1 s
    }
    let submit_time = t0.elapsed();
    assert!(
        submit_time < Duration::from_millis(500),
        "staged submission should not wait for the slow backend ({submit_time:?})"
    );
    c.close(fd).unwrap(); // barrier: waits for drain
    let total = t0.elapsed();
    assert!(
        total >= Duration::from_millis(800),
        "close must barrier ({total:?})"
    );
    c.shutdown().unwrap();
    server.shutdown();
    assert_eq!(sink.contents("/ov").unwrap().len(), 4 << 20);
}

#[test]
fn many_concurrent_clients_all_modes() {
    for mode in ALL_MODES {
        let backend = Arc::new(MemSinkBackend::new());
        let (server, hub) = start(mode, backend.clone());
        let mut joins = Vec::new();
        for k in 0..16u32 {
            let conn = hub.connect();
            joins.push(std::thread::spawn(move || {
                let mut c = Client::with_id(Box::new(conn), k);
                let path = format!("/client-{k}");
                let fd = c
                    .open(&path, OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
                    .unwrap();
                for i in 0..20u32 {
                    let data = vec![(k as u8).wrapping_add(i as u8); 4096];
                    c.write(fd, &data).unwrap();
                }
                c.close(fd).unwrap();
                c.shutdown().unwrap();
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        server.shutdown();
        for k in 0..16u32 {
            let got = backend.contents(&format!("/client-{k}")).unwrap();
            assert_eq!(got.len(), 20 * 4096, "mode {} client {k}", mode.name());
        }
    }
}

#[test]
fn socket_sink_counts_bytes() {
    let backend = Arc::new(MemSinkBackend::new());
    let (server, hub) = start(ForwardingMode::Sched { workers: 2 }, backend.clone());
    let mut c = Client::connect(Box::new(hub.connect()));
    let fd = c.connect_socket("da-node-0", 9000).unwrap();
    for _ in 0..8 {
        c.write(fd, &[0u8; 128 * 1024]).unwrap();
    }
    c.close(fd).unwrap();
    c.shutdown().unwrap();
    server.shutdown();
    assert_eq!(backend.socket_bytes(), 8 * 128 * 1024);
}

#[test]
fn null_backend_microbenchmark_path() {
    // The §III-A benchmark shape: every CN writes to /dev/null on the ION.
    let backend = Arc::new(NullBackend::new());
    let (server, hub) = start(ForwardingMode::Zoid, backend.clone());
    let mut c = Client::connect(Box::new(hub.connect()));
    let fd = c.open("/dev/null", OpenFlags::WRONLY, 0).unwrap();
    for _ in 0..10 {
        c.write(fd, &[0u8; 65536]).unwrap();
    }
    c.close(fd).unwrap();
    c.shutdown().unwrap();
    server.shutdown();
    assert_eq!(backend.bytes_written(), 10 * 65536);
}

#[test]
fn metadata_ops_work_in_staged_mode() {
    let backend = Arc::new(MemSinkBackend::new());
    let (server, hub) = start(
        ForwardingMode::AsyncStaged {
            workers: 2,
            bml_capacity: 1 << 20,
        },
        backend,
    );
    let mut c = Client::connect(Box::new(hub.connect()));
    let fd = c
        .open("/meta", OpenFlags::RDWR | OpenFlags::CREATE, 0o644)
        .unwrap();
    c.write(fd, b"0123456789").unwrap();
    // lseek and reads barrier behind the staged write.
    assert_eq!(c.lseek(fd, 2, Whence::Set).unwrap(), 2);
    assert_eq!(c.read(fd, 3).unwrap(), b"234");
    let st = c.fstat(fd).unwrap();
    assert_eq!(st.size, 10);
    assert_eq!(c.stat("/meta").unwrap().size, 10);
    c.unlink("/meta").unwrap();
    assert!(matches!(
        c.stat("/meta"),
        Err(ClientError::Remote(Errno::NoEnt))
    ));
    c.close(fd).unwrap();
    c.shutdown().unwrap();
    server.shutdown();
}

#[test]
fn per_worker_queue_discipline_works() {
    let backend = Arc::new(MemSinkBackend::new());
    let hub = MemHub::new();
    let server = IonServer::spawn(
        Box::new(hub.listener()),
        backend.clone(),
        ServerConfig::new(ForwardingMode::Sched { workers: 3 })
            .with_queue_discipline(QueueDiscipline::PerWorker),
    );
    let mut c = Client::connect(Box::new(hub.connect()));
    let fd = c
        .open("/pw", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
        .unwrap();
    for i in 0..30u8 {
        c.write(fd, &[i; 512]).unwrap();
    }
    c.close(fd).unwrap();
    c.shutdown().unwrap();
    server.shutdown();
    assert_eq!(backend.contents("/pw").unwrap().len(), 30 * 512);
}

#[test]
fn tcp_transport_end_to_end() {
    let backend = Arc::new(MemSinkBackend::new());
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr().unwrap();
    let server = IonServer::spawn(
        Box::new(acceptor),
        backend.clone(),
        ServerConfig::new(ForwardingMode::AsyncStaged {
            workers: 2,
            bml_capacity: 8 << 20,
        }),
    );
    let mut c = Client::connect(Box::new(TcpConn::connect(addr).unwrap()));
    let fd = c
        .open("/tcp", OpenFlags::RDWR | OpenFlags::CREATE, 0o644)
        .unwrap();
    let payload = vec![42u8; 2 << 20];
    c.write(fd, &payload).unwrap();
    c.fsync(fd).unwrap();
    assert_eq!(c.pread(fd, 0, 16).unwrap(), vec![42u8; 16]);
    c.close(fd).unwrap();
    c.shutdown().unwrap();
    server.shutdown();
    assert_eq!(backend.contents("/tcp").unwrap(), payload);
}

#[test]
fn server_stats_accumulate() {
    let backend = Arc::new(MemSinkBackend::new());
    let (server, hub) = start(ForwardingMode::Zoid, backend);
    let mut c = Client::connect(Box::new(hub.connect()));
    let fd = c
        .open("/st", OpenFlags::RDWR | OpenFlags::CREATE, 0o644)
        .unwrap();
    c.write(fd, &[1u8; 1000]).unwrap();
    c.pread(fd, 0, 1000).unwrap();
    c.close(fd).unwrap();
    c.shutdown().unwrap();
    let s = server.stats();
    assert!(s.requests >= 4);
    assert_eq!(s.bytes_in, 1000);
    assert_eq!(s.bytes_out, 1000);
    server.shutdown();
}

#[test]
fn open_of_missing_file_fails_cleanly() {
    for mode in ALL_MODES {
        let backend = Arc::new(MemSinkBackend::new());
        let (server, hub) = start(mode, backend);
        let mut c = Client::connect(Box::new(hub.connect()));
        match c.open("/missing", OpenFlags::RDONLY, 0) {
            Err(ClientError::Remote(Errno::NoEnt)) => {}
            other => panic!("mode {}: {other:?}", mode.name()),
        }
        c.shutdown().unwrap();
        server.shutdown();
    }
}

#[test]
fn insitu_statistics_filter_observes_stream() {
    use iofwd::filter::{FilterChain, StatisticsFilter};
    let stats = StatisticsFilter::new();
    let backend = Arc::new(MemSinkBackend::new());
    let hub = MemHub::new();
    let server = IonServer::spawn(
        Box::new(hub.listener()),
        backend.clone(),
        ServerConfig::new(ForwardingMode::AsyncStaged {
            workers: 2,
            bml_capacity: 4 << 20,
        })
        .with_filter(FilterChain::new().with(stats.clone())),
    );
    let mut c = Client::connect(Box::new(hub.connect()));
    let fd = c
        .open("/field", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
        .unwrap();
    let samples: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5).collect();
    let mut raw = Vec::new();
    for v in &samples {
        raw.extend_from_slice(&v.to_le_bytes());
    }
    c.write(fd, &raw).unwrap();
    c.fsync(fd).unwrap();
    c.close(fd).unwrap();
    c.shutdown().unwrap();
    server.shutdown();
    // Analytics ran on the ION, data landed untouched.
    let snap = stats.snapshot();
    assert_eq!(snap.samples, 1000);
    assert_eq!(snap.min, 0.0);
    assert_eq!(snap.max, 999.0 * 0.5);
    assert_eq!(backend.contents("/field").unwrap(), raw);
}

#[test]
fn insitu_subsample_filter_reduces_stored_bytes() {
    use iofwd::filter::{FilterChain, SubsampleFilter};
    let sub = SubsampleFilter::new(4);
    let backend = Arc::new(MemSinkBackend::new());
    let hub = MemHub::new();
    let server = IonServer::spawn(
        Box::new(hub.listener()),
        backend.clone(),
        ServerConfig::new(ForwardingMode::AsyncStaged {
            workers: 2,
            bml_capacity: 4 << 20,
        })
        .with_filter(FilterChain::new().with(sub.clone())),
    );
    let mut c = Client::connect(Box::new(hub.connect()));
    let fd = c
        .open("/reduced", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
        .unwrap();
    let raw = vec![1u8; 8 * 1024]; // 1024 f64 samples
                                   // The application sees its full write acknowledged...
    assert_eq!(c.write(fd, &raw).unwrap(), raw.len() as u64);
    c.close(fd).unwrap();
    c.shutdown().unwrap();
    let stats = server.stats();
    server.shutdown();
    // ...but only every 4th sample reached storage.
    assert_eq!(backend.contents("/reduced").unwrap().len(), raw.len() / 4);
    assert_eq!(stats.bytes_filtered_out, (raw.len() - raw.len() / 4) as u64);
    assert_eq!(sub.reduced_bytes(), (raw.len() - raw.len() / 4) as u64);
}

#[test]
fn insitu_sink_filter_consumes_scratch_writes_in_all_modes() {
    use iofwd::filter::{FilterChain, SinkFilter};
    for mode in ALL_MODES {
        let sink = SinkFilter::new("/scratch/");
        let backend = Arc::new(MemSinkBackend::new());
        let hub = MemHub::new();
        let server = IonServer::spawn(
            Box::new(hub.listener()),
            backend.clone(),
            ServerConfig::new(mode).with_filter(FilterChain::new().with(sink.clone())),
        );
        let mut c = Client::connect(Box::new(hub.connect()));
        let scratch = c
            .open("/scratch/tmp", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
            .unwrap();
        let keep = c
            .open("/keep", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
            .unwrap();
        c.write(scratch, &[0u8; 4096]).unwrap();
        c.write(keep, &[1u8; 4096]).unwrap();
        c.close(scratch).unwrap();
        c.close(keep).unwrap();
        c.shutdown().unwrap();
        server.shutdown();
        assert_eq!(sink.consumed_bytes(), 4096, "mode {}", mode.name());
        assert_eq!(
            backend.contents("/scratch/tmp").unwrap(),
            b"",
            "mode {}",
            mode.name()
        );
        assert_eq!(
            backend.contents("/keep").unwrap().len(),
            4096,
            "mode {}",
            mode.name()
        );
    }
}

#[test]
fn vanished_client_descriptors_are_reclaimed() {
    // A client that disconnects without closing must not leak ION
    // descriptors — and its staged writes must still land.
    for mode in ALL_MODES {
        let backend = Arc::new(MemSinkBackend::new());
        let (server, hub) = start(mode, backend.clone());
        {
            let mut c = Client::connect(Box::new(hub.connect()));
            let fd = c
                .open("/orphan", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
                .unwrap();
            c.write(fd, &[5u8; 8192]).unwrap();
            // Drop the client without close() or shutdown(): the
            // connection just vanishes.
        }
        // Give the handler a moment to observe the disconnect.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.open_descriptors() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.open_descriptors(), 0, "mode {}", mode.name());
        server.shutdown();
        assert_eq!(
            backend.contents("/orphan").unwrap().len(),
            8192,
            "mode {}",
            mode.name()
        );
    }
}

#[test]
fn oversized_writes_are_chunked_transparently() {
    for mode in [
        ForwardingMode::Zoid,
        ForwardingMode::AsyncStaged {
            workers: 2,
            bml_capacity: 8 << 20,
        },
    ] {
        let backend = Arc::new(MemSinkBackend::new());
        let (server, hub) = start(mode, backend.clone());
        let mut c = Client::connect(Box::new(hub.connect()));
        // Force tiny frames so a modest write must split.
        c.set_max_chunk(64 * 1024);
        let fd = c
            .open("/big", OpenFlags::RDWR | OpenFlags::CREATE, 0o644)
            .unwrap();
        let payload: Vec<u8> = (0..1_000_000u32).map(|i| (i % 239) as u8).collect();
        assert_eq!(c.write(fd, &payload).unwrap(), payload.len() as u64);
        c.fsync(fd).unwrap();
        // Positioned writes split with correct offsets too.
        c.pwrite(fd, 500_000, &payload[..300_000]).unwrap();
        c.fsync(fd).unwrap();
        let mut expect = payload.clone();
        expect[500_000..800_000].copy_from_slice(&payload[..300_000]);
        assert_eq!(
            c.pread(fd, 0, expect.len() as u64).unwrap(),
            expect,
            "mode {}",
            mode.name()
        );
        c.close(fd).unwrap();
        c.shutdown().unwrap();
        server.shutdown();
        assert_eq!(
            backend.contents("/big").unwrap(),
            expect,
            "mode {}",
            mode.name()
        );
    }
}

#[test]
fn namespace_ops_work_end_to_end() {
    // mkdir + readdir + ftruncate through every daemon mode.
    for mode in ALL_MODES {
        let backend = Arc::new(MemSinkBackend::new());
        let (server, hub) = start(mode, backend.clone());
        let mut c = Client::connect(Box::new(hub.connect()));
        c.mkdir("/proj", 0o755).unwrap();
        c.mkdir("/proj/run1", 0o755).unwrap();
        assert!(matches!(
            c.mkdir("/proj", 0o755),
            Err(ClientError::Remote(Errno::Exist))
        ));
        for name in ["a.dat", "b.dat"] {
            let fd = c
                .open(
                    &format!("/proj/{name}"),
                    OpenFlags::WRONLY | OpenFlags::CREATE,
                    0o644,
                )
                .unwrap();
            c.write(fd, &[9u8; 1000]).unwrap();
            c.close(fd).unwrap();
        }
        let mut entries = c.readdir("/proj").unwrap();
        entries.sort();
        assert_eq!(
            entries,
            vec!["a.dat", "b.dat", "run1"],
            "mode {}",
            mode.name()
        );
        // ftruncate shrinks and zero-extends, ordered after staged writes.
        let fd = c.open("/proj/a.dat", OpenFlags::RDWR, 0).unwrap();
        c.write(fd, &[7u8; 500]).unwrap();
        c.ftruncate(fd, 200).unwrap();
        assert_eq!(c.fstat(fd).unwrap().size, 200);
        c.ftruncate(fd, 400).unwrap();
        let data = c.pread(fd, 0, 400).unwrap();
        assert_eq!(&data[..200], &[7u8; 200][..], "mode {}", mode.name());
        assert_eq!(&data[200..], &[0u8; 200][..], "mode {}", mode.name());
        c.close(fd).unwrap();
        c.shutdown().unwrap();
        server.shutdown();
    }
}

#[test]
fn readdir_missing_and_root() {
    let backend = Arc::new(MemSinkBackend::new());
    let (server, hub) = start(ForwardingMode::Zoid, backend);
    let mut c = Client::connect(Box::new(hub.connect()));
    // Root of an empty store lists nothing.
    assert!(c.readdir("/").unwrap().is_empty());
    let fd = c
        .open("/top.dat", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
        .unwrap();
    c.close(fd).unwrap();
    assert_eq!(c.readdir("/").unwrap(), vec!["top.dat"]);
    c.shutdown().unwrap();
    server.shutdown();
}
