//! End-to-end smoke test of the shipped binaries: `iofwdd` (the daemon)
//! and `iofwd-cp` (the transfer tool), as real processes over real TCP
//! and a real filesystem root. Daemon lifecycle goes through
//! [`iofwd::daemon::DaemonHandle`] — the same supervisor the experiment
//! harness and CI gates use.

use std::io::{Read, Write};
use std::process::Command;

use iofwd::daemon::{DaemonHandle, DaemonSpec};

#[test]
fn daemon_and_cp_roundtrip() {
    let dir = std::env::temp_dir().join(format!("iofwd-cli-{}", std::process::id()));
    let root = dir.join("ion-root");
    std::fs::create_dir_all(&dir).unwrap();

    // Source file with non-trivial contents.
    let src = dir.join("src.bin");
    let payload: Vec<u8> = (0..3_000_000u32).map(|i| (i % 251) as u8).collect();
    std::fs::File::create(&src)
        .unwrap()
        .write_all(&payload)
        .unwrap();

    let spec = DaemonSpec::new(env!("CARGO_BIN_EXE_iofwdd"), &root).mode("staged");
    let mut daemon = DaemonHandle::spawn(&spec).expect("spawn iofwdd");
    let addr = daemon.addr();
    // The startup banner must land in the captured log. The daemon
    // writes its port file before the banner, so poll briefly.
    let bannered = (0..100).any(|_| {
        let seen = std::fs::read_to_string(daemon.log_path())
            .map(|t| t.contains("listening"))
            .unwrap_or(false);
        if !seen {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        seen
    });
    assert!(bannered, "{}", daemon.log_tail());

    let cp = env!("CARGO_BIN_EXE_iofwd-cp");
    // put
    let st = Command::new(cp)
        .args(["put", src.to_str().unwrap(), &addr, "/in/data.bin"])
        .status()
        .unwrap();
    assert!(st.success(), "put failed");
    // The daemon's sandboxed root must now contain the file.
    assert_eq!(
        std::fs::metadata(root.join("in/data.bin")).unwrap().len(),
        payload.len() as u64
    );
    // stat
    let out = Command::new(cp)
        .args(["stat", &addr, "/in/data.bin"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains(&format!("{} bytes", payload.len())), "{text}");
    // get
    let back = dir.join("back.bin");
    let st = Command::new(cp)
        .args(["get", &addr, "/in/data.bin", back.to_str().unwrap()])
        .status()
        .unwrap();
    assert!(st.success(), "get failed");
    let mut got = Vec::new();
    std::fs::File::open(&back)
        .unwrap()
        .read_to_end(&mut got)
        .unwrap();
    assert_eq!(got, payload);

    // Errors are clean, not panics.
    let out = Command::new(cp)
        .args(["stat", &addr, "/no/such/file"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("ENOENT"));

    assert!(!daemon.panicked(), "{}", daemon.log_tail());
    daemon.shutdown().expect("daemon shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cp_usage_errors_are_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_iofwd-cp"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn daemon_rejects_bad_mode() {
    let out = Command::new(env!("CARGO_BIN_EXE_iofwdd"))
        .args(["--mode", "bogus"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown mode"));
}
