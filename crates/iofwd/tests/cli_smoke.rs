//! End-to-end smoke test of the shipped binaries: `iofwdd` (the daemon)
//! and `iofwd-cp` (the transfer tool), as real processes over real TCP
//! and a real filesystem root.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct DaemonGuard(Child);

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

fn wait_listening(addr: &str) {
    for _ in 0..100 {
        if std::net::TcpStream::connect(addr).is_ok() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("daemon never started listening on {addr}");
}

#[test]
fn daemon_and_cp_roundtrip() {
    let dir = std::env::temp_dir().join(format!("iofwd-cli-{}", std::process::id()));
    let root = dir.join("ion-root");
    std::fs::create_dir_all(&dir).unwrap();

    // Source file with non-trivial contents.
    let src = dir.join("src.bin");
    let payload: Vec<u8> = (0..3_000_000u32).map(|i| (i % 251) as u8).collect();
    std::fs::File::create(&src)
        .unwrap()
        .write_all(&payload)
        .unwrap();

    let port = free_port();
    let addr = format!("127.0.0.1:{port}");
    let daemon = Command::new(env!("CARGO_BIN_EXE_iofwdd"))
        .args([
            "--listen",
            &addr,
            "--root",
            root.to_str().unwrap(),
            "--mode",
            "staged",
        ])
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn iofwdd");
    let mut daemon = DaemonGuard(daemon);
    // Check the banner, then keep draining stderr so the daemon never
    // blocks (or EPIPEs) on its periodic status lines.
    {
        let stderr = daemon.0.stderr.take().unwrap();
        let mut reader = BufReader::new(stderr);
        let mut first = String::new();
        reader.read_line(&mut first).unwrap();
        assert!(first.contains("listening"), "{first}");
        std::thread::spawn(move || {
            let mut sink = String::new();
            while let Ok(n) = reader.read_line(&mut sink) {
                if n == 0 {
                    break;
                }
                sink.clear();
            }
        });
    }
    wait_listening(&addr);

    let cp = env!("CARGO_BIN_EXE_iofwd-cp");
    // put
    let st = Command::new(cp)
        .args(["put", src.to_str().unwrap(), &addr, "/in/data.bin"])
        .status()
        .unwrap();
    assert!(st.success(), "put failed");
    // The daemon's sandboxed root must now contain the file.
    assert_eq!(
        std::fs::metadata(root.join("in/data.bin")).unwrap().len(),
        payload.len() as u64
    );
    // stat
    let out = Command::new(cp)
        .args(["stat", &addr, "/in/data.bin"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains(&format!("{} bytes", payload.len())), "{text}");
    // get
    let back = dir.join("back.bin");
    let st = Command::new(cp)
        .args(["get", &addr, "/in/data.bin", back.to_str().unwrap()])
        .status()
        .unwrap();
    assert!(st.success(), "get failed");
    let mut got = Vec::new();
    std::fs::File::open(&back)
        .unwrap()
        .read_to_end(&mut got)
        .unwrap();
    assert_eq!(got, payload);

    // Errors are clean, not panics.
    let out = Command::new(cp)
        .args(["stat", &addr, "/no/such/file"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("ENOENT"));

    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cp_usage_errors_are_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_iofwd-cp"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn daemon_rejects_bad_mode() {
    let out = Command::new(env!("CARGO_BIN_EXE_iofwdd"))
        .args(["--mode", "bogus"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown mode"));
}
