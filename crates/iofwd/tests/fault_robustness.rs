//! Robustness under injected faults and forced shutdown: the chaos
//! completion contract (a seeded fault plan with transient errors must
//! not surface to a client when retries are on) and the drain contract
//! (a deadline-bounded shutdown leaves no staged write without an
//! outcome and no BML buffer stranded).

use std::sync::Arc;
use std::time::Duration;

use iofwd::backend::{FaultBackend, MemSinkBackend, ThrottledBackend};
use iofwd::client::Client;
use iofwd::fault::{FaultPlan, FaultRule, OpClass, RetryPolicy};
use iofwd::server::{ForwardingMode, IonServer, ServerConfig};
use iofwd::transport::mem::MemHub;
use iofwd_proto::{Errno, OpenFlags};

/// A retry policy tuned for tests: plenty of attempts, microscopic
/// backoff so the suite stays fast.
fn quick_retries() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 10,
        base_backoff: Duration::from_micros(50),
        max_backoff: Duration::from_micros(500),
        op_deadline: Duration::from_secs(5),
    }
}

fn staged_config(workers: usize, bml: u64) -> ServerConfig {
    ServerConfig::new(ForwardingMode::AsyncStaged {
        workers,
        bml_capacity: bml,
    })
}

#[test]
fn chaos_plan_with_transient_faults_completes_with_retries() {
    // >5% of writes fail with EAGAIN, another slice go through short;
    // opens occasionally EAGAIN too. With retries on, the client must
    // never see an error and every byte must land.
    let plan = FaultPlan::new(0xc4a05)
        .rule(
            FaultRule::on(OpClass::Write)
                .probability(0.10)
                .errno(Errno::Again),
        )
        .rule(FaultRule::on(OpClass::Write).probability(0.10).short(0.5))
        .rule(
            FaultRule::on(OpClass::Open)
                .probability(0.25)
                .errno(Errno::Again),
        );
    let sink = Arc::new(MemSinkBackend::new());
    let config = staged_config(3, 8 << 20).with_retry_policy(quick_retries());
    let telemetry = config.telemetry.clone();
    let faulty = Arc::new(FaultBackend::new(sink.clone(), plan, telemetry.clone()));
    let hub = MemHub::new();
    let server = IonServer::spawn(Box::new(hub.listener()), faulty.clone(), config);

    let mut c = Client::connect(Box::new(hub.connect()));
    let fd = c
        .open("/chaos", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
        .unwrap();
    let mut expect = Vec::new();
    for i in 0..200u32 {
        let chunk = vec![(i % 251) as u8; 4096];
        c.write(fd, &chunk).unwrap();
        expect.extend_from_slice(&chunk);
    }
    // The barrier surfaces any deferred staged-write error: there must
    // be none — every transient fault was retried away.
    c.fsync(fd).unwrap();
    c.close(fd).unwrap();
    c.shutdown().unwrap();
    server.shutdown();

    assert_eq!(sink.contents("/chaos").unwrap(), expect);
    assert!(
        faulty.faults_injected() > 0,
        "a 10% plan over 200 writes must fire"
    );
    assert!(
        telemetry.faults_injected.get() > 0,
        "injected faults must be counted"
    );
    assert!(
        telemetry.retries_attempted.get() > 0,
        "transient faults must drive retries"
    );
    assert_eq!(
        telemetry.retries_exhausted.get(),
        0,
        "10 attempts vs p=0.1 must never exhaust"
    );
}

#[test]
fn chaos_faults_surface_without_retries() {
    // Same shape of plan, retries disabled (the engine default): the
    // deferred-error channel must deliver the injected EAGAIN instead of
    // papering over it. nth=3 makes the failure deterministic.
    let plan = FaultPlan::new(7).rule(FaultRule::on(OpClass::Write).nth(3).errno(Errno::Again));
    let sink = Arc::new(MemSinkBackend::new());
    let config = staged_config(1, 1 << 20);
    let telemetry = config.telemetry.clone();
    let faulty = Arc::new(FaultBackend::new(sink, plan, telemetry.clone()));
    let hub = MemHub::new();
    let server = IonServer::spawn(Box::new(hub.listener()), faulty, config);

    let mut c = Client::connect(Box::new(hub.connect()));
    let fd = c
        .open("/noretry", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
        .unwrap();
    // The deferred-error channel reports the failure on whichever op on
    // this fd follows the failed staged write — a later write if the
    // worker already executed write #3, otherwise the fsync barrier.
    let mut surfaced = None;
    for _ in 0..4 {
        if let Err(e) = c.write(fd, &[1u8; 512]) {
            surfaced = Some(e);
            break;
        }
    }
    let surfaced = surfaced.unwrap_or_else(|| c.fsync(fd).expect_err("EAGAIN must surface"));
    match surfaced {
        iofwd::client::ClientError::Deferred { errno, .. } => assert_eq!(errno, Errno::Again),
        other => panic!("expected deferred EAGAIN, got {other:?}"),
    }
    c.close(fd).unwrap();
    c.shutdown().unwrap();
    server.shutdown();
    assert_eq!(telemetry.retries_attempted.get(), 0);
}

#[test]
fn orderly_shutdown_reports_nothing_parked() {
    let sink = Arc::new(MemSinkBackend::new());
    let hub = MemHub::new();
    let server = IonServer::spawn(Box::new(hub.listener()), sink, staged_config(2, 4 << 20));
    let mut c = Client::connect(Box::new(hub.connect()));
    let fd = c
        .open("/calm", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
        .unwrap();
    c.write(fd, &[2u8; 8192]).unwrap();
    c.close(fd).unwrap();
    c.shutdown().unwrap();
    let report = server.shutdown_with_deadline(Duration::from_secs(5));
    assert_eq!((report.executed, report.deferred), (0, 0));
}

#[test]
fn kill_during_load_strands_no_bml_buffer() {
    // A slow backend, a pile of staged writes, the client vanishes, and
    // the daemon is given a deadline far too small to finish the backlog.
    // Contract: every parked staged write either executes during the
    // drain or records a deferred error — and all staging memory is
    // returned (BML occupancy gauge reads zero after shutdown).
    const CHUNK: usize = 64 * 1024;
    const WRITES: usize = 16;
    let sink = Arc::new(MemSinkBackend::new());
    // 2 MiB/s: each 64 KiB write costs ~31 ms; 16 of them ~500 ms.
    let slow = Arc::new(ThrottledBackend::new(
        sink.clone(),
        2.0 * 1024.0 * 1024.0,
        Duration::ZERO,
    ));
    // Coalescing off: this test targets the *serial* backlog drain.
    // Merged, the parked chain would execute as one vectored call that
    // simply outlives the deadline, leaving the drain nothing to defer.
    let config = staged_config(2, 4 << 20).with_coalescing(None);
    let telemetry = config.telemetry.clone();
    let hub = MemHub::new();
    let server = IonServer::spawn(Box::new(hub.listener()), slow, config);

    {
        let mut c = Client::connect(Box::new(hub.connect()));
        let fd = c
            .open("/killed", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
            .unwrap();
        for i in 0..WRITES {
            c.write(fd, &vec![i as u8; CHUNK]).unwrap();
        }
        // Vanish without close/fsync: the backlog is the daemon's
        // problem now.
    }
    let report = server.shutdown_with_deadline(Duration::from_millis(300));

    // The deadline was less than the backlog cost, so the drain must
    // have deferred at least one write — and executed at least one.
    assert!(report.deferred > 0, "300 ms cannot drain ~500 ms of writes");
    assert!(report.executed > 0, "the drain had budget for some writes");
    assert_eq!(telemetry.drain_executed.get(), report.executed as u64);
    assert_eq!(telemetry.drain_deferred.get(), report.deferred as u64);
    // Single-fd lanes preserve order, so what landed is an exact prefix:
    // every write except the deferred tail.
    let landed = sink.contents("/killed").unwrap().len();
    assert_eq!(landed, (WRITES - report.deferred) * CHUNK);
    // No staging buffer may outlive shutdown.
    assert_eq!(
        telemetry.bml_occupancy.get(),
        0,
        "BML buffers stranded after shutdown"
    );
}
