//! End-to-end tests of distributed tracing (DESIGN.md §11): a tracing
//! client's stage-echo sums must reproduce the daemon's own telemetry
//! histograms, traced and untraced clients interoperate on the same
//! daemon (wire backward compatibility), the exporter produces a
//! Perfetto-loadable trace with per-worker tracks, and failed ops land
//! in the flight recorder with their errno and disposition.

use std::sync::Arc;

use iofwd::backend::{Backend, MemSinkBackend};
use iofwd::client::{Client, ClientError};
use iofwd::server::{ForwardingMode, IonServer, ServerConfig};
use iofwd::telemetry::{Disposition, Telemetry};
use iofwd::trace::{validate_chrome_trace, StageBreakdown, TraceExporter};
use iofwd::transport::mem::MemHub;
use iofwd::transport::tcp::{TcpAcceptor, TcpConn};
use iofwd_proto::{Errno, OpenFlags};

fn start_with_telemetry(
    mode: ForwardingMode,
    backend: Arc<dyn Backend>,
    telemetry: Arc<Telemetry>,
) -> (IonServer, MemHub) {
    let hub = MemHub::new();
    let server = IonServer::spawn(
        Box::new(hub.listener()),
        backend,
        ServerConfig::new(mode).with_telemetry(telemetry),
    );
    (server, hub)
}

/// `a` is within `pct` percent of `b`, with a small absolute slack so
/// sums in the tens-of-microseconds range (where one scheduler blip on
/// a single op is several percent) don't flake under machine load.
fn within_pct(a: u64, b: u64, pct: f64) -> bool {
    const SLACK_NS: u64 = 20_000;
    a.abs_diff(b) <= SLACK_NS || a.abs_diff(b) as f64 <= b.max(1) as f64 * (pct / 100.0)
}

/// The acceptance bar: for synchronous modes, the client's summed stage
/// echoes must reproduce the daemon's histogram sums within 5%. The
/// reply-before-send design makes them *identical* here — every echoed
/// reply is built from the very span `Telemetry::complete` folds into
/// the histograms — but the test asserts the documented tolerance.
#[test]
fn client_decomposition_matches_daemon_histograms() {
    for mode in [
        ForwardingMode::Ciod,
        ForwardingMode::Zoid,
        ForwardingMode::Sched { workers: 2 },
    ] {
        let telemetry = Arc::new(Telemetry::new());
        let backend = Arc::new(MemSinkBackend::new());
        let (server, hub) = start_with_telemetry(mode, backend, telemetry.clone());
        let mut c = Client::connect(Box::new(hub.connect()));
        c.enable_tracing();

        let fd = c
            .open("/traced", OpenFlags::RDWR | OpenFlags::CREATE, 0o644)
            .unwrap();
        for i in 0..32u8 {
            c.write(fd, &vec![i; 8 * 1024]).unwrap();
        }
        c.pread(fd, 0, 4096).unwrap();
        c.fsync(fd).unwrap();
        c.close(fd).unwrap();
        c.shutdown().unwrap();

        let t = c.trace_stats();
        assert!(
            t.calls >= 36,
            "mode {}: echoed {} calls",
            mode.name(),
            t.calls
        );
        let snap = telemetry.snapshot();
        let sum = |name: &str| snap.hist(name).map_or(0, |h| h.sum);
        for (stage, client_side) in [
            ("total_ns", t.server_total_ns),
            ("queue_wait_ns", t.queue_ns),
            ("dispatch_lag_ns", t.dispatch_ns),
            ("service_ns", t.backend_ns),
            ("reply_lag_ns", t.reply_ns),
        ] {
            assert!(
                within_pct(client_side, sum(stage), 5.0),
                "mode {}: {stage}: client sum {client_side} vs daemon sum {} exceeds 5%",
                mode.name(),
                sum(stage)
            );
        }
        // The client's wall clock bounds the server's residency: the
        // decomposition never attributes more time than was observed.
        assert!(t.server_total_ns <= t.client_ns);
        assert!(t.network_ns() + t.server_total_ns == t.client_ns);
        server.shutdown();
    }
}

/// Staged mode echoes the ack-time view: the stage breakdown arrives on
/// the immediate `Staged` ack (before the backend runs), so backend and
/// reply stages are not yet measurable there, but barrier ops (fsync,
/// close) still carry full lifecycles.
#[test]
fn staged_mode_echoes_ack_time_stages() {
    let telemetry = Arc::new(Telemetry::new());
    let backend = Arc::new(MemSinkBackend::new());
    let (server, hub) = start_with_telemetry(
        ForwardingMode::AsyncStaged {
            workers: 2,
            bml_capacity: 8 << 20,
        },
        backend,
        telemetry,
    );
    let mut c = Client::connect(Box::new(hub.connect()));
    c.enable_tracing();
    let fd = c
        .open("/staged", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
        .unwrap();
    for _ in 0..16 {
        c.write(fd, &[7u8; 16 * 1024]).unwrap();
    }
    c.fsync(fd).unwrap();
    c.close(fd).unwrap();
    c.shutdown().unwrap();
    let t = c.trace_stats();
    assert!(t.calls >= 19, "echoed {} calls", t.calls);
    assert!(t.server_total_ns > 0);
    assert!(t.server_total_ns <= t.client_ns);
    server.shutdown();
}

/// One daemon, one traced client, one legacy (untraced) client: the
/// optional trace extension must not disturb plain-protocol peers, and
/// the exporter's trace must be schema-valid with a track per pool
/// worker — over real TCP framing, where the streaming decoder has to
/// resynchronise on the extension's length.
#[test]
fn tcp_traced_and_untraced_clients_interoperate() {
    let telemetry = Arc::new(Telemetry::new());
    let exporter = Arc::new(TraceExporter::new(0));
    assert!(telemetry.set_sink(exporter.clone()));
    let backend = Arc::new(MemSinkBackend::new());
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr().unwrap();
    let server = IonServer::spawn(
        Box::new(acceptor),
        backend.clone(),
        ServerConfig::new(ForwardingMode::Sched { workers: 2 }).with_telemetry(telemetry),
    );

    let mut traced = Client::with_id(Box::new(TcpConn::connect(addr).unwrap()), 0);
    traced.enable_tracing();
    let mut plain = Client::with_id(Box::new(TcpConn::connect(addr).unwrap()), 1);

    let payload = vec![3u8; 64 * 1024];
    let tfd = traced
        .open("/t", OpenFlags::RDWR | OpenFlags::CREATE, 0o644)
        .unwrap();
    let pfd = plain
        .open("/p", OpenFlags::RDWR | OpenFlags::CREATE, 0o644)
        .unwrap();
    for _ in 0..8 {
        traced.write(tfd, &payload).unwrap();
        plain.write(pfd, &payload).unwrap();
    }
    assert_eq!(traced.pread(tfd, 0, 16).unwrap(), vec![3u8; 16]);
    assert_eq!(plain.pread(pfd, 0, 16).unwrap(), vec![3u8; 16]);
    traced.close(tfd).unwrap();
    plain.close(pfd).unwrap();
    traced.shutdown().unwrap();
    plain.shutdown().unwrap();
    server.shutdown();

    // 11 echoed ops: open + 8 writes + pread + close (sched's shutdown
    // reply carries no echo — its span never completes).
    assert!(traced.trace_stats().calls >= 11);
    assert_eq!(plain.trace_stats().calls, 0, "no echoes without tracing");
    assert_eq!(backend.contents("/t").unwrap().len(), 8 * 64 * 1024);
    assert_eq!(backend.contents("/p").unwrap().len(), 8 * 64 * 1024);

    // Only the traced client's spans were retained, and they render to
    // a schema-valid trace with per-worker tracks.
    let spans = exporter.spans();
    assert!(!spans.is_empty());
    assert!(spans.iter().all(|s| s.sampled && s.trace_id >> 32 == 1));
    let summary = validate_chrome_trace(&exporter.render()).expect("valid trace");
    assert!(summary.slices > 0);
    assert_eq!(summary.client_tracks, 1);
    assert!(
        summary.worker_tracks >= 1,
        "pool execution must appear on worker tracks"
    );
    // The sampled view agrees with itself when re-aggregated.
    let b = StageBreakdown::from_spans(&spans);
    assert_eq!(b.ops, spans.len() as u64);
    assert!(b.total_ns >= b.backend_ns);
}

/// Daemon-side self-sampling (`iofwdd --trace-sample 1`) retains every
/// op even when no client requests tracing.
#[test]
fn self_sampling_traces_untraced_clients() {
    let telemetry = Arc::new(Telemetry::new());
    let exporter = Arc::new(TraceExporter::new(1));
    assert!(telemetry.set_sink(exporter.clone()));
    let backend = Arc::new(MemSinkBackend::new());
    let (server, hub) =
        start_with_telemetry(ForwardingMode::Sched { workers: 2 }, backend, telemetry);
    let mut c = Client::connect(Box::new(hub.connect()));
    let fd = c
        .open("/plain", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
        .unwrap();
    for _ in 0..10 {
        c.write(fd, &[1u8; 4096]).unwrap();
    }
    c.close(fd).unwrap();
    c.shutdown().unwrap();
    server.shutdown();

    let spans = exporter.spans();
    assert!(spans.len() >= 12, "kept {} spans", spans.len());
    assert!(spans.iter().all(|s| s.trace_id == 0 && !s.sampled));
    let summary = validate_chrome_trace(&exporter.render()).expect("valid trace");
    assert!(summary.slices >= spans.len());
}

/// The flight recorder keeps failed ops with their wire errno and
/// disposition — the post-mortem surface for "which op failed, how".
#[test]
fn flight_recorder_captures_errno_and_disposition() {
    let telemetry = Arc::new(Telemetry::new());
    let backend = Arc::new(MemSinkBackend::new());
    let (server, hub) = start_with_telemetry(ForwardingMode::Zoid, backend, telemetry.clone());
    let mut c = Client::connect(Box::new(hub.connect()));
    let fd = c
        .open("/f", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
        .unwrap();
    c.write(fd, b"ok").unwrap();
    c.close(fd).unwrap();
    // Writing through a closed descriptor must fail with EBADF...
    match c.write(fd, b"stale") {
        Err(ClientError::Remote(Errno::BadF)) => {}
        other => panic!("expected EBADF, got {other:?}"),
    }
    c.shutdown().unwrap();
    server.shutdown();

    // ...and the flight recorder must remember exactly that.
    let flight = telemetry.flight.snapshot();
    let failed: Vec<_> = flight.iter().filter(|s| !s.ok).collect();
    assert_eq!(
        failed.len(),
        1,
        "one failed op in {} recorded",
        flight.len()
    );
    assert_eq!(failed[0].errno, Errno::BadF.to_wire());
    assert_eq!(failed[0].disposition, Disposition::Completed);
    // Successful ops carry no errno.
    assert!(flight.iter().filter(|s| s.ok).all(|s| s.errno == 0));
}
