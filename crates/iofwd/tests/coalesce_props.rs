//! Property-based equivalence of the write-coalescing layer (DESIGN.md
//! §12): for an arbitrary interleaving of cursor writes, positional
//! writes, preads, seeks and truncates — against a backend that injects
//! short writes (per-call byte cap) and position-sticky errnos — the
//! coalesced execution path must be *observably identical* to serial
//! staged execution:
//!
//! * the same per-constituent [`OpOutcome`] in the same staging order,
//! * the same deferred-error reports on the same ops,
//! * the same responses and payloads for every interleaved sync op,
//! * byte-identical final file contents.
//!
//! The harness drives [`Engine::execute_staged_write`] vs
//! [`Engine::execute_coalesced_write`] directly, mirroring the worker:
//! contiguous staged writes on one descriptor accumulate into a chain
//! (capped at the default 16 ops) that flushes as one vectored batch;
//! any non-contiguous write or barrier op (read/seek/truncate/fsync)
//! flushes first, exactly like the lane harvest in
//! `server::handlers::worker_loop`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use iofwd::backend::{Backend, BackendObject};
use iofwd::descdb::{BeginError, OpOutcome};
use iofwd::server::Engine;
use iofwd_proto::{Errno, Fd, FileStat, OpId, OpenFlags, Request, Response, Whence};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// A deterministic faulty backend with positional semantics.
// ---------------------------------------------------------------------

#[derive(Default)]
struct FileState {
    data: Vec<u8>,
    cursor: u64,
}

/// In-memory backend whose write faults are a pure function of file
/// *position*, never of call count or batch shape — so merging calls
/// cannot change which logical bytes fail:
///
/// * `cap`: a call accepts at most this many bytes (short writes force
///   the engine's continuation loop in both arms);
/// * `fail_at`: any write starting at or past position `p` fails with
///   the errno; a call straddling `p` goes short at the boundary, so
///   the continuation surfaces the errno — identically for a serial
///   re-issue and a vectored re-issue.
struct StickyBackend {
    files: Mutex<HashMap<String, Arc<Mutex<FileState>>>>,
    cap: Option<usize>,
    fail_at: Option<(u64, Errno)>,
}

impl StickyBackend {
    fn new(cap: Option<usize>, fail_at: Option<(u64, Errno)>) -> StickyBackend {
        StickyBackend {
            files: Mutex::new(HashMap::new()),
            cap,
            fail_at,
        }
    }

    fn contents(&self, path: &str) -> Option<Vec<u8>> {
        let files = self.files.lock().unwrap();
        files.get(path).map(|f| f.lock().unwrap().data.clone())
    }
}

struct StickyObject {
    state: Arc<Mutex<FileState>>,
    cap: Option<usize>,
    fail_at: Option<(u64, Errno)>,
}

impl StickyObject {
    /// The one write primitive: positional fault check, byte cap, then
    /// copy across buffer boundaries (a genuinely vectored transfer, so
    /// short writes can split a constituent mid-buffer).
    fn write_span(&mut self, offset: Option<u64>, bufs: &[&[u8]]) -> Result<u64, Errno> {
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        let mut st = self.state.lock().unwrap();
        if total == 0 {
            return Ok(0);
        }
        let start = offset.unwrap_or(st.cursor);
        let mut allow = total;
        if let Some((p, e)) = self.fail_at {
            if start >= p {
                return Err(e);
            }
            allow = allow.min((p - start) as usize);
        }
        if let Some(cap) = self.cap {
            allow = allow.min(cap.max(1));
        }
        let end = start as usize + allow;
        if st.data.len() < end {
            st.data.resize(end, 0);
        }
        let mut at = start as usize;
        let mut left = allow;
        for b in bufs {
            if left == 0 {
                break;
            }
            let n = left.min(b.len());
            st.data[at..at + n].copy_from_slice(&b[..n]);
            at += n;
            left -= n;
        }
        if offset.is_none() {
            st.cursor = start + allow as u64;
        }
        Ok(allow as u64)
    }
}

impl BackendObject for StickyObject {
    fn write_at(&mut self, offset: Option<u64>, data: &[u8]) -> Result<u64, Errno> {
        self.write_span(offset, &[data])
    }

    fn write_vectored_at(&mut self, offset: Option<u64>, bufs: &[&[u8]]) -> Result<u64, Errno> {
        self.write_span(offset, bufs)
    }

    fn read_at(&mut self, offset: Option<u64>, len: u64) -> Result<Vec<u8>, Errno> {
        let mut st = self.state.lock().unwrap();
        let start = offset.unwrap_or(st.cursor) as usize;
        let end = (start + len as usize).min(st.data.len());
        let out = if start >= st.data.len() {
            Vec::new()
        } else {
            st.data[start..end].to_vec()
        };
        if offset.is_none() {
            st.cursor += out.len() as u64;
        }
        Ok(out)
    }

    fn seek(&mut self, offset: i64, whence: Whence) -> Result<u64, Errno> {
        let mut st = self.state.lock().unwrap();
        let base = match whence {
            Whence::Set => 0i64,
            Whence::Cur => st.cursor as i64,
            Whence::End => st.data.len() as i64,
        };
        let pos = base.checked_add(offset).filter(|p| *p >= 0);
        match pos {
            Some(p) => {
                st.cursor = p as u64;
                Ok(p as u64)
            }
            None => Err(Errno::Inval),
        }
    }

    fn sync(&mut self) -> Result<(), Errno> {
        Ok(())
    }

    fn fstat(&mut self) -> Result<FileStat, Errno> {
        let st = self.state.lock().unwrap();
        Ok(FileStat {
            size: st.data.len() as u64,
            mode: 0o644,
            mtime_ns: 0,
            is_dir: false,
        })
    }

    fn truncate(&mut self, len: u64) -> Result<(), Errno> {
        let mut st = self.state.lock().unwrap();
        st.data.resize(len as usize, 0);
        Ok(())
    }
}

impl Backend for StickyBackend {
    fn open(
        &self,
        path: &str,
        _flags: OpenFlags,
        _mode: u32,
    ) -> Result<Box<dyn BackendObject>, Errno> {
        let mut files = self.files.lock().unwrap();
        let state = files.entry(path.to_string()).or_default().clone();
        Ok(Box::new(StickyObject {
            state,
            cap: self.cap,
            fail_at: self.fail_at,
        }))
    }

    fn stat(&self, path: &str) -> Result<FileStat, Errno> {
        let files = self.files.lock().unwrap();
        match files.get(path) {
            Some(f) => Ok(FileStat {
                size: f.lock().unwrap().data.len() as u64,
                mode: 0o644,
                mtime_ns: 0,
                is_dir: false,
            }),
            None => Err(Errno::NoEnt),
        }
    }

    fn unlink(&self, path: &str) -> Result<(), Errno> {
        let mut files = self.files.lock().unwrap();
        match files.remove(path) {
            Some(_) => Ok(()),
            None => Err(Errno::NoEnt),
        }
    }
}

// ---------------------------------------------------------------------
// Script generation.
// ---------------------------------------------------------------------

const NFDS: usize = 3;
/// Mirror of the default `CoalesceConfig::max_ops`.
const MAX_CHAIN_OPS: usize = 16;

#[derive(Clone, Debug)]
enum Act {
    Write { f: usize, len: usize },
    Pwrite { f: usize, at: u64, len: usize },
    Pread { f: usize, at: u64, len: u64 },
    Lseek { f: usize, to: u64 },
    Ftruncate { f: usize, len: u64 },
    Fsync { f: usize },
}

fn arb_act() -> impl Strategy<Value = Act> {
    // Cursor writes appear three times so contiguous chains actually
    // form; barriers and positional writes break them.
    prop_oneof![
        (0usize..NFDS, 1usize..48).prop_map(|(f, len)| Act::Write { f, len }),
        (0usize..NFDS, 1usize..48).prop_map(|(f, len)| Act::Write { f, len }),
        (0usize..NFDS, 1usize..48).prop_map(|(f, len)| Act::Write { f, len }),
        (0usize..NFDS, 0u64..96, 1usize..48).prop_map(|(f, at, len)| Act::Pwrite { f, at, len }),
        (0usize..NFDS, 0u64..128, 0u64..64).prop_map(|(f, at, len)| Act::Pread { f, at, len }),
        (0usize..NFDS, 0u64..128).prop_map(|(f, to)| Act::Lseek { f, to }),
        (0usize..NFDS, 0u64..96).prop_map(|(f, len)| Act::Ftruncate { f, len }),
        (0usize..NFDS).prop_map(|f| Act::Fsync { f }),
    ]
}

/// Deterministic payload for the `i`-th script action.
fn fill(i: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| (i.wrapping_mul(131) + j.wrapping_mul(7) + 13) as u8)
        .collect()
}

// ---------------------------------------------------------------------
// The two execution arms.
// ---------------------------------------------------------------------

/// Everything an arm lets the outside observe.
#[derive(Debug, PartialEq)]
struct Observed {
    outcomes: Vec<OpOutcome>,
    reports: Vec<(OpId, Errno)>,
    responses: Vec<Response>,
    payloads: Vec<Bytes>,
    contents: Vec<Option<Vec<u8>>>,
}

/// One staged-but-unexecuted write: (op, per-part offset, payload).
type Part = (OpId, Option<u64>, Vec<u8>);

struct Arm {
    engine: Engine,
    coalesce: bool,
    fds: Vec<Fd>,
    /// Per-fd staged chain.
    pending: Vec<Vec<Part>>,
    outcomes: Vec<OpOutcome>,
    reports: Vec<(OpId, Errno)>,
    responses: Vec<Response>,
    payloads: Vec<Bytes>,
}

impl Arm {
    fn begin(&mut self, f: usize) -> OpId {
        match self.engine.descriptor_db().begin_op(self.fds[f]) {
            Ok((op, _)) => op,
            Err(BeginError::Deferred { op, errno }) => {
                self.reports.push((op, errno));
                match self.engine.descriptor_db().begin_op(self.fds[f]) {
                    Ok((op, _)) => op,
                    Err(e) => panic!("begin_op after a deferred report must succeed: {e:?}"),
                }
            }
            Err(BeginError::Sync(e)) => panic!("unexpected sync begin error: {e:?}"),
        }
    }

    /// Stage a write, flushing first when it cannot extend the chain —
    /// the same contiguity rule as `FdSerializer::harvest_contiguous`.
    fn stage(&mut self, f: usize, offset: Option<u64>, data: Vec<u8>) {
        let extends = match (self.pending[f].last(), offset) {
            (None, _) => true,
            (Some((_, None, _)), None) => true,
            (Some((_, Some(o), d)), Some(no)) => no == *o + d.len() as u64,
            _ => false,
        };
        if !extends || self.pending[f].len() >= MAX_CHAIN_OPS {
            self.flush(f);
        }
        let op = self.begin(f);
        self.pending[f].push((op, offset, data));
    }

    /// Execute the fd's staged chain: serially per part, or — in the
    /// coalescing arm, for chains of at least two — as one vectored
    /// batch whose outcomes fan back per constituent.
    fn flush(&mut self, f: usize) {
        let parts = std::mem::take(&mut self.pending[f]);
        if parts.is_empty() {
            return;
        }
        if self.coalesce && parts.len() > 1 {
            let base = parts[0].1;
            let descr: Vec<(OpId, &[u8])> =
                parts.iter().map(|(op, _, d)| (*op, d.as_slice())).collect();
            let out = self
                .engine
                .execute_coalesced_write(self.fds[f], base, &descr);
            self.outcomes.extend(out);
        } else {
            for (op, off, d) in &parts {
                let out = self.engine.execute_staged_write(self.fds[f], *op, *off, d);
                self.outcomes.push(out);
            }
        }
    }

    /// A barrier/sync op: flush the fd's chain (as the lane serializer
    /// would before letting the op pass), then execute and record.
    fn barrier(&mut self, f: usize, req: Request) {
        self.flush(f);
        let (resp, data) = self.engine.execute(&req, &Bytes::new());
        self.responses.push(resp);
        self.payloads.push(data);
    }
}

fn run(
    script: &[Act],
    coalesce: bool,
    cap: Option<usize>,
    fail_at: Option<(u64, Errno)>,
) -> Observed {
    let backend = Arc::new(StickyBackend::new(cap, fail_at));
    let engine = Engine::new(backend.clone(), None);
    let mut fds = Vec::with_capacity(NFDS);
    for i in 0..NFDS {
        let (resp, _) = engine.execute(
            &Request::Open {
                path: format!("/p{i}"),
                flags: OpenFlags::RDWR | OpenFlags::CREATE,
                mode: 0o644,
            },
            &Bytes::new(),
        );
        match resp {
            Response::Ok { ret } => fds.push(Fd(ret as u32)),
            other => panic!("open failed: {other:?}"),
        }
    }
    let mut arm = Arm {
        engine,
        coalesce,
        fds,
        pending: (0..NFDS).map(|_| Vec::new()).collect(),
        outcomes: Vec::new(),
        reports: Vec::new(),
        responses: Vec::new(),
        payloads: Vec::new(),
    };
    for (i, act) in script.iter().enumerate() {
        match *act {
            Act::Write { f, len } => arm.stage(f, None, fill(i, len)),
            Act::Pwrite { f, at, len } => arm.stage(f, Some(at), fill(i, len)),
            Act::Pread { f, at, len } => {
                let fd = arm.fds[f];
                arm.barrier(
                    f,
                    Request::Pread {
                        fd,
                        offset: at,
                        len,
                    },
                );
            }
            Act::Lseek { f, to } => {
                let fd = arm.fds[f];
                arm.barrier(
                    f,
                    Request::Lseek {
                        fd,
                        offset: to as i64,
                        whence: Whence::Set,
                    },
                );
            }
            Act::Ftruncate { f, len } => {
                let fd = arm.fds[f];
                arm.barrier(f, Request::Ftruncate { fd, len });
            }
            Act::Fsync { f } => {
                let fd = arm.fds[f];
                arm.barrier(f, Request::Fsync { fd });
            }
        }
    }
    // Drain: flush every chain, then fsync + close each fd so trailing
    // deferred errors surface in both arms.
    for f in 0..NFDS {
        let fd = arm.fds[f];
        arm.barrier(f, Request::Fsync { fd });
        arm.barrier(f, Request::Close { fd });
    }
    let contents = (0..NFDS)
        .map(|i| backend.contents(&format!("/p{i}")))
        .collect();
    Observed {
        outcomes: arm.outcomes,
        reports: arm.reports,
        responses: arm.responses,
        payloads: arm.payloads,
        contents,
    }
}

// ---------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline equivalence: any interleaving, any short-write cap,
    /// any sticky errno position — serial and coalesced execution are
    /// indistinguishable to every observer the daemon exposes.
    #[test]
    fn coalesced_execution_is_observably_serial(
        script in proptest::collection::vec(arb_act(), 1..80),
        cap_raw in 0usize..40,
        fail_pos in 0u64..768,
        fail_sel in 0u8..4,
    ) {
        let cap = if cap_raw == 0 { None } else { Some(cap_raw) };
        let fail_at = match fail_sel {
            0 => None,
            1 => Some((fail_pos, Errno::Io)),
            2 => Some((fail_pos, Errno::NoSpc)),
            _ => Some((fail_pos, Errno::Pipe)),
        };
        let serial = run(&script, false, cap, fail_at);
        let merged = run(&script, true, cap, fail_at);
        prop_assert_eq!(&serial.outcomes, &merged.outcomes);
        prop_assert_eq!(&serial.reports, &merged.reports);
        prop_assert_eq!(&serial.responses, &merged.responses);
        prop_assert_eq!(&serial.payloads, &merged.payloads);
        prop_assert_eq!(&serial.contents, &merged.contents);
    }

    /// Focused fan-out shape: a pure cursor chain on one descriptor with
    /// a sticky errno somewhere inside it. Beyond arm equivalence, the
    /// outcome vector must be an exact clean prefix — every op ending at
    /// or before the fault position succeeds, everything later fails
    /// with the injected errno — and exactly the prefix bytes land.
    #[test]
    fn cursor_chain_fans_out_as_clean_prefix(
        lens in proptest::collection::vec(1usize..64, 2..24),
        fail_pct in 0u64..110,
        cap_raw in 0usize..24,
    ) {
        let total: usize = lens.iter().sum();
        let fail_pos = (total as u64) * fail_pct / 100;
        let fail_at = Some((fail_pos, Errno::NoSpc));
        let cap = if cap_raw == 0 { None } else { Some(cap_raw) };
        let script: Vec<Act> = lens
            .iter()
            .map(|&len| Act::Write { f: 0, len })
            .collect();
        let serial = run(&script, false, cap, fail_at);
        let merged = run(&script, true, cap, fail_at);
        prop_assert_eq!(&serial, &merged);

        let mut end = 0u64;
        for (i, &len) in lens.iter().enumerate() {
            end += len as u64;
            let expect = if end <= fail_pos {
                OpOutcome::Ok
            } else {
                OpOutcome::Failed(Errno::NoSpc)
            };
            prop_assert_eq!(
                merged.outcomes[i], expect,
                "op {} (chain end {}, fault at {}): got {:?}",
                i, end, fail_pos, merged.outcomes[i]
            );
        }
        let landed = merged.contents[0].as_deref().map_or(0, <[u8]>::len);
        prop_assert_eq!(landed as u64, (total as u64).min(fail_pos));
    }
}
