//! Property-based tests of the buffer management layer: capacity is
//! never exceeded, size-class rounding is correct, and arbitrary
//! concurrent acquire/release interleavings terminate with everything
//! returned.

use iofwd::bml::{Bml, MAX_CLASS_SHIFT, MIN_CLASS_SHIFT};
use proptest::prelude::*;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

proptest! {
    /// class_for returns the smallest power-of-two block >= len within
    /// [MIN, MAX] class bounds.
    #[test]
    fn class_rounding_is_minimal_power_of_two(len in 1usize..(1 << 26)) {
        let (_idx, block) = Bml::class_for(len);
        prop_assert!(block.is_power_of_two());
        prop_assert!(block >= len);
        prop_assert!(block >= 1 << MIN_CLASS_SHIFT);
        prop_assert!(block <= 1 << MAX_CLASS_SHIFT);
        // Minimality: half the block would not fit (unless at MIN class).
        if block > 1 << MIN_CLASS_SHIFT {
            prop_assert!(block / 2 < len);
        }
    }

    /// Sequential acquire/release with random sizes: outstanding bytes
    /// track exactly, and all memory returns.
    #[test]
    fn outstanding_accounting_is_exact(sizes in proptest::collection::vec(1usize..262_144, 1..40)) {
        let bml = Bml::new(1 << 30);
        let mut held = Vec::new();
        let mut expect = 0u64;
        for (i, &sz) in sizes.iter().enumerate() {
            let buf = bml.try_acquire(sz).expect("capacity is ample");
            expect += buf.block_size() as u64;
            held.push(buf);
            // Release about half as we go.
            if i % 2 == 1 {
                let b = held.remove(0);
                expect -= b.block_size() as u64;
            }
            prop_assert_eq!(bml.outstanding(), expect);
        }
        held.clear();
        prop_assert_eq!(bml.outstanding(), 0);
        // Fragmentation accounting is consistent with class rounding.
        let s = bml.stats();
        prop_assert_eq!(s.acquires, sizes.len() as u64);
    }

    /// Buffer contents are exclusive: filling one buffer never corrupts
    /// another, even when blocks are freelist-recycled.
    #[test]
    fn buffers_are_exclusive(rounds in 1usize..20) {
        let bml = Bml::new(1 << 22);
        for round in 0..rounds {
            let mut a = bml.acquire(1000).expect("BML open");
            let mut b = bml.acquire(1000).expect("BML open");
            a.fill_from(&[round as u8; 1000]);
            b.fill_from(&[!(round as u8); 1000]);
            prop_assert!(a.as_slice().iter().all(|&x| x == round as u8));
            prop_assert!(b.as_slice().iter().all(|&x| x == !(round as u8)));
        }
    }
}

/// Hammer the BML from many threads with a capacity that forces
/// blocking; assert the capacity invariant and clean termination.
/// Each thread holds exactly one buffer at a time (as the daemon's
/// handlers do — holding several while blocking would be the classic
/// hold-and-wait deadlock, which the staged design never does).
#[test]
fn concurrent_acquires_never_exceed_capacity() {
    // 8 threads × one 64 KiB buffer each, all started together against a
    // 256 KiB cap: at most 4 fit, the rest must take the blocking path.
    const CAP: u64 = 256 * 1024;
    const SZ: usize = 64 * 1024;
    let bml = Bml::new(CAP);
    let outstanding = Arc::new(AtomicI64::new(0));
    let peak = Arc::new(AtomicI64::new(0));
    let barrier = Arc::new(std::sync::Barrier::new(8));
    std::thread::scope(|s| {
        for _ in 0..8 {
            let bml = bml.clone();
            let outstanding = outstanding.clone();
            let peak = peak.clone();
            let barrier = barrier.clone();
            s.spawn(move || {
                barrier.wait();
                for _ in 0..200 {
                    let buf = bml.acquire(SZ).expect("BML open");
                    let held = buf.block_size() as i64;
                    let now = outstanding.fetch_add(held, Ordering::SeqCst) + held;
                    peak.fetch_max(now, Ordering::SeqCst);
                    // Hold long enough that peers pile up on the cap.
                    std::hint::black_box(buf.as_slice().first());
                    std::thread::sleep(std::time::Duration::from_micros(50));
                    outstanding.fetch_sub(held, Ordering::SeqCst);
                    drop(buf);
                }
            });
        }
    });
    assert!(
        peak.load(Ordering::SeqCst) as u64 <= CAP,
        "peak {} > cap",
        peak.load(Ordering::SeqCst)
    );
    assert_eq!(bml.outstanding(), 0);
    let stats = bml.stats();
    assert_eq!(stats.acquires, 8 * 200);
    assert!(
        stats.blocked_acquires > 0,
        "8x64 KiB against 256 KiB must block"
    );
    assert!(stats.freelist_hits > 0, "recycling should occur");
}
