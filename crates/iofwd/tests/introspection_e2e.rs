//! End-to-end tests of the live introspection plane: the stats wire
//! protocol across transports and modes, per-client attribution, and
//! the health watchdog observing a genuinely wedged daemon.

use std::sync::Arc;
use std::time::{Duration, Instant};

use iofwd::backend::{FaultBackend, MemSinkBackend};
use iofwd::client::Client;
use iofwd::fault::{FaultPlan, FaultRule, OpClass};
use iofwd::server::{watchdog, ForwardingMode, IonServer, ServerConfig, WatchdogConfig};
use iofwd::telemetry::{snapshot::validate_prometheus, Telemetry, TelemetrySnapshot};
use iofwd::transport::mem::MemHub;
use iofwd::transport::tcp::{TcpAcceptor, TcpConn};
use iofwd_proto::{OpenFlags, StatsQuery};

fn unique_tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "iofwd-introspect-{}-{tag}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn fetch_snapshot(client: &mut Client) -> TelemetrySnapshot {
    let data = client
        .query_stats(StatsQuery::Snapshot)
        .expect("stats query");
    TelemetrySnapshot::from_json(&String::from_utf8_lossy(&data)).expect("snapshot json")
}

const ALL_MODES: [ForwardingMode; 4] = [
    ForwardingMode::Ciod,
    ForwardingMode::Zoid,
    ForwardingMode::Sched { workers: 2 },
    ForwardingMode::AsyncStaged {
        workers: 2,
        bml_capacity: 8 << 20,
    },
];

/// Every forwarding mode answers all three stats queries in-band, and
/// the snapshot carries a per-client row for the traffic just sent.
#[test]
fn stats_protocol_answers_in_all_modes_with_attribution() {
    for mode in ALL_MODES {
        let telemetry = Arc::new(Telemetry::new());
        let hub = MemHub::new();
        let server = IonServer::spawn(
            Box::new(hub.listener()),
            Arc::new(MemSinkBackend::new()),
            ServerConfig::new(mode).with_telemetry(telemetry.clone()),
        );
        let mut c = Client::with_id(Box::new(hub.connect()), 5);
        let fd = c
            .open("/attr", OpenFlags::WRONLY | OpenFlags::CREATE, 0o644)
            .expect("open");
        let payload = vec![7u8; 64 << 10];
        c.write(fd, &payload).expect("write");
        c.fsync(fd).expect("fsync");
        c.close(fd).expect("close");

        let snap = fetch_snapshot(&mut c);
        assert!(
            snap.counter("ops_completed") > 0,
            "mode {}: snapshot shows no ops",
            mode.name()
        );
        let row = snap
            .client(5)
            .unwrap_or_else(|| panic!("mode {}: no row for client 5", mode.name()));
        assert!(row.ops > 0, "mode {}: client row has no ops", mode.name());
        assert!(
            row.bytes_in >= payload.len() as u64,
            "mode {}: client 5 bytes_in {} < payload {}",
            mode.name(),
            row.bytes_in,
            payload.len()
        );

        let rates = c.query_stats(StatsQuery::Rates).expect("rates query");
        let rates = String::from_utf8_lossy(&rates).into_owned();
        assert!(
            rates.contains("\"ops_per_s\""),
            "mode {}: rates json missing fields: {rates}",
            mode.name()
        );
        let prom = c.query_stats(StatsQuery::Prometheus).expect("prom query");
        let samples = validate_prometheus(&String::from_utf8_lossy(&prom))
            .unwrap_or_else(|e| panic!("mode {}: bad exposition: {e}", mode.name()));
        assert!(samples > 0, "mode {}: empty exposition", mode.name());

        // Meta-traffic stays off the books: three stats queries must not
        // have inflated the op counters.
        let after = fetch_snapshot(&mut c);
        assert_eq!(
            after.counter("ops_completed"),
            snap.counter("ops_completed"),
            "mode {}: stats queries leaked into op accounting",
            mode.name()
        );
        c.shutdown().expect("shutdown");
        server.shutdown();
    }
}

/// The reactor transport answers stats inline from the event loop and
/// stamps per-client rows on its own read/write paths.
#[test]
fn reactor_serves_stats_and_attributes_clients() {
    let telemetry = Arc::new(Telemetry::new());
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
    let addr = acceptor.local_addr().expect("addr");
    let server = IonServer::spawn_reactor(
        acceptor,
        Arc::new(MemSinkBackend::new()),
        ServerConfig::new(ForwardingMode::Sched { workers: 2 }).with_telemetry(telemetry.clone()),
        iofwd::server::ReactorConfig::default(),
    )
    .expect("spawn reactor");

    let conn = TcpConn::connect(addr.to_string()).expect("connect");
    let mut c = Client::with_id(Box::new(conn), 9);
    let fd = c
        .open("/r", OpenFlags::RDWR | OpenFlags::CREATE, 0o644)
        .expect("open");
    let payload = vec![3u8; 128 << 10];
    c.write(fd, &payload).expect("write");
    // A read makes the outbound payload non-trivial (write acks carry
    // no data), exercising the reply-side attribution.
    let got = c.pread(fd, 0, payload.len() as u64).expect("pread");
    assert_eq!(got.len(), payload.len());
    c.close(fd).expect("close");

    let snap = fetch_snapshot(&mut c);
    let row = snap.client(9).expect("client 9 row");
    assert!(
        row.bytes_in >= payload.len() as u64,
        "client 9 bytes_in {} < payload {}",
        row.bytes_in,
        payload.len()
    );
    assert!(row.bytes_out > 0, "replies never attributed");
    // The event loops registered heartbeats and measured poll waits.
    assert!(telemetry.loop_heartbeats.registered() > 0);
    let prom = c.query_stats(StatsQuery::Prometheus).expect("prom");
    validate_prometheus(&String::from_utf8_lossy(&prom)).expect("valid exposition");
    c.shutdown().expect("shutdown");
    server.shutdown();
}

/// Satellite (d): wedge the worker pool with injected `delay_us` faults
/// and prove the three promises hold at once — the watchdog trips on
/// queue head-of-line age, the flight dump lands on disk, and the stats
/// endpoint keeps answering from a separate connection throughout.
#[test]
fn watchdog_trips_on_wedged_queue_while_stats_answer() {
    let telemetry = Arc::new(Telemetry::new());
    // Every write stalls 120 ms in the backend; with one worker, queued
    // writes age far past the 30 ms SLO.
    let plan = FaultPlan::new(42).rule(FaultRule::on(OpClass::Write).delay_us(120_000));
    let backend = Arc::new(FaultBackend::new(
        Arc::new(MemSinkBackend::new()),
        plan,
        telemetry.clone(),
    ));
    let hub = MemHub::new();
    let server = IonServer::spawn(
        Box::new(hub.listener()),
        backend,
        ServerConfig::new(ForwardingMode::Sched { workers: 1 }).with_telemetry(telemetry.clone()),
    );
    let dump = unique_tmp("wd-dump");
    let _ = std::fs::remove_file(&dump);
    let wd = watchdog::spawn(
        WatchdogConfig {
            interval: Duration::from_millis(10),
            max_queue_age: Duration::from_millis(30),
            max_loop_lag: Duration::ZERO,
            dump_path: Some(dump.clone()),
            ..WatchdogConfig::default()
        },
        telemetry.clone(),
        server.work_queue(),
    )
    .expect("spawn watchdog");

    // Three writers pile onto the one slow worker.
    let writers: Vec<_> = (0..3u32)
        .map(|i| {
            let conn = hub.connect();
            std::thread::spawn(move || {
                let mut c = Client::with_id(Box::new(conn), 100 + i);
                let fd = c
                    .open(
                        &format!("/wedge{i}"),
                        OpenFlags::WRONLY | OpenFlags::CREATE,
                        0o644,
                    )
                    .expect("open");
                for _ in 0..3 {
                    c.write(fd, &[0u8; 4096]).expect("write");
                }
                c.close(fd).expect("close");
                let _ = c.shutdown();
            })
        })
        .collect();

    // While the queue is wedged, the stats endpoint must answer promptly
    // from a fresh connection — and eventually report the trip.
    let mut stats_conn = Client::connect(Box::new(hub.connect()));
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut trips = 0;
    while Instant::now() < deadline {
        let t0 = Instant::now();
        let snap = fetch_snapshot(&mut stats_conn);
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "stats query stalled behind the wedged queue"
        );
        trips = snap.counter("watchdog_trips");
        if trips > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(trips > 0, "watchdog never tripped on the wedged queue");

    for w in writers {
        w.join().expect("writer");
    }
    let _ = stats_conn.shutdown();
    wd.shutdown();
    server.shutdown();

    let dumped = std::fs::read_to_string(&dump).expect("flight dump written");
    assert!(
        dumped.contains("trip reason=queue_stall"),
        "dump missing trip line: {dumped}"
    );
    assert!(
        dumped.contains("flight recorder"),
        "dump missing flight table: {dumped}"
    );
    let _ = std::fs::remove_file(&dump);
}
