//! Property tests of the tracing layer (DESIGN.md §11): the trace-event
//! renderer emits schema-valid JSON with monotone timestamps and
//! well-formed track ids for *any* lifecycle the server can produce;
//! the JSON reader inverts the writer's escaping rules; the exporter's
//! retention policy is exactly "client-sampled or every Nth, capacity
//! bounded"; and the wire trace extension round-trips at frame level
//! while ext-less frames stay byte-identical to the pre-trace protocol.

use bytes::Bytes;
use iofwd::telemetry::{Disposition, OpKind, OpSpan, SpanSink};
use iofwd::trace::{render_chrome_trace, validate_chrome_trace, JsonValue, TraceExporter};
use iofwd_proto::{
    Errno, Fd, Frame, Request, Response, StageEcho, TraceContext, TraceExt, TRACE_EXT_FLAG,
};
use proptest::prelude::*;

const DISPOSITIONS: [Disposition; 4] = [
    Disposition::Completed,
    Disposition::QueueRejected,
    Disposition::DrainExecuted,
    Disposition::DrainDeferred,
];

/// One generated lifecycle: identity fields plus the five stage delays
/// accumulated from `arrival_ns`, so stamps are always ordered the way
/// real handlers stamp them (each delay may be zero — a stage can be
/// skipped, e.g. inline ops never park in a queue).
type SpanSpec = (
    (u64, u64, u32, u64),            // client, seq, worker, bytes
    (u64, u64, u64, u64, u64), // stage delays: enqueue, queue-wait, dispatch-lag, backend, reply
    (u64, bool, bool, usize, usize), // arrival, ok, sampled, kind idx, disposition idx
);

fn arb_span_spec() -> impl Strategy<Value = SpanSpec> {
    (
        (0u64..5, 0u64..1_000_000, 0u32..4, 0u64..(1 << 30)),
        (
            0u64..100_000,
            0u64..100_000,
            0u64..100_000,
            0u64..100_000,
            0u64..100_000,
        ),
        (
            0u64..(1 << 32),
            any::<bool>(),
            any::<bool>(),
            0usize..8,
            0usize..4,
        ),
    )
}

fn span_of(spec: &SpanSpec) -> OpSpan {
    let ((client, seq, worker, bytes), (d1, d2, d3, d4, d5), (arrival, ok, sampled, k, d)) = *spec;
    let mut s = OpSpan::begin(OpKind::ALL[k], client, seq, arrival);
    s.bytes = bytes;
    s.ok = ok;
    s.sampled = sampled;
    s.worker = worker;
    s.errno = if ok { 0 } else { Errno::Io.to_wire() };
    s.disposition = DISPOSITIONS[d];
    s.trace_id = (client << 32) | seq;
    s.enqueue_ns = arrival + d1;
    s.dispatch_ns = s.enqueue_ns + d2;
    s.backend_start_ns = s.dispatch_ns + d3;
    s.backend_done_ns = s.backend_start_ns + d4;
    s.reply_ns = s.backend_done_ns + d5;
    s
}

/// Mirror of the renderer's JSON string escaping, used to feed the
/// reader inputs that exercise every escape the writer can emit.
fn escape(s: &str) -> String {
    let mut out = String::from('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

proptest! {
    /// Any batch of well-ordered lifecycles renders to a trace the
    /// schema validator accepts, with exactly the slice, counter, and
    /// track population the renderer's contract promises: one op slice
    /// per span, a queue slice iff the op waited, a worker slice iff a
    /// pool worker spent time on it, and two queue-depth counter edges
    /// per enqueued op.
    #[test]
    fn rendered_traces_validate_with_expected_shape(
        specs in proptest::collection::vec(arb_span_spec(), 0..40),
    ) {
        let spans: Vec<OpSpan> = specs.iter().map(span_of).collect();
        let text = render_chrome_trace(&spans);
        let summary = validate_chrome_trace(&text)
            .map_err(|e| TestCaseError::fail(format!("trace rejected: {e}")))?;

        let queue_slices = spans.iter().filter(|s| s.queue_wait_ns() > 0).count();
        let worker_slices = spans
            .iter()
            .filter(|s| s.worker > 0 && s.service_ns() > 0)
            .count();
        prop_assert_eq!(summary.slices, spans.len() + queue_slices + worker_slices);

        let enqueued = spans.iter().filter(|s| s.enqueue_ns > 0).count();
        prop_assert_eq!(summary.counter_events, 2 * enqueued);

        let clients: std::collections::BTreeSet<u64> =
            spans.iter().map(|s| s.client).collect();
        prop_assert_eq!(summary.client_tracks, clients.len());
        let workers: std::collections::BTreeSet<u32> = spans
            .iter()
            .filter(|s| s.worker > 0 && s.service_ns() > 0)
            .map(|s| s.worker)
            .collect();
        prop_assert_eq!(summary.worker_tracks, workers.len());

        // Metadata (process/thread names) accounts for every remaining
        // event: worker thread names follow executing workers whether
        // or not their slice had nonzero duration.
        let named_workers: std::collections::BTreeSet<u32> = spans
            .iter()
            .filter(|s| s.worker > 0)
            .map(|s| s.worker)
            .collect();
        let meta = 1 + clients.len()
            + if named_workers.is_empty() { 0 } else { 1 + named_workers.len() };
        prop_assert_eq!(summary.events, meta + summary.slices + summary.counter_events);
    }

    /// The JSON reader inverts the writer's escaping rules over
    /// arbitrary strings — quotes, backslashes, control characters, and
    /// non-ASCII code points all survive a parse.
    #[test]
    fn json_reader_inverts_string_escaping(
        codes in proptest::collection::vec(0u32..0xD7FF, 0..60),
    ) {
        let original: String = codes
            .iter()
            .filter_map(|&c| char::from_u32(c))
            .collect();
        let doc = format!("{{\"k\":{}}}", escape(&original));
        let parsed = JsonValue::parse(&doc)
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}")))?;
        prop_assert_eq!(parsed.get("k").and_then(JsonValue::as_str), Some(original.as_str()));
    }

    /// The exporter keeps exactly the spans its policy names — client
    /// sampled, or every Nth completion when self-sampling is on — in
    /// completion order, drops the overflow past capacity, and counts
    /// the drops.
    #[test]
    fn exporter_retention_matches_policy(
        sample_every in 0u64..5,
        capacity in 1usize..8,
        flags in proptest::collection::vec(any::<bool>(), 0..40),
    ) {
        let exporter = TraceExporter::with_capacity(sample_every, capacity);
        let mut eligible = Vec::new();
        for (i, &sampled) in flags.iter().enumerate() {
            let nth = i as u64 + 1;
            let mut s = OpSpan::begin(OpKind::Write, 0, nth, nth * 1_000);
            s.sampled = sampled;
            s.trace_id = nth;
            exporter.on_complete(&s);
            if sampled || (sample_every > 0 && nth.is_multiple_of(sample_every)) {
                eligible.push(nth);
            }
        }
        let kept: Vec<u64> = exporter.spans().iter().map(|s| s.trace_id).collect();
        let retained = eligible.len().min(capacity);
        prop_assert_eq!(&kept[..], &eligible[..retained]);
        prop_assert_eq!(exporter.kept(), retained);
        prop_assert_eq!(exporter.dropped(), (eligible.len() - retained) as u64);
    }

    /// The trace extension round-trips at frame level in both
    /// directions: a request's context and a reply's stage echo come
    /// back field-for-field, the kind byte carries the ext flag, and
    /// the streaming decoder consumes exactly the encoded bytes.
    #[test]
    fn trace_ext_round_trips_at_frame_level(
        ids in (any::<u32>(), any::<u64>(), 1u64..u64::MAX, 0u8..4),
        stages in (0u64..(1 << 40), 0u64..(1 << 40), 0u64..(1 << 40), 0u64..(1 << 40), 0u64..(1 << 40)),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        ret in any::<i64>(),
    ) {
        let (client, seq, trace_id, flags) = ids;
        let ctx = TraceContext { trace_id, flags };
        let req = Request::Write { fd: Fd(3), len: payload.len() as u64 };
        let frame = Frame::request(client, seq, &req, Bytes::from(payload.clone()))
            .with_ext(TraceExt::Ctx(ctx));
        let bytes = frame.encode();
        prop_assert_eq!(bytes[3] & TRACE_EXT_FLAG, TRACE_EXT_FLAG);
        let (decoded, consumed) = Frame::decode(&bytes)
            .map_err(|e| TestCaseError::fail(format!("request decode failed: {e}")))?
            .ok_or_else(|| TestCaseError::fail("request decode wanted more bytes".into()))?;
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded.trace_ctx(), Some(ctx));
        prop_assert_eq!(decoded.stage_echo(), None);
        prop_assert_eq!(
            decoded.decode_request()
                .map_err(|e| TestCaseError::fail(format!("meta decode failed: {e}")))?,
            req
        );
        prop_assert_eq!(&decoded.data[..], &payload[..]);

        let (queue_ns, dispatch_ns, backend_ns, reply_ns, total_ns) = stages;
        let echo = StageEcho {
            trace_id, flags, queue_ns, dispatch_ns, backend_ns, reply_ns, total_ns,
        };
        let reply = Frame::response(client, seq, &Response::Ok { ret }, Bytes::new())
            .with_ext(TraceExt::Echo(echo));
        let bytes = reply.encode();
        let (decoded, consumed) = Frame::decode(&bytes)
            .map_err(|e| TestCaseError::fail(format!("reply decode failed: {e}")))?
            .ok_or_else(|| TestCaseError::fail("reply decode wanted more bytes".into()))?;
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded.stage_echo(), Some(echo));
        prop_assert_eq!(
            decoded.stage_echo().map(|e| e.stage_sum_ns()),
            Some(queue_ns + dispatch_ns + backend_ns + reply_ns)
        );
    }

    /// Backward compatibility: a frame without trace data is
    /// byte-identical to the pre-trace protocol (flag bit clear), and
    /// attaching an extension grows the encoding by exactly the
    /// extension's wire length without disturbing meta or payload.
    #[test]
    fn extless_frames_stay_byte_identical(
        client in any::<u32>(),
        seq in any::<u64>(),
        trace_id in 1u64..u64::MAX,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let req = Request::Write { fd: Fd(9), len: payload.len() as u64 };
        let plain = Frame::request(client, seq, &req, Bytes::from(payload.clone()));
        let plain_bytes = plain.encode();
        prop_assert_eq!(plain_bytes[3] & TRACE_EXT_FLAG, 0);

        let ext = TraceExt::Ctx(TraceContext::sampled(trace_id));
        let traced = plain.clone().with_ext(ext);
        let traced_bytes = traced.encode();
        prop_assert_eq!(traced_bytes.len(), plain_bytes.len() + ext.wire_len());
        // Header apart from the kind byte, meta, and data are untouched.
        prop_assert_eq!(&traced_bytes[..3], &plain_bytes[..3]);
        prop_assert_eq!(&traced_bytes[4..24], &plain_bytes[4..24]);
        prop_assert_eq!(&traced_bytes[24 + ext.wire_len()..], &plain_bytes[24..]);

        let (decoded, _) = Frame::decode(&plain_bytes)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?
            .ok_or_else(|| TestCaseError::fail("decode wanted more bytes".into()))?;
        prop_assert_eq!(decoded.ext, None);
        prop_assert_eq!(decoded.encode(), plain_bytes);
    }
}
