//! Client-side unit tests against a scripted mock connection: protocol
//! conformance, error mapping, and robustness to a misbehaving daemon.

use std::collections::VecDeque;
use std::io;

use bytes::Bytes;
use iofwd::client::{Client, ClientError, WriteOutcome};
use iofwd::transport::Conn;
use iofwd_proto::{Errno, Fd, FileStat, Frame, OpId, OpenFlags, Request, Response, Whence};
use parking_lot::Mutex;

/// A connection whose responses are scripted ahead of time. Each entry
/// is a function of the received request frame.
type Responder = Box<dyn Fn(&Frame) -> Option<Frame> + Send + Sync>;

struct MockConn {
    script: Mutex<VecDeque<Responder>>,
    pending: Mutex<VecDeque<Frame>>,
    sent: Mutex<Vec<Frame>>,
}

impl MockConn {
    fn new(script: Vec<Responder>) -> MockConn {
        MockConn {
            script: Mutex::new(script.into()),
            pending: Mutex::new(VecDeque::new()),
            sent: Mutex::new(Vec::new()),
        }
    }

    fn sent_requests(&self) -> Vec<Request> {
        self.sent
            .lock()
            .iter()
            .map(|f| f.decode_request().unwrap())
            .collect()
    }
}

impl Conn for MockConn {
    fn send(&self, frame: Frame) -> io::Result<()> {
        let responder = self
            .script
            .lock()
            .pop_front()
            .expect("mock: more requests than scripted");
        if let Some(resp) = responder(&frame) {
            self.pending.lock().push_back(resp);
        }
        self.sent.lock().push(frame);
        Ok(())
    }

    fn recv(&self) -> io::Result<Option<Frame>> {
        Ok(self.pending.lock().pop_front())
    }

    fn close(&self) {}
}

/// Respond to any request with the given response, echoing the seq.
fn ok_with(resp: Response) -> Responder {
    Box::new(move |frame| {
        Some(Frame::response(
            frame.client_id,
            frame.seq,
            &resp,
            Bytes::new(),
        ))
    })
}

fn ok_with_data(resp: Response, data: &'static [u8]) -> Responder {
    Box::new(move |frame| {
        Some(Frame::response(
            frame.client_id,
            frame.seq,
            &resp,
            Bytes::from_static(data),
        ))
    })
}

#[test]
fn open_maps_ret_to_fd() {
    let conn = MockConn::new(vec![ok_with(Response::Ok { ret: 7 })]);
    let mut c = Client::connect(Box::new(conn));
    let fd = c.open("/x", OpenFlags::RDONLY, 0).unwrap();
    assert_eq!(fd, Fd(7));
}

#[test]
fn requests_carry_increasing_seq_and_client_id() {
    let conn = Box::new(MockConn::new(vec![
        ok_with(Response::Ok { ret: 3 }),
        ok_with(Response::Ok { ret: 0 }),
    ]));
    let raw: *const MockConn = &*conn;
    let mut c = Client::with_id(conn, 42);
    c.open("/x", OpenFlags::RDONLY, 0).unwrap();
    c.fsync(Fd(3)).unwrap();
    // SAFETY: the client owns the box and outlives this scope, so the
    // pointer taken before the move stays valid; MockConn's interior is
    // mutex-guarded, so the shared reference is sound.
    let mock = unsafe { &*raw };
    let frames = mock.sent.lock();
    assert_eq!(frames[0].seq, 1);
    assert_eq!(frames[1].seq, 2);
    assert!(frames.iter().all(|f| f.client_id == 42));
}

#[test]
fn staged_response_maps_to_write_outcome() {
    let conn = MockConn::new(vec![ok_with(Response::Staged { op: OpId(9) })]);
    let mut c = Client::connect(Box::new(conn));
    match c.write_detailed(Fd(3), b"abc").unwrap() {
        WriteOutcome::Staged(op) => assert_eq!(op, OpId(9)),
        other => panic!("{other:?}"),
    }
    assert_eq!(c.stats().staged_writes, 1);
    assert_eq!(c.stats().bytes_sent, 3);
}

#[test]
fn deferred_error_maps_to_client_error() {
    let conn = MockConn::new(vec![ok_with(Response::DeferredErr {
        op: OpId(4),
        errno: Errno::NoSpc,
    })]);
    let mut c = Client::connect(Box::new(conn));
    match c.write(Fd(3), b"abc") {
        Err(ClientError::Deferred { op, errno }) => {
            assert_eq!(op, OpId(4));
            assert_eq!(errno, Errno::NoSpc);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn remote_errno_maps_to_remote_error() {
    let conn = MockConn::new(vec![ok_with(Response::Err {
        errno: Errno::Access,
    })]);
    let mut c = Client::connect(Box::new(conn));
    match c.open("/forbidden", OpenFlags::RDONLY, 0) {
        Err(ClientError::Remote(Errno::Access)) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn out_of_order_seq_is_protocol_error() {
    let conn = MockConn::new(vec![Box::new(|frame: &Frame| {
        Some(Frame::response(
            frame.client_id,
            frame.seq + 99,
            &Response::Ok { ret: 0 },
            Bytes::new(),
        ))
    })]);
    let mut c = Client::connect(Box::new(conn));
    match c.fsync(Fd(3)) {
        Err(ClientError::Protocol(msg)) => assert!(msg.contains("out of order"), "{msg}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn closed_connection_maps_to_closed() {
    // Responder that produces no response: recv returns None.
    let conn = MockConn::new(vec![Box::new(|_: &Frame| None)]);
    let mut c = Client::connect(Box::new(conn));
    match c.fsync(Fd(3)) {
        Err(ClientError::Closed) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn read_length_mismatch_is_protocol_error() {
    // Daemon claims 10 bytes read but ships 3.
    let conn = MockConn::new(vec![ok_with_data(Response::Ok { ret: 10 }, b"abc")]);
    let mut c = Client::connect(Box::new(conn));
    match c.read(Fd(3), 10) {
        Err(ClientError::Protocol(msg)) => assert!(msg.contains("carried"), "{msg}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn read_returns_payload() {
    let conn = MockConn::new(vec![ok_with_data(Response::Ok { ret: 5 }, b"hello")]);
    let mut c = Client::connect(Box::new(conn));
    assert_eq!(c.read(Fd(3), 64).unwrap(), b"hello");
    assert_eq!(c.stats().bytes_received, 5);
}

#[test]
fn stat_maps_statok() {
    let st = FileStat {
        size: 123,
        mode: 0o644,
        mtime_ns: 9,
        is_dir: false,
    };
    let conn = MockConn::new(vec![ok_with(Response::StatOk { st })]);
    let mut c = Client::connect(Box::new(conn));
    assert_eq!(c.stat("/x").unwrap(), st);
}

#[test]
fn unexpected_response_kind_is_protocol_error() {
    // fsync answered with StatOk.
    let st = FileStat::default();
    let conn = MockConn::new(vec![ok_with(Response::StatOk { st })]);
    let mut c = Client::connect(Box::new(conn));
    assert!(matches!(c.fsync(Fd(3)), Err(ClientError::Protocol(_))));
}

#[test]
fn request_wire_forms_match_api_calls() {
    let conn = Box::new(MockConn::new(vec![
        ok_with(Response::Ok { ret: 3 }),
        ok_with(Response::Staged { op: OpId(1) }),
        ok_with(Response::Ok { ret: 4 }),
        ok_with(Response::Ok { ret: 0 }),
        ok_with(Response::Ok { ret: 0 }),
    ]));
    let raw: *const MockConn = &*conn;
    let mut c = Client::connect(conn);
    let fd = c
        .open("/f", OpenFlags::WRONLY | OpenFlags::CREATE, 0o600)
        .unwrap();
    c.pwrite(fd, 4096, b"data").unwrap();
    c.lseek(fd, -1, Whence::End).unwrap();
    c.close(fd).unwrap();
    c.shutdown().unwrap();
    // SAFETY: the client owns the box and outlives this scope, so the
    // pointer taken before the move stays valid; MockConn's interior is
    // mutex-guarded, so the shared reference is sound.
    let mock = unsafe { &*raw };
    let reqs = mock.sent_requests();
    assert_eq!(
        reqs,
        vec![
            Request::Open {
                path: "/f".into(),
                flags: OpenFlags::WRONLY | OpenFlags::CREATE,
                mode: 0o600
            },
            Request::Pwrite {
                fd: Fd(3),
                offset: 4096,
                len: 4
            },
            Request::Lseek {
                fd: Fd(3),
                offset: -1,
                whence: Whence::End
            },
            Request::Close { fd: Fd(3) },
            Request::Shutdown,
        ]
    );
}
